"""Timing bench for the incremental lint cache (DESIGN.md §13).

Lints the real repository surface cold (no cache file), then warm
(byte-identical tree, fully-warm fast path: the cached run replays
with zero parsing).  Asserts the two reports are identical and — at
full scale — that warm is at least 5x faster than cold, recording
both wall times to ``BENCH_timing.json``.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/test_timing_lint.py -q
"""

from __future__ import annotations

import pathlib
import time

import bench_lib

from repro import obs
from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The same surface ``make lint`` gates.
LINT_TARGETS = [
    str(REPO_ROOT / name)
    for name in ("src/repro", "tests", "benchmarks", "tools", "examples")
    if (REPO_ROOT / name).exists()
]

#: The fully-warm path must beat a cold run by at least this factor:
#: it replays the stored report without parsing a single file.
MIN_WARM_SPEEDUP = 5.0


def test_warm_cache_beats_cold_lint(tmp_path, capsys):
    cache_path = str(tmp_path / "lint_cache.json")

    start = time.perf_counter()
    cold_violations, files_checked = lint_paths(
        LINT_TARGETS, cache_path=cache_path
    )
    cold_seconds = time.perf_counter() - start
    assert files_checked > 150

    with obs.session() as telemetry:
        start = time.perf_counter()
        warm_violations, warm_files = lint_paths(
            LINT_TARGETS, cache_path=cache_path
        )
        warm_seconds = time.perf_counter() - start
        counters = telemetry.snapshot()["counters"]

    # Equivalence holds at every scale: the warm run replays the cold
    # report exactly, via the zero-parse fast path.
    assert warm_violations == cold_violations
    assert warm_files == files_checked
    assert counters.get("lint.cache.warm_run") == 1

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    bench_lib.emit(
        capsys,
        f"lint {files_checked} files: cold {cold_seconds:.3f}s, "
        f"warm {warm_seconds:.3f}s ({speedup:.1f}x)",
    )
    if not bench_lib.SMOKE:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm lint only {speedup:.1f}x faster than cold "
            f"(need >= {MIN_WARM_SPEEDUP}x)"
        )
        bench_lib.record(
            "lint_incremental_cache",
            files=files_checked,
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            speedup=speedup,
        )
