"""Helpers shared by the benchmark modules (not collected by pytest)."""

from __future__ import annotations

import json
import os

#: Entries per generated test corpus (paper corpora are ~10^6-10^7).
CORPUS_SIZE = int(os.environ.get("REPRO_BENCH_CORPUS", 20_000))
#: Entries in base dictionaries (paper: Rockyou/Tianya, ~3 * 10^7).
BASE_SIZE = int(os.environ.get("REPRO_BENCH_BASE", 100_000))
SEED = 0

#: Smoke mode (``make bench-smoke``): the timing benches still run end
#: to end and still assert *equivalence* (fast path == reference, bit
#: for bit), but skip the speedup thresholds — at smoke-sized corpora
#: the constant overheads dominate and the ratios are meaningless.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Where the timing benches persist their numbers, so the perf
#: trajectory is tracked across PRs (one JSON object, merged in place).
TIMING_RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_timing.json",
)


def emit(capsys, text: str) -> None:
    """Print a result table through pytest's capture barrier."""
    with capsys.disabled():
        print()
        print(text)


def record(name: str, **values) -> None:
    """Merge one bench's measurements into ``BENCH_timing.json``.

    Each bench owns one top-level key; re-running a single bench
    refreshes its entry without clobbering the others.  Floats are
    rounded so diffs across PRs stay readable.

    Smoke runs never persist: their timings are taken at toy scale and
    would clobber the tracked full-scale numbers.
    """
    if SMOKE:
        return
    results = {}
    if os.path.exists(TIMING_RESULTS_PATH):
        with open(TIMING_RESULTS_PATH) as handle:
            try:
                results = json.load(handle)
            except ValueError:
                results = {}
    results[name] = {
        key: round(value, 6) if isinstance(value, float) else value
        for key, value in values.items()
    }
    with open(TIMING_RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
