"""Helpers shared by the benchmark modules (not collected by pytest)."""

from __future__ import annotations

import os

#: Entries per generated test corpus (paper corpora are ~10^6-10^7).
CORPUS_SIZE = int(os.environ.get("REPRO_BENCH_CORPUS", 20_000))
#: Entries in base dictionaries (paper: Rockyou/Tianya, ~3 * 10^7).
BASE_SIZE = int(os.environ.get("REPRO_BENCH_BASE", 100_000))
SEED = 0


def emit(capsys, text: str) -> None:
    """Print a result table through pytest's capture barrier."""
    with capsys.disabled():
        print()
        print(text)
