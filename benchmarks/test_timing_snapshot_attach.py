"""Snapshot-plane attach latency and spawn-start parallel scoring.

The shared-memory snapshot plane (DESIGN.md §16) exists for two
measurable wins:

* **millisecond attach** — a worker process opens the model by segment
  *name* and scores against the publisher's bytes; nothing model-sized
  is pickled or re-deserialized, so attach latency is independent of
  corpus scale (the frozen grammar's terminal tables decode lazily);
* **cheap pools** — with the broadcast tax gone, ``jobs=2`` bulk
  scoring pays only process start-up, so it wins on far smaller
  streams than the old pickle-everything pools — even under ``spawn``,
  where fork/COW never helped.

This bench trains fuzzyPSM on a ~10^6-entry Zipf corpus, publishes the
segment, and measures (a) cold attach + materialize in fresh child
processes, (b) the first score after attach (lazy-table decode), and
(c) ``probability_many(jobs=2)`` under ``REPRO_START_METHOD=spawn``
against the serial batch path on a 100k-password stream — asserting
bit-identical scores everywhere, attach under 50 ms at full scale, and
(on multi-core hosts) a >1.5x parallel win.

Smoke mode shrinks the corpus and keeps the equivalence asserts only:
toy-scale latencies and ratios are meaningless.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from bench_lib import SMOKE, emit, record

from repro.core.meter import FuzzyPSM
from repro.obs.core import now

#: Corpus shape (full scale / smoke scale).
_TOTAL = 20_000 if SMOKE else 1_000_000
_DISTINCT = 5_000 if SMOKE else 250_000
_BASE_WORDS = 2_000 if SMOKE else 20_000
#: Scored stream (the ISSUE's 100k acceptance stream at full scale).
_STREAM = 5_000 if SMOKE else 100_000
_JOBS = 2
#: Cold attach processes measured; the median is the headline number.
_ATTACH_RUNS = 3 if SMOKE else 5

#: Full-scale acceptance bound: attach + materialize in a fresh
#: process must stay under 50 ms against the 10^6-corpus model.
_ATTACH_BUDGET_SECONDS = 0.050

_SEED_WORDS = [
    "password", "dragon", "monkey", "qwerty", "sunshine", "shadow",
    "master", "killer", "angel", "summer", "love", "soccer", "tiger",
    "pepper", "silver", "winter", "flower", "cookie",
]

#: One cold reader: attach by segment name, build the parser, score a
#: probe.  Timed inside the child so interpreter start-up and imports
#: are excluded; prints one JSON object on stdout.
_ATTACH_CHILD = """
import json, sys, time

name, probe = sys.argv[1], sys.argv[2]

from repro.core.shm import _worker_attach_state

start = time.perf_counter()
state = _worker_attach_state(name)
attach_seconds = time.perf_counter() - start

start = time.perf_counter()
parser = state.build_parser()
probability = state.frozen.derivation_probability(
    parser.parse(probe).to_derivation()
)
first_score_seconds = time.perf_counter() - start

print(json.dumps({
    "attach_seconds": attach_seconds,
    "first_score_seconds": first_score_seconds,
    "epoch": state.epoch,
    "probability": probability,
}))
"""


def _corpus_lines() -> list:
    """A deterministic Zipf-shaped training stream (shuffled)."""
    rng = random.Random(0)
    weight = _TOTAL / sum(1.0 / rank for rank in range(1, _DISTINCT + 1))
    lines = []
    for rank in range(1, _DISTINCT + 1):
        word = _SEED_WORDS[rank % len(_SEED_WORDS)]
        password = f"{word}{rank}" if rank % 3 else f"{rank}{word}"
        lines.extend([password] * max(1, int(weight / rank)))
    rng.shuffle(lines)
    return lines


@pytest.fixture(scope="module")
def corpus_model(corpora):
    lines = _corpus_lines()
    base = sorted(corpora["tianya"].unique_passwords())[:_BASE_WORDS]
    meter = FuzzyPSM.train(base, lines)
    return meter, lines


def _attach_cold(segment_name: str, probe: str) -> dict:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    completed = subprocess.run(
        [sys.executable, "-c", _ATTACH_CHILD, segment_name, probe],
        capture_output=True, text=True, env=env, check=False,
    )
    assert completed.returncode == 0, (
        f"attach child failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout)


def test_timing_snapshot_attach(corpus_model, capsys):
    meter, lines = corpus_model
    stream = lines[:_STREAM]
    probe = stream[0]

    publish_start = now()
    segment = meter.shared_segment()
    publish_seconds = now() - publish_start
    expected_probe = meter.probability(probe)

    # (a) cold attach latency, measured in fresh reader processes.
    runs = [
        _attach_cold(segment.name, probe) for _ in range(_ATTACH_RUNS)
    ]
    for run in runs:
        assert run["epoch"] == segment.epoch
        # Cross-process bit-identity rides along with the timing.
        assert run["probability"] == expected_probe
    attach_times = sorted(run["attach_seconds"] for run in runs)
    attach_median = attach_times[len(attach_times) // 2]
    first_score = sorted(
        run["first_score_seconds"] for run in runs
    )[len(runs) // 2]

    # (b) serial batch vs spawn-start jobs=2 on the scored stream.
    meter.probability_many(stream[:1])  # warm parser + frozen kernel
    serial_start = now()
    serial = meter.probability_many(stream)
    serial_seconds = now() - serial_start

    saved = os.environ.get("REPRO_START_METHOD")
    os.environ["REPRO_START_METHOD"] = "spawn"
    try:
        parallel_start = now()
        parallel = meter.probability_many(
            stream, jobs=_JOBS, parallel_threshold=1
        )
        parallel_seconds = now() - parallel_start
    finally:
        if saved is None:
            del os.environ["REPRO_START_METHOD"]
        else:
            os.environ["REPRO_START_METHOD"] = saved

    assert parallel == serial  # bit-identical across the segment plane
    speedup = serial_seconds / parallel_seconds

    emit(
        capsys,
        f"(timing) snapshot plane, {len(lines):,}-entry corpus "
        f"({_DISTINCT:,} distinct), segment "
        f"{segment.size / 2**20:6.1f} MiB:\n"
        f"  publish                    {publish_seconds * 1e3:8.1f} ms\n"
        f"  cold attach (median of {len(runs)})  "
        f"{attach_median * 1e3:8.1f} ms\n"
        f"  first score after attach   {first_score * 1e3:8.1f} ms\n"
        f"  serial {len(stream):,}-stream     {serial_seconds:8.2f} s\n"
        f"  spawn jobs={_JOBS} stream       {parallel_seconds:8.2f} s"
        f"   ({speedup:.2f}x)",
    )
    record(
        "snapshot_attach",
        corpus_entries=len(lines),
        distinct=_DISTINCT,
        segment_bytes=segment.size,
        publish_seconds=publish_seconds,
        attach_median_seconds=attach_median,
        first_score_seconds=first_score,
        stream=len(stream),
        jobs=_JOBS,
        serial_seconds=serial_seconds,
        spawn_parallel_seconds=parallel_seconds,
        spawn_parallel_speedup=speedup,
    )

    if SMOKE:
        return  # equivalence asserted above; latencies are toy-scale

    assert attach_median < _ATTACH_BUDGET_SECONDS, (
        f"cold attach took {attach_median * 1e3:.1f} ms against the "
        f"{len(lines):,}-entry model (budget "
        f"{_ATTACH_BUDGET_SECONDS * 1e3:.0f} ms)"
    )
    if (os.cpu_count() or 1) >= 2:
        assert speedup > 1.5, (
            f"spawn-start jobs={_JOBS} only {speedup:.2f}x over serial "
            f"on a {len(stream):,}-password stream"
        )
