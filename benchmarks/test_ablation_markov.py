"""Ablation — Markov smoothing scheme and order (DESIGN.md §6).

The paper follows Ma et al. in using backoff smoothing and notes that
smoothing is exactly what makes Markov models crack well but measure
weak passwords poorly (Sec. IV-B).  This ablation quantifies both
choices on the canonical CSDN split.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_meters
from repro.meters.markov import MarkovMeter, Smoothing

from bench_lib import emit

SMOOTHINGS = (
    Smoothing.NONE, Smoothing.LAPLACE, Smoothing.BACKOFF,
    Smoothing.GOOD_TURING,
)
ORDERS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def split_items(csdn_quarters):
    train, test = csdn_quarters
    return list(train.items()), test


def test_ablation_markov_smoothing(benchmark, split_items, capsys):
    items, test = split_items

    def evaluate_all():
        results = {}
        for smoothing in SMOOTHINGS:
            meter = MarkovMeter.train(items, order=3,
                                      smoothing=smoothing)
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            results[smoothing.value] = curves[0].mean
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Smoothing", "mean Kendall tau vs ideal"],
        [[name, f"{value:+.3f}"] for name, value in results.items()],
        title="Ablation -- Markov smoothing (order 3, ideal-case CSDN)",
    ))
    # Every smoothing variant produces a usable meter on this split.
    for name, value in results.items():
        assert value > 0.0, name


def test_ablation_markov_order(benchmark, split_items, capsys):
    items, test = split_items

    def evaluate_all():
        results = {}
        for order in ORDERS:
            meter = MarkovMeter.train(items, order=order,
                                      smoothing=Smoothing.BACKOFF)
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            results[order] = curves[0].mean
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Order", "mean Kendall tau vs ideal"],
        [[order, f"{value:+.3f}"] for order, value in results.items()],
        title="Ablation -- Markov order (backoff, ideal-case CSDN)",
    ))
    # Longer contexts beat the order-1 bigram baseline.
    best = max(results, key=results.get)
    assert best >= 2
