"""Serving throughput/latency: micro-batched vs one-request-per-call.

Spins the real ``ReproServer`` (1 warm worker process) on an ephemeral
port and drives it with 64 concurrent keep-alive HTTP clients, twice:

* **batched** — the production configuration (self-clocking window,
  ``max_batch=256``): concurrent ``/check`` requests arriving while a
  batch is in flight coalesce into the next one, so the per-request
  executor hop + pipe round trip to the worker is amortised across
  ~the concurrency level;
* **unbatched** — ``max_batch=1``: identical server, identical
  worker, but every request pays its own worker round trip.

The client keeps its own per-request cost minimal (precomputed request
bytes, single ``readuntil`` per response, JSON decoded after the clock
stops) — clients and server share one event loop, so client overhead
dilutes the measured ratio.

Asserted (full scale): batched throughput ≥ 2x unbatched at 64
clients, server-side p50/p99 under budget, and — always, smoke
included — both modes return scores byte-identical to direct
``probability_many`` on the same model.  Records ``serve_throughput``
to BENCH_timing.json.
"""

import asyncio
import json
import time

from repro.meters import registry
from repro.meters.registry import TrainContext
from repro.serve import ReproServer, ServeConfig

from bench_lib import SMOKE, emit, record

CLIENTS = 8 if SMOKE else 64
REQUESTS_PER_CLIENT = 5 if SMOKE else 30
#: Full runs per mode; the fastest is kept (single shared CPU makes
#: individual runs noisy, and scheduler hiccups only ever slow a run).
REPEATS = 1 if SMOKE else 3

#: Server-side latency budgets (seconds) for the batched run.  The
#: self-clocking batcher adds no window latency; the budgets absorb
#: scheduling jitter under 64-way concurrency on small CI machines.
P50_BUDGET = 0.050
P99_BUDGET = 0.250

_LENGTH_MARK = b"Content-Length: "


def _render_check(password):
    body = json.dumps({"password": password}).encode("utf-8")
    return (
        "POST /check HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


async def _client_loop(port, requests, raw_results):
    """Send each prerendered request, collect raw response bodies."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for password, rendered in requests:
            writer.write(rendered)
            head = await reader.readuntil(b"\r\n\r\n")
            assert b" 200 " in head[:16], head
            start = head.find(_LENGTH_MARK) + len(_LENGTH_MARK)
            length = int(head[start:head.index(b"\r", start)])
            raw_results.append(
                (password, await reader.readexactly(length))
            )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _drive(meter, config, workload):
    """One full client fleet; returns (seconds, raw, telemetry, lat)."""
    server = ReproServer(meter, config)
    await server.start()
    try:
        port = server.port
        # Warm-up outside the clock: connection setup, first batch.
        warm = []
        await _client_loop(port, workload[0][:2], warm)
        raw_results = []
        start = time.perf_counter()
        await asyncio.gather(*[
            _client_loop(port, requests, raw_results)
            for requests in workload
        ])
        seconds = time.perf_counter() - start
        return (seconds, raw_results, server.telemetry,
                server._latency_summary())
    finally:
        await server.stop()


def test_timing_serving_throughput(corpora, csdn_quarters, capsys):
    train, test = csdn_quarters
    context = TrainContext(
        training=tuple(train.items()),
        base_dictionary=tuple(corpora["tianya"].unique_passwords()),
    )
    meter = registry.build_meter("fuzzypsm", context)

    stream = list(test.expand())
    workload = [
        [
            (password, _render_check(password))
            for password in (
                stream[(client * REQUESTS_PER_CLIENT + i) % len(stream)]
                for i in range(REQUESTS_PER_CLIENT)
            )
        ]
        for client in range(CLIENTS)
    ]
    flat = [pw for requests in workload for pw, _rendered in requests]
    reference = dict(zip(flat, meter.probability_many(flat)))

    batched_config = ServeConfig(
        workers=1, batch_window=0.0, max_batch=256
    )
    unbatched_config = ServeConfig(
        workers=1, batch_window=0.0, max_batch=1
    )

    def best_of(config):
        """Fastest of ``REPEATS`` full runs of one mode."""
        best = None
        for _ in range(REPEATS):
            run = asyncio.run(_drive(meter, config, workload))
            if best is None or run[0] < best[0]:
                best = run
        return best

    batched_seconds, batched_raw, telemetry, latency = best_of(
        batched_config
    )
    unbatched_seconds, unbatched_raw, _, _ = best_of(unbatched_config)

    # Equivalence first (always, smoke included): serving — batched or
    # not — returns exactly the direct frozen-kernel batch scores.
    for raw_results in (batched_raw, unbatched_raw):
        assert len(raw_results) == CLIENTS * REQUESTS_PER_CLIENT
        for password, body in raw_results:
            payload = json.loads(body)
            assert payload["probability"] == reference[password], (
                password
            )

    total = CLIENTS * REQUESTS_PER_CLIENT
    batched_rps = total / batched_seconds
    unbatched_rps = total / unbatched_seconds
    speedup = batched_rps / unbatched_rps
    dispatches = telemetry.counter("serve.batch.dispatches")
    mean_batch = total / dispatches if dispatches else 0.0

    emit(
        capsys,
        f"(timing) serving /check, {CLIENTS} clients x "
        f"{REQUESTS_PER_CLIENT} requests, 1 worker:\n"
        f"  batched   {batched_seconds:6.3f} s  "
        f"{batched_rps:8.0f} req/s  "
        f"(mean batch {mean_batch:5.1f})\n"
        f"  unbatched {unbatched_seconds:6.3f} s  "
        f"{unbatched_rps:8.0f} req/s\n"
        f"  speedup   {speedup:5.2f}x   "
        f"p50 {latency['p50'] * 1e3:6.2f} ms   "
        f"p99 {latency['p99'] * 1e3:6.2f} ms",
    )
    record(
        "serve_throughput",
        clients=CLIENTS,
        requests=total,
        batched_seconds=batched_seconds,
        unbatched_seconds=unbatched_seconds,
        batched_rps=batched_rps,
        unbatched_rps=unbatched_rps,
        speedup=speedup,
        mean_batch=mean_batch,
        p50_seconds=latency["p50"],
        p99_seconds=latency["p99"],
    )

    if SMOKE:
        return  # toy-scale ratios/latencies are noise
    assert speedup >= 2.0, (
        f"micro-batching only {speedup:.2f}x over per-call dispatch"
    )
    assert latency["p50"] <= P50_BUDGET, latency
    assert latency["p99"] <= P99_BUDGET, latency
