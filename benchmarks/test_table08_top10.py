"""Table VIII — top-10 most popular passwords of each dataset.

For every corpus the bench prints the synthetic top-10 next to the
published list and checks the calibration claims: the published head
dominates the generated head, the aggregate top-10 share tracks the
published share, and the language signatures the paper highlights
(digit-heavy Chinese heads, word-heavy English heads) hold.
"""

import pytest

from repro.datasets.profiles import DATASET_ORDER, PROFILES
from repro.datasets.stats import top_k_table
from repro.experiments.reporting import format_percent, format_table

from bench_lib import emit


def test_table08_top10(benchmark, corpora, capsys):
    def compute():
        out = {}
        for name in DATASET_ORDER:
            out[name] = top_k_table(corpora[name], k=10)
        return out

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name in DATASET_ORDER:
        table, share = tables[name]
        profile = PROFILES[name]
        overlap = len(
            {pw for pw, _ in table} & set(profile.top10)
        )
        rows.append([
            name,
            ", ".join(pw for pw, _ in table[:5]),
            format_percent(share),
            format_percent(profile.top10_share),
            f"{overlap}/10",
        ])
    emit(capsys, format_table(
        ["Dataset", "Synthetic top-5", "Synth top-10 share",
         "Paper top-10 share", "Head overlap"],
        rows,
        title="Table VIII -- top-10 passwords per dataset",
    ))
    for name in DATASET_ORDER:
        table, share = tables[name]
        profile = PROFILES[name]
        assert share == pytest.approx(profile.top10_share, abs=0.05), name
        generated_head = {pw for pw, _ in table}
        assert len(generated_head & set(profile.top10)) >= 6, name


def test_table08_language_signatures(benchmark, corpora, capsys):
    """Most top-10 Chinese passwords are digit-only; English heads
    carry meaningful letter strings (paper Sec. V-B)."""

    def signatures():
        digit_fractions = {}
        for name in DATASET_ORDER:
            table, _ = top_k_table(corpora[name], k=10)
            digits = sum(1 for pw, _ in table if pw.isdigit())
            digit_fractions[name] = digits / len(table)
        return digit_fractions

    fractions = benchmark.pedantic(signatures, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Dataset", "Digit-only fraction of top-10"],
        [[name, f"{fractions[name]:.0%}"] for name in DATASET_ORDER],
        title="Table VIII -- language signature of the heads",
    ))
    chinese = [n for n in DATASET_ORDER
               if PROFILES[n].language == "Chinese"]
    english = [n for n in DATASET_ORDER
               if PROFILES[n].language == "English"]
    mean_chinese = sum(fractions[n] for n in chinese) / len(chinese)
    mean_english = sum(fractions[n] for n in english) / len(english)
    assert mean_chinese > mean_english
    assert mean_chinese >= 0.7
