"""The two-layer scoring engine: frozen kernel + parallel sweeps.

Layer 1 (``frozen_kernel``): :class:`repro.core.frozen.FrozenGrammar`
compiles the grammar's dict-of-FrequencyDistribution tables into
interned-index flat arrays.  The bench scores the same derivations
through the dict kernel and the frozen kernel, asserts bitwise
equality (the snapshot is an execution strategy, not a model change),
and records the kernel-for-kernel speedup plus the one-off snapshot
build cost.

Layer 2 (``scoring_parallel``): the corpus-evaluation workload — a
large stream with heavy password multiplicity — through three engines:
the naive per-call loop (how evaluation sweeps scored before the batch
API), serial ``probability_many``, and ``probability_many(jobs=4)``.
All three must agree bit for bit; the recorded speedups are measured
against the naive loop, the path every sweep used to take.

Ordering is conservative: the fast paths run first, each on a fresh
meter instance, so any cache state left on shared structures favours
the reference side.
"""

import time
from itertools import cycle, islice

import pytest

from repro.core.frozen import freeze
from repro.core.meter import FuzzyPSM

from bench_lib import SMOKE, emit, record

#: The evaluation-stream shape from the ISSUE acceptance bar: >= 100k
#: scores with ~30% distinct passwords.  Smoke keeps the same shape at
#: toy scale (equivalence still holds; ratios are skipped).
STREAM_SIZE = 600 if SMOKE else 100_000
DISTINCT_SHARE = 0.3


@pytest.fixture(scope="module")
def meter(corpora, csdn_quarters):
    train, _ = csdn_quarters
    return FuzzyPSM.train(
        base_dictionary=corpora["tianya"].unique_passwords(),
        training=list(train.items()),
    )


@pytest.fixture(scope="module")
def evaluation_stream(corpora, csdn_quarters):
    """~30%-distinct stream: test-quarter uniques topped up from rockyou."""
    _, test = csdn_quarters
    pool = list(dict.fromkeys(
        list(test.unique_passwords())
        + list(corpora["rockyou"].unique_passwords())
    ))
    distinct = pool[:max(1, int(STREAM_SIZE * DISTINCT_SHARE))]
    return list(islice(cycle(distinct), STREAM_SIZE)), len(distinct)


def test_timing_frozen_kernel(meter, csdn_quarters, capsys):
    _, test = csdn_quarters
    derivations = [
        meter.parse(password).to_derivation()
        for password in test.unique_passwords()
    ]

    start = time.perf_counter()
    frozen = freeze(meter.grammar)
    build_seconds = time.perf_counter() - start

    def best_of_three(score):
        timings = []
        for _ in range(3):
            start = time.perf_counter()
            values = [score(derivation) for derivation in derivations]
            timings.append(time.perf_counter() - start)
        return values, min(timings)

    frozen_values, frozen_seconds = best_of_three(
        frozen.derivation_probability
    )
    dict_values, dict_seconds = best_of_three(
        meter.grammar.derivation_probability
    )

    assert frozen_values == dict_values  # bit-identical, or it is a bug
    speedup = dict_seconds / frozen_seconds
    emit(
        capsys,
        f"(timing) frozen kernel: {len(derivations):,} derivations -- "
        f"dict {dict_seconds:.3f} s, frozen {frozen_seconds:.3f} s "
        f"({speedup:.2f}x; snapshot build {build_seconds:.3f} s)",
    )
    record("frozen_kernel", derivations=len(derivations),
           dict_seconds=dict_seconds, frozen_seconds=frozen_seconds,
           build_seconds=build_seconds, speedup=speedup)
    assert SMOKE or speedup >= 1.5


def test_timing_parallel_scoring(meter, evaluation_stream, capsys):
    stream, distinct = evaluation_stream

    def fresh_meter():
        clone = FuzzyPSM(meter.grammar, meter.trie, meter.config)
        clone.probability("warmup")  # build the compiled snapshot
        return clone

    def best_of_three(engine):
        timings = []
        for _ in range(3):
            clone = fresh_meter()  # cold caches for every trial
            start = time.perf_counter()
            values = engine(clone)
            timings.append(time.perf_counter() - start)
        return values, min(timings)

    parallel, parallel_seconds = best_of_three(
        lambda clone: clone.probability_many(
            stream, jobs=4, parallel_threshold=0
        )
    )
    serial, serial_seconds = best_of_three(
        lambda clone: clone.probability_many(stream)
    )
    naive, naive_seconds = best_of_three(
        lambda clone: [clone.probability(password) for password in stream]
    )

    assert parallel == serial == naive  # engines must agree bit for bit
    parallel_speedup = naive_seconds / parallel_seconds
    serial_speedup = naive_seconds / serial_seconds
    emit(
        capsys,
        f"(timing) parallel scoring: {len(stream):,} scores "
        f"({distinct:,} distinct) -- per-call {naive_seconds:.2f} s, "
        f"serial batch {serial_seconds:.2f} s ({serial_speedup:.2f}x), "
        f"jobs=4 {parallel_seconds:.2f} s ({parallel_speedup:.2f}x)",
    )
    record("scoring_parallel", stream=len(stream), distinct=distinct,
           jobs=4, naive_seconds=naive_seconds,
           serial_seconds=serial_seconds,
           parallel_seconds=parallel_seconds,
           serial_speedup=serial_speedup,
           parallel_speedup=parallel_speedup)
    assert SMOKE or parallel_speedup >= 2.0
