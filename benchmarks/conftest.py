"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table or figure and prints the same
rows/series the paper reports (next to the published values where they
are known).  Output is emitted through :func:`emit`, which bypasses
pytest's capture so ``pytest benchmarks/ --benchmark-only`` shows the
tables inline.

Scale knobs (environment variables):

* ``REPRO_BENCH_CORPUS``  — entries per test corpus (default 20000);
* ``REPRO_BENCH_BASE``    — entries in base dictionaries (default 100000).

The paper's corpora are three orders of magnitude larger; the claims
under reproduction are orderings and curve shapes, which are stable at
this laptop scale (see DESIGN.md §4).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

import pytest

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.runner import ExperimentConfig, run_scenario
from repro.experiments.scenarios import Scenario

from bench_lib import BASE_SIZE, CORPUS_SIZE, SEED


@pytest.fixture(scope="session")
def ecosystem() -> SyntheticEcosystem:
    return SyntheticEcosystem(seed=SEED, population=100_000)


@pytest.fixture(scope="session")
def corpora(ecosystem) -> Dict[str, PasswordCorpus]:
    """Lazily generated test corpora, cached for the whole bench run."""

    class _Cache(dict):
        def __missing__(self, name: str) -> PasswordCorpus:
            size = BASE_SIZE if name in ("rockyou", "tianya") else CORPUS_SIZE
            corpus = ecosystem.generate(name, total=size, seed=SEED)
            self[name] = corpus
            return corpus

    return _Cache()


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(
        corpus_size=CORPUS_SIZE, base_corpus_size=BASE_SIZE, seed=SEED
    )


@pytest.fixture(scope="session")
def scenario_runner(ecosystem, experiment_config):
    """Cached scenario execution shared by the Fig. 9/13 benches."""
    cache: Dict[Tuple[str, str, int], object] = {}

    def run(scenario: Scenario, metric=None, metric_name="kendall",
            min_frequency=4):
        key = (scenario.name, metric_name, min_frequency)
        if key not in cache:
            kwargs = dict(
                ecosystem=ecosystem, config=experiment_config,
                metric_name=metric_name, min_frequency=min_frequency,
            )
            if metric is not None:
                kwargs["metric"] = metric
            cache[key] = run_scenario(scenario, **kwargs)
        return cache[key]

    return run


@pytest.fixture(scope="session")
def csdn_quarters(corpora):
    """The paper's canonical CSDN 1/4-train + 1/4-test split (Sec. IV-A)."""
    quarters = corpora["csdn"].split(
        [0.25, 0.25, 0.25, 0.25], random.Random(SEED)
    )
    return quarters[0], quarters[3]
