"""Fig. 13(a)-(i) — ideal-case evaluation on all nine corpora.

Training is 1/4 of the test dataset, testing a disjoint 1/4; curves
are each meter's Kendall tau against the ideal meter over the top-k
most popular test passwords with f_pw >= 4 (where the ideal meter is
reliable, Sec. V-D).

Published shape reproduced here: the two structure-learning meters
(fuzzyPSM, PCFG) dominate the field on average, NIST is the weakest
meter overall, and fuzzyPSM's edge concentrates in the small-k region
— the weak passwords a PSM exists to catch.  Individual panels vary,
as they visibly do in the paper.
"""

import pytest

from repro.experiments.reporting import format_curves, format_ranking
from repro.experiments.scenarios import IDEAL_SCENARIOS

from bench_lib import emit


@pytest.mark.parametrize(
    "scenario", IDEAL_SCENARIOS, ids=[s.name for s in IDEAL_SCENARIOS]
)
def test_fig13_ideal_case(benchmark, scenario_runner, capsys, scenario):
    result = benchmark.pedantic(
        lambda: scenario_runner(scenario), rounds=1, iterations=1
    )
    emit(capsys, format_curves(result))
    emit(capsys, f"Fig {scenario.figure} ranking: "
                 + format_ranking(result))
    ranking = result.ranking()
    # Robust per-panel claims: some trained meter beats every static
    # industry meter, and fuzzyPSM always beats the NIST heuristic.
    academic_best = min(
        ranking.index("fuzzyPSM"), ranking.index("PCFG"),
        ranking.index("Markov"),
    )
    industry_worst = max(
        ranking.index("Zxcvbn"), ranking.index("KeePSM"),
        ranking.index("NIST"),
    )
    assert academic_best < industry_worst
    assert ranking.index("fuzzyPSM") < ranking.index("NIST")


def test_fig13_ideal_aggregate(benchmark, scenario_runner, capsys):
    """Aggregate over the nine panels: fuzzyPSM and PCFG are the two
    best meters by mean rank; NIST is the worst."""

    def mean_positions():
        positions = {}
        for scenario in IDEAL_SCENARIOS:
            ranking = scenario_runner(scenario).ranking()
            for index, meter in enumerate(ranking):
                positions.setdefault(meter, []).append(index)
        return {
            meter: sum(values) / len(values)
            for meter, values in positions.items()
        }

    means = benchmark.pedantic(mean_positions, rounds=1, iterations=1)
    ordered = sorted(means, key=means.get)
    emit(capsys, "Fig 13(a-i) mean rank across panels: " + " > ".join(
        f"{meter}({means[meter]:.2f})" for meter in ordered
    ))
    assert set(ordered[:2]) == {"fuzzyPSM", "PCFG"}
    assert ordered[-1] == "NIST"


def test_fig13_ideal_weak_password_region(benchmark, scenario_runner,
                                          capsys):
    """The paper's headline, restricted to where it lives: on the
    most popular (weakest) passwords — the first points of each curve
    — fuzzyPSM leads more panels than any other meter."""

    def head_leaders():
        leaders = []
        for scenario in IDEAL_SCENARIOS:
            result = scenario_runner(scenario)
            head_mean = {
                curve.meter: sum(p.value for p in curve.points[:2]) / 2
                for curve in result.curves
            }
            leaders.append(max(head_mean, key=head_mean.get))
        return leaders

    leaders = benchmark.pedantic(head_leaders, rounds=1, iterations=1)
    emit(capsys, "Fig 13(a-i) small-k leader per panel: "
                 + ", ".join(leaders))
    wins = {meter: leaders.count(meter) for meter in set(leaders)}
    assert wins.get("fuzzyPSM", 0) >= max(
        count for meter, count in wins.items() if meter != "fuzzyPSM"
    ) or wins.get("fuzzyPSM", 0) + wins.get("PCFG", 0) >= 5
