"""Timing claims of Sec. IV — the real pytest-benchmark micro-benches.

The paper reports, on a 3.60 GHz i7 PC:

* measuring one password "takes less than 2ms ... suitable for
  real-time feedbacks" (less than 30ms per derivation in the worst
  grammar);
* the training phase takes "roughly 10 * l seconds" for a training
  set of l million passwords — i.e. about 10 microseconds/password.

These benches time the same operations on the bench corpus and assert
only the order-of-magnitude budgets (absolute hardware differs).

The performance-layer benches (compiled vs pointer trie, bulk vs
per-call measuring, serial vs parallel training) additionally persist
their numbers to ``BENCH_timing.json`` at the repo root via
:func:`bench_lib.record`, so the perf trajectory is tracked across PRs.
"""

import random
import time

import pytest

from repro.core.meter import FuzzyPSM
from repro.core.parser import FuzzyParser
from repro.core.training import train_grammar
from repro.metrics.guessnumber import MonteCarloEstimator

from bench_lib import SMOKE, emit, record


@pytest.fixture(scope="module")
def meter(corpora, csdn_quarters):
    train, _ = csdn_quarters
    return FuzzyPSM.train(
        base_dictionary=corpora["tianya"].unique_passwords(),
        training=list(train.items()),
    )


@pytest.fixture(scope="module")
def probe_passwords(csdn_quarters):
    _, test = csdn_quarters
    head = [pw for pw, _ in test.most_common(50)]
    tail = [pw for pw, c in test.most_common() if c == 1][:50]
    return head + tail


def test_timing_measure_single_password(benchmark, meter,
                                        probe_passwords, capsys):
    passwords = probe_passwords
    index = iter(range(10 ** 9))

    def measure_one():
        return meter.probability(
            passwords[next(index) % len(passwords)]
        )

    benchmark(measure_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one measurement: {mean_seconds * 1e3:.4f} ms "
                 "(paper budget: < 2 ms)")
    record("measure_single", mean_ms=mean_seconds * 1e3)
    assert SMOKE or mean_seconds < 0.002


def test_timing_training_throughput(benchmark, corpora, csdn_quarters,
                                    capsys):
    train, _ = csdn_quarters
    base_words = corpora["tianya"].unique_passwords()
    items = list(train.items())

    meter = benchmark.pedantic(
        lambda: FuzzyPSM.train(base_dictionary=base_words,
                               training=items),
        rounds=1, iterations=1,
    )
    seconds = benchmark.stats["mean"]
    per_million = seconds / train.total * 1e6
    emit(
        capsys,
        f"(timing) training: {seconds:.2f} s for {train.total:,} "
        f"passwords (+{len(base_words):,}-word base trie) -> "
        f"{per_million:.1f} s per million (paper: ~10 s per million)",
    )
    record("training_serial", seconds=seconds,
           passwords=train.total, seconds_per_million=per_million)
    assert meter.grammar.total_passwords == train.total
    # Same order of magnitude as the paper's figure (pure Python
    # against the authors' C-era constant: allow a generous 60x).
    assert SMOKE or per_million < 600


def test_timing_update_phase(benchmark, meter, capsys):
    passwords = ["brandnew1", "Password2026", "qwerty!99"]
    index = iter(range(10 ** 9))

    def accept_one():
        meter.accept(passwords[next(index) % len(passwords)])

    benchmark(accept_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one update: {mean_seconds * 1e6:.1f} us")
    # The update phase must stay interactive (well under measuring).
    assert SMOKE or mean_seconds < 0.002


def test_timing_monte_carlo_estimation(benchmark, meter, capsys):
    estimator = MonteCarloEstimator(
        meter, sample_size=5_000, rng=random.Random(0)
    )
    probabilities = [10.0 ** -k for k in range(2, 12)]
    index = iter(range(10 ** 9))

    def estimate_one():
        return estimator.guess_number(
            probabilities[next(index) % len(probabilities)]
        )

    benchmark(estimate_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one guess-number lookup: "
                 f"{mean_seconds * 1e6:.2f} us")
    # Lookups are binary searches; they must be micro-second scale.
    assert SMOKE or mean_seconds < 0.001


# --- performance layer (compiled trie / batch / parallel) -----------------


def test_timing_bulk_vs_single_measuring(meter, csdn_quarters, capsys):
    """``probability_many`` vs a per-call loop on an evaluation stream.

    The stream is three scoring sweeps over the test quarter *with*
    multiplicity — the shape of the corpus-evaluation workload, which
    scores the same leak once per artefact (guess-number scatter,
    cracking curve, robustness re-runs) and used to re-parse every
    repeated password from scratch each time.  The batch path parses
    each distinct password once and serves every repeat from the parse
    cache and the per-batch memo.
    """
    _, test = csdn_quarters
    stream = list(test.expand()) * 3
    distinct = test.unique

    single_meter = FuzzyPSM(meter.grammar, meter.trie, meter.config)
    single_meter.probability("warmup")  # build the compiled snapshot
    start = time.perf_counter()
    single = [single_meter.probability(pw) for pw in stream]
    single_seconds = time.perf_counter() - start

    bulk_meter = FuzzyPSM(meter.grammar, meter.trie, meter.config)
    bulk_meter.probability("warmup")
    start = time.perf_counter()
    bulk = bulk_meter.probability_many(stream)
    bulk_seconds = time.perf_counter() - start

    assert bulk == single  # the fast path must not change a single value
    speedup = single_seconds / bulk_seconds
    emit(
        capsys,
        f"(timing) bulk measuring: {len(stream):,} scores "
        f"({distinct:,} distinct) -- per-call {single_seconds:.2f} s, "
        f"probability_many {bulk_seconds:.2f} s -> {speedup:.1f}x",
    )
    record("measure_bulk_vs_single", stream=len(stream),
           distinct=distinct, single_seconds=single_seconds,
           bulk_seconds=bulk_seconds, speedup=speedup)
    assert SMOKE or speedup >= 2.0


def test_timing_compiled_vs_pointer_parse(meter, csdn_quarters, capsys):
    """Full-parse wall time: compiled flat-array trie vs pointer trie.

    Caches are disabled so this isolates the matcher itself.  The two
    parsers must produce identical parses; the ratio is recorded for
    the cross-PR trajectory (the compiled trie's main wins are memory
    footprint and worker startup, not single-thread parse speed).
    """
    _, test = csdn_quarters
    probes = test.unique_passwords()
    pointer_parser = FuzzyParser(meter.trie, use_compiled=False,
                                 parse_cache_size=0)
    compiled_parser = FuzzyParser(meter.trie, use_compiled=True,
                                  parse_cache_size=0)
    compiled_parser.parse("warmup")  # build the compiled snapshot

    def best_of_three(parser):
        timings = []
        for _ in range(3):
            start = time.perf_counter()
            parses = [parser.parse(pw) for pw in probes]
            timings.append(time.perf_counter() - start)
        return parses, min(timings)

    pointer_parses, pointer_seconds = best_of_three(pointer_parser)
    compiled_parses, compiled_seconds = best_of_three(compiled_parser)

    assert compiled_parses == pointer_parses
    ratio = pointer_seconds / compiled_seconds
    emit(
        capsys,
        f"(timing) parse {len(probes):,} unique passwords -- pointer "
        f"{pointer_seconds:.2f} s, compiled {compiled_seconds:.2f} s "
        f"({ratio:.2f}x)",
    )
    record("parse_compiled_vs_pointer", probes=len(probes),
           pointer_seconds=pointer_seconds,
           compiled_seconds=compiled_seconds, ratio=ratio)


def test_timing_parallel_training(meter, csdn_quarters, capsys):
    """Serial vs ``jobs=2`` training: identical grammars, both timed.

    The container may expose a single CPU, so no speedup is asserted —
    the contract under test is exactness of the chunk-and-merge path;
    the timings go to ``BENCH_timing.json`` where multi-core runs show
    the scaling.  ``parallel_threshold=0`` forces the pool: the bench
    corpus sits below ``PARALLEL_MIN_ENTRIES``, where production calls
    would (correctly) fall back to serial — exactly because of the
    startup cost these numbers record.
    """
    train, _ = csdn_quarters
    items = list(train.items())
    trie = meter.trie

    start = time.perf_counter()
    serial = train_grammar(items, trie)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = train_grammar(items, trie, jobs=2, parallel_threshold=0)
    parallel_seconds = time.perf_counter() - start

    assert parallel == serial  # chunk-and-merge is exact
    emit(
        capsys,
        f"(timing) training {train.total:,} passwords -- serial "
        f"{serial_seconds:.2f} s, jobs=2 {parallel_seconds:.2f} s",
    )
    record("training_serial_vs_jobs2", passwords=train.total,
           serial_seconds=serial_seconds,
           parallel_seconds=parallel_seconds)


def test_timing_telemetry_overhead(meter, csdn_quarters, capsys):
    """Telemetry cost on the bulk-scoring workload: noop vs enabled.

    DESIGN.md §9 budgets the collecting backend at under 5% on the
    ``probability_many`` sweep and the noop backend at no measurable
    cost.  Both ratios are measured on the same stream as
    ``test_timing_bulk_vs_single_measuring`` and recorded to
    ``BENCH_timing.json``.  The two backends run *interleaved* (noop,
    enabled, noop, enabled, ...) so slow machine-wide drift hits both
    sides equally instead of masquerading as telemetry cost.  Scores
    must be bit-identical across backends — telemetry may observe the
    pipeline, never steer it.
    """
    from repro import obs
    from repro.obs import NoopTelemetry, Telemetry

    _, test = csdn_quarters
    stream = list(test.expand()) * 3

    def one_run(backend):
        obs.enable(backend)
        try:
            run_meter = FuzzyPSM(meter.grammar, meter.trie, meter.config)
            run_meter.probability("warmup")
            start = time.perf_counter()
            scores = run_meter.probability_many(stream)
            return scores, time.perf_counter() - start
        finally:
            obs.disable()

    baseline_scores = enabled_scores = None
    baseline_timings, enabled_timings = [], []
    for _ in range(6):
        baseline_scores, seconds = one_run(NoopTelemetry())
        baseline_timings.append(seconds)
        enabled_scores, seconds = one_run(Telemetry())
        enabled_timings.append(seconds)
    baseline_seconds = min(baseline_timings)
    enabled_seconds = min(enabled_timings)

    assert enabled_scores == baseline_scores
    enabled_ratio = enabled_seconds / baseline_seconds
    emit(
        capsys,
        f"(timing) telemetry on {len(stream):,} scores -- noop "
        f"{baseline_seconds:.2f} s, enabled {enabled_seconds:.2f} s "
        f"({(enabled_ratio - 1) * 100:+.1f}%)",
    )
    record("telemetry_overhead", stream=len(stream),
           noop_seconds=baseline_seconds,
           enabled_seconds=enabled_seconds,
           enabled_ratio=enabled_ratio)
    # Generous 1.15x ceiling against CI jitter; the recorded numbers
    # carry the real (<5%) figure.
    assert SMOKE or enabled_ratio < 1.15
