"""Timing claims of Sec. IV — the real pytest-benchmark micro-benches.

The paper reports, on a 3.60 GHz i7 PC:

* measuring one password "takes less than 2ms ... suitable for
  real-time feedbacks" (less than 30ms per derivation in the worst
  grammar);
* the training phase takes "roughly 10 * l seconds" for a training
  set of l million passwords — i.e. about 10 microseconds/password.

These benches time the same operations on the bench corpus and assert
only the order-of-magnitude budgets (absolute hardware differs).
"""

import random

import pytest

from repro.core.meter import FuzzyPSM
from repro.metrics.guessnumber import MonteCarloEstimator

from bench_lib import emit


@pytest.fixture(scope="module")
def meter(corpora, csdn_quarters):
    train, _ = csdn_quarters
    return FuzzyPSM.train(
        base_dictionary=corpora["tianya"].unique_passwords(),
        training=list(train.items()),
    )


@pytest.fixture(scope="module")
def probe_passwords(csdn_quarters):
    _, test = csdn_quarters
    head = [pw for pw, _ in test.most_common(50)]
    tail = [pw for pw, c in test.most_common() if c == 1][:50]
    return head + tail


def test_timing_measure_single_password(benchmark, meter,
                                        probe_passwords, capsys):
    passwords = probe_passwords
    index = iter(range(10 ** 9))

    def measure_one():
        return meter.probability(
            passwords[next(index) % len(passwords)]
        )

    benchmark(measure_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one measurement: {mean_seconds * 1e3:.4f} ms "
                 "(paper budget: < 2 ms)")
    assert mean_seconds < 0.002


def test_timing_training_throughput(benchmark, corpora, csdn_quarters,
                                    capsys):
    train, _ = csdn_quarters
    base_words = corpora["tianya"].unique_passwords()
    items = list(train.items())

    meter = benchmark.pedantic(
        lambda: FuzzyPSM.train(base_dictionary=base_words,
                               training=items),
        rounds=1, iterations=1,
    )
    seconds = benchmark.stats["mean"]
    per_million = seconds / train.total * 1e6
    emit(
        capsys,
        f"(timing) training: {seconds:.2f} s for {train.total:,} "
        f"passwords (+{len(base_words):,}-word base trie) -> "
        f"{per_million:.1f} s per million (paper: ~10 s per million)",
    )
    assert meter.grammar.total_passwords == train.total
    # Same order of magnitude as the paper's figure (pure Python
    # against the authors' C-era constant: allow a generous 60x).
    assert per_million < 600


def test_timing_update_phase(benchmark, meter, capsys):
    passwords = ["brandnew1", "Password2026", "qwerty!99"]
    index = iter(range(10 ** 9))

    def accept_one():
        meter.accept(passwords[next(index) % len(passwords)])

    benchmark(accept_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one update: {mean_seconds * 1e6:.1f} us")
    # The update phase must stay interactive (well under measuring).
    assert mean_seconds < 0.002


def test_timing_monte_carlo_estimation(benchmark, meter, capsys):
    estimator = MonteCarloEstimator(
        meter, sample_size=5_000, rng=random.Random(0)
    )
    probabilities = [10.0 ** -k for k in range(2, 12)]
    index = iter(range(10 ** 9))

    def estimate_one():
        return estimator.guess_number(
            probabilities[next(index) % len(probabilities)]
        )

    benchmark(estimate_one)
    mean_seconds = benchmark.stats["mean"]
    emit(capsys, f"(timing) one guess-number lookup: "
                 f"{mean_seconds * 1e6:.2f} us")
    # Lookups are binary searches; they must be micro-second scale.
    assert mean_seconds < 0.001
