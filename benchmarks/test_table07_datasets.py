"""Table VII — basic info about the eleven password datasets.

Prints the published unique/total counts next to the synthetic
corpora's (scaled) counts and checks the metadata and the scaling
invariants the generator must preserve.
"""

import pytest

from repro.datasets.profiles import DATASET_ORDER, PROFILES
from repro.datasets.stats import summary_row
from repro.experiments.reporting import format_table

from bench_lib import CORPUS_SIZE, emit


def test_table07_datasets(benchmark, corpora, capsys):
    def rows():
        out = []
        for name in DATASET_ORDER:
            profile = PROFILES[name]
            corpus = corpora[name]
            out.append([
                name, profile.service, profile.location,
                profile.language,
                f"{profile.unique_passwords:,}",
                f"{profile.total_passwords:,}",
                f"{corpus.unique:,}", f"{corpus.total:,}",
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Dataset", "Service", "Location", "Language",
         "Paper unique", "Paper total", "Synth unique", "Synth total"],
        table,
        title="Table VII -- the eleven password datasets "
              "(paper scale vs bench scale)",
    ))
    for name in DATASET_ORDER:
        profile = PROFILES[name]
        corpus = corpora[name]
        assert corpus.service == profile.service
        assert corpus.language == profile.language
        # Duplication factor (total/unique) within 2x of the paper's.
        synthetic = corpus.total / corpus.unique
        published = profile.duplication_factor
        assert synthetic == pytest.approx(published, rel=1.0), name


def test_table07_total_volume(benchmark, capsys):
    total = benchmark(
        lambda: sum(p.total_passwords for p in PROFILES.values())
    )
    emit(capsys, f"Table VII -- total corpus volume: {total:,} "
                 "(paper: 97.43 million)")
    assert total == pytest.approx(97.4e6, rel=0.01)
