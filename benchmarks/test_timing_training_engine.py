"""Corpus-scale training: in-memory serial vs streamed vs parallel.

The streaming trainer (``train_grammar_streaming``) exists for corpora
that don't fit comfortably in memory: the loader yields bounded
``(password, count)`` chunks, each chunk is aggregated per distinct
password and parsed through the shared parse cache, and with
``jobs > 1`` chunks are parsed in persistent workers that ship compact
count-table deltas back instead of pickled grammars.

This bench trains fuzzyPSM on a ~10^6-entry Zipf-shaped plain corpus
three ways —

* ``serial``            — classic ``FuzzyPSM.train`` over the corpus
                          materialised as one in-memory list,
* ``streamed_serial``   — ``FuzzyPSM.train_streaming`` over loader
                          chunks, ``jobs=1``,
* ``streamed_parallel`` — the same stream with ``jobs=2``,

and asserts the three grammars are byte-identical (same ``to_dict``
SHA-256), that the streamed paths hold peak RSS below the in-memory
path, and that the streamed parallel path beats serial by >1.5x.

Each configuration runs in a **fresh subprocess**: ``ru_maxrss`` is a
per-process high-water mark (monotone within a process, so in-process
ordering would contaminate later configs), and a cold process also
gives every config the same allocator/import state for fair timing.

On a single-core host the trainer clamps ``jobs`` to the core count
and the ``streamed_parallel`` config degrades — observably, via
``training.parallel.fallback`` — to the streamed serial engine, whose
win over the in-memory path is algorithmic: each chunk is aggregated
per distinct password and parsed through the shared LRU cache, so a
Zipf-shaped corpus does a fraction of the parse work.  (An earlier
revision let ``jobs=2`` spawn real workers here; IPC ate the entire
2x algorithmic win — 38.3s vs 19.7s streamed serial — which is
exactly why the clamp exists.)  With more cores the pool parses
chunks concurrently on top of the same aggregation.

Smoke mode shrinks the corpus and keeps only the equivalence asserts;
at toy scale the streamed stream falls below the parallel threshold
and exercises the serial-fallback path instead, which is asserted
byte-identical all the same.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from bench_lib import SMOKE, emit, record

#: Corpus shape (full scale / smoke scale).
_TOTAL = 20_000 if SMOKE else 1_000_000
_DISTINCT = 5_000 if SMOKE else 250_000
_CHUNK = 2_000 if SMOKE else 50_000
_BASE_WORDS = 2_000 if SMOKE else 20_000
_JOBS = 2

#: Fixed peak-RSS budget for the streamed engines at full scale
#: (measured ~127 MiB on the 10^6 corpus; the in-memory serial path
#: sits at ~155 MiB, so a breach means streaming stopped streaming).
_RSS_BUDGET_KIB = 200 * 1024

_SEED_WORDS = [
    "password", "dragon", "monkey", "qwerty", "sunshine", "shadow",
    "master", "killer", "angel", "summer", "love", "soccer", "tiger",
    "pepper", "silver", "winter", "flower", "cookie",
]

#: One training configuration, run cold.  argv: mode corpus base chunk
#: jobs; prints a single JSON object on stdout.
_CHILD = """
import hashlib, json, resource, sys, time

mode, corpus_path, base_path = sys.argv[1], sys.argv[2], sys.argv[3]
chunk_size, jobs = int(sys.argv[4]), int(sys.argv[5])

from repro.core import FuzzyPSM
from repro.datasets.loaders import iter_password_entries, \\
    stream_corpus_chunks

with open(base_path, encoding="utf-8") as handle:
    base = [line.rstrip("\\n") for line in handle if line.strip()]

start = time.perf_counter()
if mode == "serial":
    entries = [
        password
        for password, count in iter_password_entries(corpus_path)
        for _ in range(count)
    ]
    meter = FuzzyPSM.train(base, entries)
elif mode == "streamed_serial":
    meter = FuzzyPSM.train_streaming(
        base, stream_corpus_chunks(corpus_path, chunk_size=chunk_size),
        jobs=1,
    )
elif mode == "streamed_parallel":
    meter = FuzzyPSM.train_streaming(
        base, stream_corpus_chunks(corpus_path, chunk_size=chunk_size),
        jobs=jobs,
    )
else:
    raise SystemExit(f"unknown mode {mode!r}")
seconds = time.perf_counter() - start

digest = hashlib.sha256(
    json.dumps(meter.to_dict()).encode("utf-8")
).hexdigest()
print(json.dumps({
    "seconds": seconds,
    "rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "sha256": digest,
}))
"""


def _write_corpus(path: str) -> int:
    """A deterministic Zipf-shaped plain corpus; returns line count.

    Rank ``r`` gets ``~C/r`` occurrences (floor 1), the classic
    password-frequency shape, and the lines are shuffled so first-seen
    order — which the grammar's count tables inherit — is non-trivial.
    """
    rng = random.Random(0)
    weight = _TOTAL / sum(1.0 / rank for rank in range(1, _DISTINCT + 1))
    lines = []
    for rank in range(1, _DISTINCT + 1):
        word = _SEED_WORDS[rank % len(_SEED_WORDS)]
        password = f"{word}{rank}" if rank % 3 else f"{rank}{word}"
        lines.extend([password] * max(1, int(weight / rank)))
    rng.shuffle(lines)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def _run_config(mode: str, corpus: str, base: str) -> dict:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, corpus, base,
         str(_CHUNK), str(_JOBS)],
        capture_output=True, text=True, env=env, check=False,
    )
    assert completed.returncode == 0, (
        f"{mode} trainer failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout)


@pytest.fixture(scope="module")
def training_files(tmp_path_factory, corpora):
    tmp = tmp_path_factory.mktemp("training-engine")
    corpus = str(tmp / "training.txt")
    total = _write_corpus(corpus)
    base = str(tmp / "base.txt")
    words = sorted(corpora["tianya"].unique_passwords())[:_BASE_WORDS]
    with open(base, "w", encoding="utf-8") as handle:
        handle.write("\n".join(words) + "\n")
    return corpus, base, total


def test_timing_streaming_training(training_files, capsys):
    corpus, base, total = training_files

    results = {
        mode: _run_config(mode, corpus, base)
        for mode in ("serial", "streamed_serial", "streamed_parallel")
    }

    # The trained grammars must be byte-identical across all engines.
    digests = {mode: result["sha256"] for mode, result in results.items()}
    assert len(set(digests.values())) == 1, digests

    speedup = (
        results["serial"]["seconds"]
        / results["streamed_parallel"]["seconds"]
    )
    lines = [
        f"  {mode:17s} {result['seconds']:8.2f} s   "
        f"peak RSS {result['rss_kib'] / 1024:7.1f} MiB"
        for mode, result in results.items()
    ]
    emit(
        capsys,
        f"(timing) streaming training, {total:,} entries "
        f"({_DISTINCT:,} distinct, chunks of {_CHUNK:,}):\n"
        + "\n".join(lines)
        + f"\n  parallel speedup over in-memory serial: {speedup:.2f}x",
    )
    record(
        "training_streaming_parallel",
        total_entries=total,
        distinct=_DISTINCT,
        chunk_size=_CHUNK,
        jobs=_JOBS,
        serial_seconds=results["serial"]["seconds"],
        streamed_serial_seconds=results["streamed_serial"]["seconds"],
        streamed_parallel_seconds=results["streamed_parallel"]["seconds"],
        parallel_speedup=speedup,
        serial_rss_kib=results["serial"]["rss_kib"],
        streamed_serial_rss_kib=results["streamed_serial"]["rss_kib"],
        streamed_parallel_rss_kib=results["streamed_parallel"]["rss_kib"],
    )

    if SMOKE:
        return  # equivalence asserted above; ratios/RSS are toy-scale

    assert speedup > 1.5, (
        f"streamed parallel training only {speedup:.2f}x over serial"
    )
    # Streaming exists to bound memory: both streamed engines must undercut
    # the in-memory path's high-water mark AND stay inside a fixed budget
    # at corpus scale (a breach means a chunk, window or delta started
    # accumulating).
    for mode in ("streamed_serial", "streamed_parallel"):
        assert results[mode]["rss_kib"] < results["serial"]["rss_kib"], (
            f"{mode} peak RSS {results[mode]['rss_kib']} KiB is not "
            f"below in-memory serial {results['serial']['rss_kib']} KiB"
        )
        assert results[mode]["rss_kib"] < _RSS_BUDGET_KIB, (
            f"{mode} peak RSS {results[mode]['rss_kib']} KiB exceeds "
            f"the {_RSS_BUDGET_KIB} KiB streaming budget"
        )
