"""Fig. 13(j)-(p) — real-world-case evaluation on seven corpora.

Training is a leaked similar-service corpus (Phpbb for English
targets, Weibo for Chinese) plus 1/4 of the test set (the adaptive
update stream); testing is the remaining 3/4.  The paper finds
fuzzyPSM's lead "particularly prominent in the real-world cases".

Reproduced shape: fuzzyPSM and PCFG occupy the top two mean ranks in
every panel's neighbourhood, fuzzyPSM leads the weak-password (small
k) region, and NIST is last on aggregate.
"""

import pytest

from repro.experiments.reporting import format_curves, format_ranking
from repro.experiments.scenarios import REAL_SCENARIOS

from bench_lib import emit


@pytest.mark.parametrize(
    "scenario", REAL_SCENARIOS, ids=[s.name for s in REAL_SCENARIOS]
)
def test_fig13_real_case(benchmark, scenario_runner, capsys, scenario):
    result = benchmark.pedantic(
        lambda: scenario_runner(scenario), rounds=1, iterations=1
    )
    emit(capsys, format_curves(result))
    emit(capsys, f"Fig {scenario.figure} ranking: "
                 + format_ranking(result))
    ranking = result.ranking()
    academic_best = min(
        ranking.index("fuzzyPSM"), ranking.index("PCFG"),
        ranking.index("Markov"),
    )
    industry_worst = max(
        ranking.index("Zxcvbn"), ranking.index("KeePSM"),
        ranking.index("NIST"),
    )
    assert academic_best < industry_worst
    assert ranking.index("fuzzyPSM") < ranking.index("NIST")


def test_fig13_real_aggregate(benchmark, scenario_runner, capsys):
    def mean_positions():
        positions = {}
        for scenario in REAL_SCENARIOS:
            ranking = scenario_runner(scenario).ranking()
            for index, meter in enumerate(ranking):
                positions.setdefault(meter, []).append(index)
        return {
            meter: sum(values) / len(values)
            for meter, values in positions.items()
        }

    means = benchmark.pedantic(mean_positions, rounds=1, iterations=1)
    ordered = sorted(means, key=means.get)
    emit(capsys, "Fig 13(j-p) mean rank across panels: " + " > ".join(
        f"{meter}({means[meter]:.2f})" for meter in ordered
    ))
    assert set(ordered[:2]) == {"fuzzyPSM", "PCFG"}
    assert ordered[-1] == "NIST"


def test_fig13_real_fuzzypsm_top2_everywhere(benchmark, scenario_runner,
                                             capsys):
    """In the real-world case fuzzyPSM is in the top two of most
    panels — the paper's 'particularly prominent' setting."""

    def fuzzy_positions():
        return [
            scenario_runner(scenario).ranking().index("fuzzyPSM")
            for scenario in REAL_SCENARIOS
        ]

    positions = benchmark.pedantic(fuzzy_positions, rounds=1,
                                   iterations=1)
    emit(capsys, "Fig 13(j-p) fuzzyPSM rank per panel: "
                 + ", ".join(str(p + 1) for p in positions))
    top2 = sum(1 for position in positions if position <= 1)
    assert top2 >= len(REAL_SCENARIOS) - 2
