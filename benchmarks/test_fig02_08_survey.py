"""Figs. 2-8 — the user-survey results (paper Sec. III).

The survey aggregates are encoded data; the bench reproduces every
headline number the paper's prose quotes and prints them next to the
published values.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.survey import analysis, data

from bench_lib import emit

#: (figure, quantity, published value, computed callable)
HEADLINES = [
    ("Fig 2", "reuse-or-modify rate", 0.7738,
     analysis.figure2_reuse_rate),
    ("Fig 2", "entirely-new rate", 0.1448,
     lambda: data.CREATION_STRATEGY["create an entirely new password"]),
    ("Fig 3", "at-least-similar rate", 0.8177,
     analysis.figure3_similar_or_closer_rate),
    ("Fig 4", "modify-for-security rate", 0.5100,
     lambda: data.MODIFY_REASONS["increase security"]),
    ("Fig 4", "modify-for-policy rate", 0.4276,
     lambda: data.MODIFY_REASONS["fulfill password policies"]),
    ("Fig 4", "modify-for-memorability rate", 0.3258,
     lambda: data.MODIFY_REASONS["improve memorability"]),
    ("Fig 8", "capitalize-first rate", 0.4796,
     analysis.figure8_capitalize_first_rate),
    ("Fig 8", "never-capitalize rate", 0.2262,
     lambda: data.CAPITALIZATION_PLACEMENT["never use capitalization"]),
]


def test_fig02_08_survey_headlines(benchmark, capsys):
    rows = benchmark(
        lambda: [
            [figure, quantity, f"{published:.2%}", f"{compute():.2%}"]
            for figure, quantity, published, compute in HEADLINES
        ]
    )
    emit(capsys, format_table(
        ["Figure", "Quantity", "Paper", "Measured"],
        rows,
        title="Figs. 2-8 -- survey headline numbers",
    ))
    for (_, _, published, compute) in HEADLINES:
        assert compute() == pytest.approx(published, abs=0.005)


def test_fig05_07_orderings(benchmark, capsys):
    """Bar orderings the paper states in prose (exact heights were
    published only graphically)."""

    def orderings():
        rules = sorted(
            data.TRANSFORMATION_RULES,
            key=data.TRANSFORMATION_RULES.get, reverse=True,
        )
        digits = analysis.figure6_placement_order()
        symbols = sorted(
            data.SYMBOL_PLACEMENT, key=data.SYMBOL_PLACEMENT.get,
            reverse=True,
        )
        return rules, digits, symbols

    rules, digits, symbols = benchmark(orderings)
    emit(capsys, format_table(
        ["Figure", "Ordering (most popular first)"],
        [
            ["Fig 5", " > ".join(r.split(" ")[0] for r in rules)],
            ["Fig 6", " > ".join(digits)],
            ["Fig 7", " > ".join(symbols)],
        ],
        title="Figs. 5-7 -- orderings stated in the paper's prose",
    ))
    assert rules[0].startswith("concatenation")
    assert rules[1].startswith("capitalization")
    assert rules[2].startswith("leet")
    assert digits == ["end", "middle", "beginning"]
    assert symbols == ["end", "middle", "beginning"]


def test_fig02_das_comparison(benchmark, capsys):
    comparison = benchmark(analysis.compare_with_das)
    emit(capsys, format_table(
        ["Quantity", "Value"],
        [[key, f"{value:+.2%}"] for key, value in comparison.items()],
        title="Fig. 2 -- comparison with Das et al. (NDSS'14)",
    ))
    assert comparison["reuse_or_modify_chinese"] == pytest.approx(
        comparison["reuse_or_modify_english"], abs=0.01
    )
