"""Batch vs per-call scoring across the whole meter suite.

The registry refactor promoted ``probability_many`` into the ``Meter``
base class (a plain per-password loop) and let PCFG and Markov ship
vectorised overrides (per-batch memo over distinct passwords, plus a
transition cache for Markov).  This bench sweeps every registered
shootout meter over the same Zipf-shaped evaluation stream and times

* the forced base-class loop (``Meter.probability_many(meter, ...)``),
* the meter's own ``probability_many``,

asserting first that both paths return bit-identical scores (the
override contract), then that every meter with a real override —
fuzzyPSM (frozen-kernel evaluation), PCFG/Markov/KeePSM/NIST
(per-batch memo), zxcvbn (distinct-password memo over precompiled
dictionary tables) — actually beats the loop.

Each meter gets an *untimed warm-up pass* over a stream prefix before
the clocks start: the first scoring block a fresh process runs is
several times slower than steady state (allocator/bytecode/cache
warm-up), and without it the measured ratio reflects ordering, not the
override.  The batch path still runs first so fuzzyPSM's persistent
parse cache is handed to the loop side, keeping its recorded speedup
conservative (the fair fresh-instance comparison lives in
``test_timing_measure``).
"""

import time

from repro.meters import registry
from repro.meters.base import Meter
from repro.meters.registry import TrainContext
from repro.meters.zxcvbn.frequency_lists import COMMON_PASSWORDS

from bench_lib import SMOKE, emit, record

#: The Fig. 13 contenders; dict value is the minimum speedup the
#: meter's override must hold over the base loop.  fuzzyPSM is pinned
#: well above the rest: its batch path is the frozen-kernel evaluator
#: (ROADMAP item 5 — once 0.81x under the dict-table loop, now the
#: default batch configuration everywhere, including the serving
#: layer), and a regression below 2x means the kernel fell off the
#: batch path.
_SWEEP = {
    "fuzzypsm": 2.0,
    "pcfg": 1.2,
    "markov": 1.2,
    # zxcvbn's batch path memoises the full matcher+DP run per
    # distinct password with bound-local dispatch; on a Zipf-shaped
    # stream that holds well above 1.5x (ROADMAP item 5 close-out).
    "zxcvbn": 1.5,
    "keepsm": 1.2,
    "nist": 1.2,
}

#: Entries scored (untimed) per side before the clocks start.
_WARMUP = 2_000


def test_timing_batch_vs_loop_scoring(corpora, csdn_quarters, capsys):
    train, test = csdn_quarters
    context = TrainContext(
        training=tuple(train.items()),
        base_dictionary=tuple(corpora["tianya"].unique_passwords()),
        dictionary=COMMON_PASSWORDS,
    )
    stream = list(test.expand()) * 3
    distinct = test.unique

    lines = []
    measurements = {"stream": len(stream), "distinct": distinct}
    warmup = stream[:_WARMUP]
    for kind, min_speedup in _SWEEP.items():
        meter = registry.build_meter(kind, context)

        # Untimed warm-up of both code paths (see module docstring).
        meter.probability_many(warmup)
        Meter.probability_many(meter, warmup)

        start = time.perf_counter()
        batch = meter.probability_many(stream)
        batch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loop = Meter.probability_many(meter, stream)
        loop_seconds = time.perf_counter() - start

        assert batch == loop  # overrides must not change a single value
        speedup = loop_seconds / batch_seconds
        measurements[f"{kind}_loop_seconds"] = loop_seconds
        measurements[f"{kind}_batch_seconds"] = batch_seconds
        measurements[f"{kind}_speedup"] = speedup
        lines.append(
            f"  {kind:9s} loop {loop_seconds:7.3f} s   "
            f"batch {batch_seconds:7.3f} s   {speedup:5.2f}x"
        )
        if SMOKE:
            continue  # equivalence asserted above; ratios are noise
        assert speedup > min_speedup, (
            f"{kind} batch override below its {min_speedup}x floor "
            f"({speedup:.2f}x)"
        )

    emit(
        capsys,
        f"(timing) batch vs loop, {len(stream):,} scores "
        f"({distinct:,} distinct):\n" + "\n".join(lines),
    )
    record("batch_vs_loop_scoring", **measurements)
