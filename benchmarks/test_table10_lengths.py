"""Table X — length distribution of user-chosen passwords.

Prints paper-vs-synthetic length buckets and checks the paper's three
callouts: most passwords are 6-10 characters, CSDN's length >= 8
policy, and Singles.org's <= 8 cap.
"""

import pytest

from repro.datasets.profiles import DATASET_ORDER, LENGTH_BUCKETS, PROFILES
from repro.datasets.stats import length_table
from repro.experiments.reporting import format_percent, format_table

from bench_lib import emit


def test_table10_lengths(benchmark, corpora, capsys):
    def compute():
        return {
            name: length_table(corpora[name]) for name in DATASET_ORDER
        }

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name in DATASET_ORDER:
        profile = PROFILES[name]
        six_to_ten_paper = sum(
            profile.length_distribution[bucket]
            for bucket in ("6", "7", "8", "9", "10")
        )
        six_to_ten_synth = sum(
            measured[name][bucket] for bucket in ("6", "7", "8", "9", "10")
        )
        rows.append([
            name,
            format_percent(six_to_ten_paper),
            format_percent(six_to_ten_synth),
        ])
    emit(capsys, format_table(
        ["Dataset", "len 6-10 (paper)", "len 6-10 (synth)"],
        rows,
        title="Table X -- mass of the 6-10 length band",
    ))
    for name in DATASET_ORDER:
        # "Most passwords are of length 6-10" holds for every corpus.
        six_to_ten = sum(
            measured[name][bucket] for bucket in ("6", "7", "8", "9", "10")
        )
        assert six_to_ten > 0.5, name
        assert sum(measured[name].values()) == pytest.approx(1.0)


def test_table10_policy_callouts(benchmark, corpora, capsys):
    def compute():
        return (
            length_table(corpora["csdn"]),
            length_table(corpora["singles"]),
            length_table(corpora["battlefield"]),
        )

    csdn, singles, battlefield = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    emit(capsys, format_table(
        ["bucket", "csdn", "singles", "battlefield"],
        [
            [bucket, format_percent(csdn[bucket]),
             format_percent(singles[bucket]),
             format_percent(battlefield[bucket])]
            for bucket in LENGTH_BUCKETS
        ],
        title="Table X -- policy effects (CSDN >= 8, Singles <= 8, "
              "Battlefield >= 6)",
    ))
    # CSDN's length >= 8 policy.
    assert csdn["1-5"] + csdn["6"] + csdn["7"] < 0.01
    # Singles rejects length >= 9.
    assert sum(
        singles[bucket]
        for bucket in ("9", "10", "11", "12", "13", "14", "15+")
    ) == 0.0
    # Battlefield's length >= 6 policy.
    assert battlefield["1-5"] < 0.01
