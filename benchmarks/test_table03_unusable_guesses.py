"""Table III — un-usable guesses produced by PCFG vs Markov models.

A guess is un-usable when the model produces it but it is not in the
test set.  The paper counts them at horizons 10^2 / 10^4 / 10^6 / 10^7
and finds PCFG produces fewer un-usable guesses at small horizons,
with the situation reversing around 10^6 — reconciling "PCFG measures
better" with "Markov cracks better".  Bench horizons are scaled to
the corpus size (10^2 .. 10^5).
"""

import pytest

from repro.experiments.reporting import format_table
from repro.meters.markov import MarkovMeter
from repro.meters.pcfg import PCFGMeter
from repro.metrics.unusable import count_unusable_guesses

from bench_lib import emit

CHECKPOINTS = (100, 1_000, 10_000, 100_000)


@pytest.fixture(scope="module")
def trained(csdn_quarters):
    train, _ = csdn_quarters
    items = list(train.items())
    return PCFGMeter.train(items), MarkovMeter.train(items, order=3)


def test_table03_unusable_guesses(benchmark, trained, csdn_quarters,
                                  capsys):
    pcfg, markov = trained
    _, test = csdn_quarters
    test_passwords = test.unique_passwords()

    def count():
        return {
            "PCFG": count_unusable_guesses(
                pcfg.iter_guesses(), test_passwords, CHECKPOINTS
            ),
            "Markov": count_unusable_guesses(
                markov.iter_guesses(), test_passwords, CHECKPOINTS
            ),
        }

    counts = benchmark.pedantic(count, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["model"] + [f"top 10^{len(str(c)) - 1}" for c in CHECKPOINTS],
        [
            [name] + [f"{counts[name][c]:,}" for c in CHECKPOINTS]
            for name in ("PCFG", "Markov")
        ],
        title="Table III -- number of un-usable guesses "
              f"(test set: {len(test_passwords)} unique passwords)",
    ))
    # Paper shape: at the small horizon PCFG wastes fewer guesses.
    assert counts["PCFG"][100] <= counts["Markov"][100]
    assert counts["PCFG"][1_000] <= counts["Markov"][1_000]
    # Counts are monotone in the horizon for both models.
    for name in ("PCFG", "Markov"):
        values = [counts[name][c] for c in CHECKPOINTS]
        assert values == sorted(values)


def test_table03_pcfg_exhausts_before_markov(benchmark, trained, capsys):
    """Why the reversal happens: the PCFG model's guess space is
    bounded by observed structures while backoff-smoothed Markov keeps
    generating — at large horizons Markov still produces (usable and
    un-usable) guesses after PCFG has dried up."""
    pcfg, markov = trained

    def stream_sizes():
        pcfg_total = sum(1 for _ in pcfg.iter_guesses(limit=200_000))
        markov_sample = sum(
            1 for _ in markov.iter_guesses(limit=200_000)
        )
        return pcfg_total, markov_sample

    pcfg_total, markov_total = benchmark.pedantic(
        stream_sizes, rounds=1, iterations=1
    )
    emit(capsys, format_table(
        ["model", "guesses producible (cap 200k)"],
        [["PCFG", f"{pcfg_total:,}"], ["Markov", f"{markov_total:,}"]],
        title="Table III -- guess-space exhaustion",
    ))
    assert markov_total >= pcfg_total
