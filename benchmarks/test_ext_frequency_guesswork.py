"""Extension — frequency distributions and online-guessing resistance.

The paper omits its frequency-distribution table "due to space
constraints" (Sec. V-B) but leans on its consequences everywhere: the
ideal meter is trusted only at ``f_pw >= 4`` (Sec. II-B / V-D) and the
online attacker of Table I succeeds exactly on the distribution head.
This bench reconstructs that table for the 11 corpora:

* Zipf exponent and fit quality of each rank-frequency curve;
* the mass/unique coverage of the ideal meter's f >= 4 cutoff;
* Bonneau's partial-guessing profile (lambda at the online budget,
  min-entropy), ordering the services by online-attack exposure.
"""

from repro.datasets.profiles import DATASET_ORDER
from repro.datasets.zipf import fit_zipf, ideal_meter_coverage
from repro.experiments.reporting import format_percent, format_table
from repro.metrics.guesswork import guessing_profile

from bench_lib import emit

ONLINE_BUDGET = 1_000   # scaled-down Table-I online horizon


def test_ext_frequency_distribution(benchmark, corpora, capsys):
    def compute():
        rows = []
        for name in DATASET_ORDER:
            corpus = corpora[name]
            fit = fit_zipf(corpus)
            mass, unique = ideal_meter_coverage(corpus, threshold=4)
            rows.append([
                name,
                f"{fit.exponent:.2f}",
                f"{fit.r_squared:.3f}",
                format_percent(mass),
                format_percent(unique),
            ])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Dataset", "Zipf s", "R^2", "f>=4 mass", "f>=4 unique"],
        rows,
        title="(extension) frequency distributions and the ideal "
              "meter's reliable region",
    ))
    for row in rows:
        exponent = float(row[1])
        r_squared = float(row[2])
        # Zipf-like decay with a credible fit on every corpus.
        assert 0.2 < exponent < 2.5, row
        assert r_squared > 0.7, row


def test_ext_online_guessing_exposure(benchmark, corpora, capsys):
    def compute():
        return {
            name: guessing_profile(
                corpora[name], online_budget=ONLINE_BUDGET
            )
            for name in DATASET_ORDER
        }

    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)
    ordered = sorted(
        DATASET_ORDER,
        key=lambda name: -profiles[name].online_success_rate,
    )
    emit(capsys, format_table(
        ["Dataset", "min-entropy", "Shannon",
         f"lambda_{ONLINE_BUDGET}", "G~_0.5 bits"],
        [
            [name,
             f"{profiles[name].min_entropy_bits:.2f}",
             f"{profiles[name].shannon_bits:.2f}",
             format_percent(profiles[name].online_success_rate),
             f"{profiles[name].effective_guesswork_bits:.2f}"]
            for name in ordered
        ],
        title="(extension) partial-guessing profiles, most "
              "online-exposed first",
    ))
    # Shannon entropy always overstates resistance vs min-entropy —
    # the paper's criticism of entropy-based meters in one number.
    for name in DATASET_ORDER:
        profile = profiles[name]
        assert profile.shannon_bits > profile.min_entropy_bits, name
    # CSDN (top-10 share 10.44%, the most concentrated head of Table
    # VIII) is more exposed to a head-targeting online attacker than
    # Rockyou (2.05%).  Compared at beta=10 — the calibrated quantity
    # — because the two bench corpora differ in size, which skews
    # larger budgets.
    from repro.metrics.guesswork import beta_success_rate
    assert (
        beta_success_rate(corpora["csdn"], 10)
        > beta_success_rate(corpora["rockyou"], 10)
    )
