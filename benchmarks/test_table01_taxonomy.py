"""Table I — the guessing-attack taxonomy (paper Sec. II-A).

Static content; the bench prints the table and times the (trivial)
construction so the harness covers every numbered artefact.
"""

from repro.experiments.reporting import format_table
from repro.experiments.taxonomy import GUESSING_ATTACKS

from bench_lib import emit


def _rows():
    return [
        [
            attack.family,
            attack.channel,
            "Yes" if attack.uses_personal_data else "No",
            "Yes" if attack.interacts_with_server else "No",
            attack.major_constraint,
            attack.guess_budget,
            "Yes" if attack.considered_in_paper else "No",
        ]
        for attack in GUESSING_ATTACKS
    ]


def test_table01_taxonomy(benchmark, capsys):
    rows = benchmark(_rows)
    emit(capsys, format_table(
        ["Family", "Channel", "Personal data", "Server",
         "Major constraint", "Guesses", "Considered"],
        rows,
        title="Table I -- comparison of different guessing attacks",
    ))
    assert len(rows) == 4
    considered = [row for row in rows if row[-1] == "Yes"]
    assert all(row[0] == "Trawling" for row in considered)
