"""Table II — guess numbers given by each PSM for typical weak passwords.

The paper trains on 1/4 of CSDN and asks each meter for the guess
number of six notoriously weak passwords, comparing against the ideal
meter (their rank in the distribution).  Real CSDN contains those
exact strings; our synthetic CSDN has its own head, so the bench
measures (a) the paper's six literal passwords where derivable and
(b) six weak passwords drawn from the synthetic corpus at comparable
ranks — the quantity under test (closeness to the ideal guess number
on weak passwords) is rank-relative, not string-specific.
"""

import math
import random

import pytest

from repro.core.meter import FuzzyPSM
from repro.experiments.reporting import format_table
from repro.experiments.weak_passwords import (
    TYPICAL_WEAK_PASSWORDS,
    weak_password_table,
)
from repro.meters.markov import MarkovMeter
from repro.meters.pcfg import PCFGMeter

from bench_lib import SEED, emit

#: Ranks mirroring the spread of the paper's six examples
#: (18 .. 27097 in real CSDN, scaled to the bench corpus).
PROBE_RANKS = (1, 3, 10, 30, 100, 300)


@pytest.fixture(scope="module")
def meters(corpora, csdn_quarters):
    train, _ = csdn_quarters
    items = list(train.items())
    return [
        FuzzyPSM.train(
            base_dictionary=corpora["tianya"].unique_passwords(),
            training=items,
        ),
        PCFGMeter.train(items),
        MarkovMeter.train(items, order=3),
    ]


def _format(value: float) -> str:
    if not math.isfinite(value):
        return "inf"
    return f"{value:,.0f}"


def test_table02_weak_passwords(benchmark, meters, csdn_quarters, capsys):
    train, _ = csdn_quarters
    ranked = [pw for pw, _ in train.most_common()]
    # The paper's six probes are all alphanumeric dictionary-style
    # strings; pick the first such password at or after each rank.
    probes = []
    for rank in PROBE_RANKS:
        for password in ranked[rank - 1:]:
            if password.isalnum() and password not in probes:
                probes.append(password)
                break

    rows = benchmark.pedantic(
        lambda: weak_password_table(
            meters, train, passwords=probes, sample_size=20_000,
            seed=SEED,
        ),
        rounds=1, iterations=1,
    )
    meter_names = [meter.name for meter in meters]
    emit(capsys, format_table(
        ["password", "train rank", "Ideal"] + meter_names + ["closest"],
        [
            [row.password, row.training_rank,
             _format(row.guess_numbers["Ideal"])]
            + [_format(row.guess_numbers[name]) for name in meter_names]
            + [row.closest_meter() or "-"]
            for row in rows
        ],
        title=(
            "Table II -- guess numbers for weak passwords "
            "(synthetic-CSDN probes at the paper's rank spread)"
        ),
    ))
    # The paper's takeaway: fuzzyPSM gives the most accurate strength
    # estimates overall.  Aggregate per meter: mean |log10(model) -
    # log10(ideal)| over the probes; fuzzyPSM must place top-2 and win
    # at least one row outright.
    def mean_log_error(name):
        errors = []
        for row in rows:
            ideal = row.guess_numbers["Ideal"]
            model = row.guess_numbers[name]
            if math.isfinite(ideal) and math.isfinite(model) and model > 0:
                errors.append(
                    abs(math.log10(model) - math.log10(ideal))
                )
        return sum(errors) / len(errors)

    accuracy = {name: mean_log_error(name) for name in meter_names}
    emit(capsys, format_table(
        ["meter", "mean |log10 error|"],
        [[name, f"{value:.3f}"] for name, value in accuracy.items()],
        title="Table II -- aggregate accuracy on the weak probes",
    ))
    ordered = sorted(accuracy, key=accuracy.get)
    assert "fuzzyPSM" in ordered[:2], accuracy
    closest = [row.closest_meter() for row in rows]
    assert closest.count("fuzzyPSM") >= 1

    # All meters give small guess numbers to the corpus head.
    head = rows[0]
    for name in meter_names:
        assert head.guess_numbers[name] < 1_000, (
            name, head.guess_numbers[name]
        )


def test_table02_paper_literal_passwords(benchmark, meters, capsys):
    """The paper's six literal strings, for reference.  Derivability
    depends on the synthetic corpus content, so only sanity ordering
    is asserted: p@ssw0rd (a leet variant) never measures weaker than
    password."""

    def measure():
        table = {}
        for password in TYPICAL_WEAK_PASSWORDS:
            table[password] = {
                meter.name: meter.probability(password)
                for meter in meters
            }
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["password"] + [m.name for m in meters],
        [
            [password] + [f"{values[m.name]:.2e}" for m in meters]
            for password, values in table.items()
        ],
        title="Table II -- the paper's literal passwords, "
              "measured probabilities (synthetic training)",
    ))
    for meter in meters:
        assert (
            table["p@ssw0rd"][meter.name]
            <= table["password"][meter.name] + 1e-18
        )
