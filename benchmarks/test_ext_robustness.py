"""Extension — seed robustness of the headline comparison.

The paper evaluates on fixed real corpora; our synthetic substrate
adds a randomness source the paper does not have, so the headline
claims are re-checked across independent ecosystem seeds.  Asserted,
per the cross-seed mean ranks on the canonical CSDN ideal scenario:

* the structure-learning meters (fuzzyPSM, PCFG) hold the top two
  mean ranks;
* NIST never wins a seed;
* fuzzyPSM's rank variance stays small (the result is not one lucky
  draw).
"""

from repro.experiments.reporting import format_table
from repro.experiments.robustness import run_scenario_across_seeds
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenarios import scenario

from bench_lib import emit

SEEDS = (0, 1, 2, 3, 4)


def test_ext_seed_robustness(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_scenario_across_seeds(
            scenario("ideal-csdn"),
            seeds=SEEDS,
            config=ExperimentConfig(
                corpus_size=12_000, base_corpus_size=48_000
            ),
            min_frequency=4,
            population=50_000,
        ),
        rounds=1, iterations=1,
    )
    emit(capsys, format_table(
        ["meter", "mean rank +/- std", "mean tau", "wins"],
        result.rows(),
        title=f"(extension) ideal-csdn across {len(SEEDS)} ecosystem "
              "seeds",
    ))
    ranking = result.ranking()
    assert set(ranking[:2]) == {"fuzzyPSM", "PCFG"}, ranking
    assert result.meter("NIST").wins == 0
    assert result.meter("fuzzyPSM").rank_stddev <= 1.5
