"""Extension — the measure-vs-crack reconciliation as cracking curves.

Sec. IV-B reconciles two seemingly contradictory literatures: PCFG
models *measure* passwords better, yet Markov models *crack* more at
large guess horizons (refs [20], [29], [46]).  Table III shows the
un-usable-guess mechanism; this bench shows the consequence directly
as cracking curves — fraction of a held-out test set recovered vs
guesses tried — for PCFG, Markov and fuzzyPSM.

Asserted shape: the structure meters win or tie the early horizons,
and the smoothed Markov model closes the gap as the horizon grows
(its relative deficit shrinks monotonically toward the tail), because
it never exhausts its guess space while the PCFG models do.
"""

import pytest

from repro.core.meter import FuzzyPSM
from repro.experiments.reporting import format_table
from repro.meters.markov import MarkovMeter
from repro.meters.pcfg import PCFGMeter
from repro.metrics.cracking import cracking_curve

from bench_lib import emit

HORIZONS = (100, 1_000, 10_000, 100_000)


@pytest.fixture(scope="module")
def attackers(corpora, csdn_quarters):
    train, _ = csdn_quarters
    items = list(train.items())
    return [
        FuzzyPSM.train(
            base_dictionary=corpora["tianya"].unique_passwords(),
            training=items,
        ),
        PCFGMeter.train(items),
        MarkovMeter.train(items, order=3),
    ]


def test_ext_cracking_crossover(benchmark, attackers, csdn_quarters,
                                capsys):
    _, test = csdn_quarters

    def curves():
        return {
            meter.name: cracking_curve(
                meter.iter_guesses(), test, HORIZONS
            )
            for meter in attackers
        }

    results = benchmark.pedantic(curves, rounds=1, iterations=1)
    rows = []
    for index, horizon in enumerate(HORIZONS):
        rows.append(
            [f"{horizon:,}"]
            + [
                f"{results[name][index].cracked_fraction:.2%}"
                for name in ("fuzzyPSM", "PCFG", "Markov")
            ]
        )
    emit(capsys, format_table(
        ["guesses", "fuzzyPSM", "PCFG", "Markov"],
        rows,
        title="(extension) cracking curves on held-out CSDN "
              "(Sec. IV-B's measure-vs-crack reconciliation)",
    ))
    # Early horizon: a structure meter leads (or ties) Markov.
    early = {
        name: results[name][0].cracked_fraction
        for name in results
    }
    assert max(early["fuzzyPSM"], early["PCFG"]) >= early["Markov"]
    # The crossover claim is PCFG-vs-Markov (refs [20], [29], [46]):
    # Markov's deficit against PCFG shrinks from the first horizon to
    # the last (full reversal needs the paper's 10^6+ horizons).
    # fuzzyPSM is exempt — its base-dictionary coverage keeps it
    # climbing at large horizons too.
    def deficit(index):
        return (
            results["PCFG"][index].cracked_fraction
            - results["Markov"][index].cracked_fraction
        )

    assert deficit(len(HORIZONS) - 1) <= deficit(0) + 0.01
    # All curves are monotone non-decreasing.
    for name, points in results.items():
        values = [p.cracked_fraction for p in points]
        assert values == sorted(values), name
