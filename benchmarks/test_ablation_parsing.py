"""Ablation — fuzzy matching rules in the parser (DESIGN.md §6).

fuzzyPSM's parser recognises capitalization and leet variants of base
dictionary words; the paper lists those two (plus concatenation) as
the top-3 transformation rules users actually apply.  This ablation
turns each off and measures the meter's Kendall tau against the ideal
meter on the canonical CSDN split, showing what each rule buys.
"""

import pytest

from repro.core.meter import FuzzyPSM, FuzzyPSMConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_meters

from bench_lib import emit

VARIANTS = (
    ("full fuzzy (caps + leet)", True, True),
    ("no capitalization", False, True),
    ("no leet", True, False),
    ("exact prefix only", False, False),
)


@pytest.fixture(scope="module")
def ablation_results(corpora, csdn_quarters):
    train, test = csdn_quarters
    base_words = corpora["tianya"].unique_passwords()
    items = list(train.items())
    results = {}
    for label, caps, leet in VARIANTS:
        meter = FuzzyPSM.train(
            base_dictionary=base_words, training=items,
            config=FuzzyPSMConfig(
                allow_capitalization=caps, allow_leet=leet
            ),
        )
        curves, _ = evaluate_meters([meter], test, min_frequency=4)
        results[label] = curves[0].mean
    return results


def test_ablation_parsing(benchmark, ablation_results, corpora,
                          csdn_quarters, capsys):
    train, test = csdn_quarters

    # Time the cheapest variant's full train+evaluate cycle.
    def train_exact_only():
        return FuzzyPSM.train(
            base_dictionary=corpora["tianya"].unique_passwords(),
            training=list(train.items()),
            config=FuzzyPSMConfig(
                allow_capitalization=False, allow_leet=False
            ),
        )

    benchmark.pedantic(train_exact_only, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Parser variant", "mean Kendall tau vs ideal"],
        [
            [label, f"{ablation_results[label]:+.3f}"]
            for label, _, _ in VARIANTS
        ],
        title="Ablation -- fuzzy parsing rules (ideal-case CSDN)",
    ))
    # The fuzzy rules must not hurt: the full parser is at least as
    # good as the exact-prefix parser.
    assert (
        ablation_results["full fuzzy (caps + leet)"]
        >= ablation_results["exact prefix only"] - 0.02
    )


def test_ablation_parsing_coverage(benchmark, corpora, csdn_quarters,
                                   capsys):
    """What the fuzzy rules buy structurally: strictly more test
    passwords become derivable through a dictionary segment."""
    train, test = csdn_quarters
    base_words = corpora["tianya"].unique_passwords()
    items = list(train.items())

    def coverage():
        out = {}
        for label, caps, leet in (VARIANTS[0], VARIANTS[3]):
            meter = FuzzyPSM.train(
                base_dictionary=base_words, training=items,
                config=FuzzyPSMConfig(
                    allow_capitalization=caps, allow_leet=leet
                ),
            )
            hits = sum(
                1 for pw in test.unique_passwords()
                if meter.parse(pw).uses_dictionary
            )
            out[label] = hits / test.unique
        return out

    coverage_by_variant = benchmark.pedantic(
        coverage, rounds=1, iterations=1
    )
    emit(capsys, format_table(
        ["Parser variant", "dictionary-segment coverage"],
        [[label, f"{value:.2%}"]
         for label, value in coverage_by_variant.items()],
        title="Ablation -- base-dictionary coverage of the test set",
    ))
    assert (
        coverage_by_variant["full fuzzy (caps + leet)"]
        >= coverage_by_variant["exact prefix only"]
    )
