"""Fig. 12 — fraction of passwords shared between two services.

The paper plots, for service pairs, the fraction of one corpus's
top-k passwords also present in the other.  Its two findings:

* overlap is generally below ~60% at every threshold;
* same-language pairs overlap far more than cross-language pairs
  (Tianya vs Rockyou is the paper's low line).

In the synthetic ecosystem the overlap arises from the shared user
population reusing passwords across services — the same mechanism
fuzzyPSM exploits — so this figure doubles as a check of the
substitution argument in DESIGN.md §4.
"""

from repro.datasets.stats import overlap_curve
from repro.experiments.reporting import format_percent, format_table

from bench_lib import emit

THRESHOLDS = (100, 1_000, 10_000)

PAIRS = (
    ("weibo", "tianya", "same language (zh-zh)"),
    ("csdn", "tianya", "same language (zh-zh)"),
    ("phpbb", "rockyou", "same language (en-en)"),
    ("yahoo", "rockyou", "same language (en-en)"),
    ("tianya", "rockyou", "cross language (zh-en)"),
    ("csdn", "phpbb", "cross language (zh-en)"),
)


def test_fig12_overlap(benchmark, corpora, capsys):
    def compute():
        out = {}
        for first, second, label in PAIRS:
            out[(first, second)] = overlap_curve(
                corpora[first], corpora[second], THRESHOLDS
            )
        return out

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for first, second, label in PAIRS:
        curve = curves[(first, second)]
        rows.append(
            [f"{first} vs {second}", label]
            + [format_percent(value) for _, value in curve]
        )
    emit(capsys, format_table(
        ["Pair", "Kind"] + [f"top {k}" for k in THRESHOLDS],
        rows,
        title="Fig. 12 -- fraction of shared passwords at varied "
              "thresholds",
    ))

    def mean_overlap(first, second):
        curve = curves[(first, second)]
        return sum(value for _, value in curve) / len(curve)

    same_language = [
        mean_overlap(first, second)
        for first, second, label in PAIRS if "same" in label
    ]
    cross_language = [
        mean_overlap(first, second)
        for first, second, label in PAIRS if "cross" in label
    ]
    # Same-language pairs overlap more than cross-language pairs.
    assert min(same_language) > max(cross_language)
    # The paper's ~60% ceiling is a full-corpus statement; small-k
    # heads are naturally more concentrated, so it is checked at the
    # largest threshold.
    for first, second, _ in PAIRS:
        assert curves[(first, second)][-1][1] <= 0.60, (first, second)
