"""Table XI — the training-and-testing scenario matrix.

Static content; the bench prints the matrix and checks its shape
against the paper's description (9 ideal, 7 real, 2 cross-language
experiments; Rockyou/Tianya as base dictionaries; Phpbb/Weibo as
real-case training leaks).
"""

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    CROSS_LANGUAGE_SCENARIOS,
    IDEAL_SCENARIOS,
    REAL_SCENARIOS,
)

from bench_lib import emit


def test_table11_scenarios(benchmark, capsys):
    rows = benchmark(
        lambda: [
            [s.figure, s.name, s.kind, s.base_dataset,
             s.train_dataset or "1/4 of test set", s.test_dataset]
            for s in ALL_SCENARIOS
        ]
    )
    emit(capsys, format_table(
        ["Figure", "Scenario", "Kind", "Base dict",
         "Training leak", "Test set"],
        rows,
        title="Table XI -- training and testing scenarios",
    ))
    assert len(IDEAL_SCENARIOS) == 9
    assert len(REAL_SCENARIOS) == 7
    assert len(CROSS_LANGUAGE_SCENARIOS) == 2
    bases = {s.base_dataset for s in ALL_SCENARIOS}
    assert bases == {"rockyou", "tianya"}
    real_leaks = {s.train_dataset for s in REAL_SCENARIOS}
    assert real_leaks == {"phpbb", "weibo"}
