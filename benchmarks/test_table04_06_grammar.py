"""Tables IV-VI — the learned fuzzy-PCFG rule tables.

The paper illustrates the grammar with toy tables: base-structure
rules (``S -> B8 B1``, Table IV), the capitalization Yes/No rule
(Table V) and six leet Yes/No rules (Table VI).  The bench trains on
the paper's running examples and prints the learned tables, then
checks the structural properties the paper states:

* every LHS's productions sum to probability 1 (the PCFG property);
* over 80% of base structures are single ``B_m`` (vs >50% composite
  for traditional PCFG) when trained on a real-scale corpus.
"""

import pytest

from repro.core.meter import FuzzyPSM
from repro.experiments.reporting import format_table
from repro.meters.pcfg import PCFGMeter

from bench_lib import emit

#: The running examples of Sec. IV-C.
BASE_DICTIONARY = ["password", "p@ssword", "123456", "123qwe", "dragon"]
TRAINING = [
    "password123", "Password123", "p@ssw0rd", "123qwe123qwe",
    "123456", "123456", "password", "tyxdqd123", "dragon1",
]


def test_table04_06_toy_grammar(benchmark, capsys):
    meter = benchmark(
        lambda: FuzzyPSM.train(
            base_dictionary=BASE_DICTIONARY, training=TRAINING
        )
    )
    rows = meter.grammar.rule_table()
    emit(capsys, format_table(
        ["LHS", "RHS", "probability"],
        [[lhs, rhs, f"{probability:.4f}"]
         for lhs, rhs, probability in rows],
        title="Tables IV-VI -- learned fuzzy-PCFG rules "
              "(paper's running examples)",
    ))
    # PCFG property: productions of each LHS sum to 1.
    sums = {}
    for lhs, _, probability in rows:
        sums[lhs] = sums.get(lhs, 0.0) + probability
    for lhs, total in sums.items():
        assert total == pytest.approx(1.0, abs=1e-9), (lhs, total)

    # The paper's worked example: password123 parses into one base
    # segment (B11 via... actually the longest prefix 'password' +
    # fallback '123' -> B8 B3 here since password123 is not in B);
    # Password123 additionally fires the capitalization rule.
    plain = meter.probability("password123")
    capitalized = meter.probability("Password123")
    assert 0 < capitalized < plain

    # p@ssw0rd derives from p@ssword with one leet op (o -> 0).
    assert meter.probability("p@ssw0rd") > 0
    explanation = meter.explain("p@ssw0rd")
    assert any("leet" in desc for _, desc in explanation.segments)


def test_table04_structure_shape_at_scale(benchmark, corpora,
                                          csdn_quarters, capsys):
    """Sec. IV-C: "over 80% of items in the base structure table are
    of the form S -> B_m" — a *coverage* statement: the paper's base
    dictionary (Tianya, 12.9M uniques) contains most reused passwords
    outright.  The bench sweeps base coverage: the scaled-down base
    dictionary (1000x smaller than the paper's) fragments structures,
    and restoring paper-level coverage restores the >80% claim.
    """
    train, _ = csdn_quarters
    items = list(train.items())
    scaled_base = corpora["tianya"].unique_passwords()
    # Paper-level coverage: the base service has seen the bulk of the
    # reused passwords (Fig. 12's same-language overlap at full scale).
    rich_base = scaled_base + [password for password, _ in items]

    def single_fraction(meter):
        total = meter.grammar.structures.total
        return sum(
            count
            for structure, count in meter.grammar.structures.items()
            if len(structure) == 1
        ) / total

    def shapes():
        scaled = FuzzyPSM.train(
            base_dictionary=scaled_base, training=items
        )
        rich = FuzzyPSM.train(base_dictionary=rich_base, training=items)
        pcfg = PCFGMeter.train(items)
        return (
            single_fraction(scaled),
            single_fraction(rich),
            pcfg.single_simple_structure_fraction(),
        )

    single_scaled, single_rich, single_pcfg = benchmark.pedantic(
        shapes, rounds=1, iterations=1
    )
    emit(capsys, format_table(
        ["grammar", "single-segment structure mass"],
        [
            ["fuzzy PCFG, scaled-down base (1000x smaller)",
             f"{single_scaled:.2%}"],
            ["fuzzy PCFG, paper-level base coverage",
             f"{single_rich:.2%}"],
            ["traditional PCFG (pure L/D/S run)",
             f"{single_pcfg:.2%}"],
        ],
        title="Sec. IV-C -- structure shape vs base-dictionary "
              "coverage (paper: >80% single B_m)",
    ))
    # The paper's claim holds in the paper's coverage regime.
    assert single_rich > 0.8
    assert single_rich > single_pcfg
    # And coverage is what drives it.
    assert single_rich > single_scaled
