"""Fig. 9(a)/(b) — five existing PSMs vs the ideal meter on CSDN.

The paper's Sec. IV-A experiment (fuzzyPSM is *not* in this figure):
1/4 of CSDN trains every meter, another 1/4 is measured, and each
meter's top-k rank correlation with the ideal meter is plotted —
Kendall tau in 9(a), Spearman rho in 9(b).  Published findings:

* "PCFG-based meter performs best among existing PSMs";
* "the three rule-based PSMs from industry are inferior to the two
  machine-learning-based PSMs";
* the two correlation metrics "provide nearly the same results".
"""

import pytest

from repro.experiments.reporting import format_curves, format_ranking
from repro.experiments.runner import ExperimentConfig, run_scenario
from repro.experiments.scenarios import scenario
from repro.metrics.rank import spearman_rho

from bench_lib import BASE_SIZE, CORPUS_SIZE, SEED, emit

FIG9_SCENARIO = scenario("ideal-csdn")

#: The five PSMs of Fig. 9 (no fuzzyPSM).
EXISTING_METERS = ("PCFG", "Markov", "Zxcvbn", "KeePSM", "NIST")


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        corpus_size=CORPUS_SIZE, base_corpus_size=BASE_SIZE, seed=SEED,
        meters=EXISTING_METERS,
    )


def _run(ecosystem, config, metric=None, metric_name="kendall"):
    kwargs = dict(
        ecosystem=ecosystem, config=config,
        metric_name=metric_name, min_frequency=4,
    )
    if metric is not None:
        kwargs["metric"] = metric
    return run_scenario(FIG9_SCENARIO, **kwargs)


def _check_fig9_findings(ranking):
    # PCFG best among the existing PSMs.
    assert ranking[0] == "PCFG", ranking
    # Machine-learning meters above the rule-based industry meters
    # Zxcvbn and KeePSM (NIST's entropy heuristic can land between,
    # exactly as its curve does in the paper's low-k region).
    for learned in ("PCFG", "Markov"):
        for industry in ("Zxcvbn", "KeePSM"):
            assert ranking.index(learned) < ranking.index(industry), (
                learned, industry, ranking
            )


def test_fig09a_kendall(benchmark, ecosystem, config, capsys):
    result = benchmark.pedantic(
        lambda: _run(ecosystem, config), rounds=1, iterations=1
    )
    emit(capsys, format_curves(result))
    emit(capsys, "Fig 9(a) ranking: " + format_ranking(result))
    _check_fig9_findings(result.ranking())


def test_fig09b_spearman(benchmark, ecosystem, config, capsys):
    result = benchmark.pedantic(
        lambda: _run(ecosystem, config, metric=spearman_rho,
                     metric_name="spearman"),
        rounds=1, iterations=1,
    )
    emit(capsys, format_curves(result))
    emit(capsys, "Fig 9(b) ranking: " + format_ranking(result))
    _check_fig9_findings(result.ranking())


def test_fig09_metrics_agree(benchmark, ecosystem, config, capsys):
    """Sec. V-D: 'the Spearman-rho based results show no evident
    difference from the Kendall-tau based results'."""

    def compare():
        kendall = _run(ecosystem, config)
        spearman = _run(ecosystem, config, metric=spearman_rho,
                        metric_name="spearman")
        return kendall.ranking(), spearman.ranking()

    kendall_ranking, spearman_ranking = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    emit(
        capsys,
        "Fig 9 metric agreement:\n"
        f"  kendall : {' > '.join(kendall_ranking)}\n"
        f"  spearman: {' > '.join(spearman_ranking)}",
    )
    assert kendall_ranking[0] == spearman_ranking[0]
    assert set(kendall_ranking[:2]) == set(spearman_ranking[:2])
