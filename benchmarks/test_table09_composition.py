"""Table IX — character-composition classes per dataset.

The synthetic corpora are calibrated to the published composition
fractions; the bench prints paper-vs-measured for the four headline
columns and checks the direction of every cross-language contrast the
paper draws.
"""

import pytest

from repro.datasets.profiles import DATASET_ORDER, PROFILES
from repro.datasets.stats import composition_table
from repro.experiments.reporting import format_percent, format_table

from bench_lib import emit

HEADLINE_COLUMNS = ("^[a-z]+$", "^[0-9]+$", "^[a-zA-Z0-9]+$",
                    "^[a-zA-Z]+[0-9]+$")


def test_table09_composition(benchmark, corpora, capsys):
    def compute():
        return {
            name: composition_table(corpora[name])
            for name in DATASET_ORDER
        }

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name in DATASET_ORDER:
        profile = PROFILES[name]
        row = [name]
        for column in HEADLINE_COLUMNS:
            row.append(
                f"{format_percent(profile.composition[column], 1)}"
                f" / {format_percent(measured[name][column], 1)}"
            )
        rows.append(row)
    emit(capsys, format_table(
        ["Dataset"] + [f"{col} (paper/synth)" for col in HEADLINE_COLUMNS],
        rows,
        title="Table IX -- character composition, paper vs synthetic",
    ))
    for name in DATASET_ORDER:
        profile = PROFILES[name]
        for column in ("^[a-z]+$", "^[0-9]+$"):
            assert measured[name][column] == pytest.approx(
                profile.composition[column], abs=0.15
            ), (name, column)


def test_table09_language_contrast(benchmark, corpora, capsys):
    """Sec. V-B: 'a larger fraction of English passwords are composed
    of only lower-case letters, while a similar fraction of Chinese
    passwords are composed of only digits'."""

    def contrast():
        lower = {}
        digits = {}
        for name in DATASET_ORDER:
            table = composition_table(corpora[name])
            lower[name] = table["^[a-z]+$"]
            digits[name] = table["^[0-9]+$"]
        return lower, digits

    lower, digits = benchmark.pedantic(contrast, rounds=1, iterations=1)
    chinese = [n for n in DATASET_ORDER
               if PROFILES[n].language == "Chinese"]
    english = [n for n in DATASET_ORDER
               if PROFILES[n].language == "English"]
    rows = [
        ["Chinese mean",
         format_percent(sum(lower[n] for n in chinese) / len(chinese)),
         format_percent(sum(digits[n] for n in chinese) / len(chinese))],
        ["English mean",
         format_percent(sum(lower[n] for n in english) / len(english)),
         format_percent(sum(digits[n] for n in english) / len(english))],
    ]
    emit(capsys, format_table(
        ["Group", "lower-only", "digit-only"], rows,
        title="Table IX -- the cross-language contrast",
    ))
    for name in chinese:
        assert digits[name] > lower[name], name
    for name in english:
        assert lower[name] > digits[name], name
