"""Fig. 10 — PCFG vs Markov guess numbers against the ideal meter.

Each data point is one popular test password: x = its rank under the
ideal meter (empirical popularity), y = its guess number under the
model (Monte-Carlo estimated).  The paper's reading: PCFG's points
hug the diagonal much more tightly than Markov's in the weak-password
(small x) region — the microscopic reason PCFG measures better even
though Markov cracks better.
"""

import random

import pytest

from repro.experiments.reporting import format_table
from repro.meters.markov import MarkovMeter
from repro.meters.pcfg import PCFGMeter
from repro.metrics.cracking import (
    guess_number_scatter,
    scatter_accuracy,
    underivable_fraction,
)
from repro.metrics.guessnumber import MonteCarloEstimator

from bench_lib import SEED, emit

SAMPLE_SIZE = 20_000
TOP_RANKS = 200


@pytest.fixture(scope="module")
def trained(csdn_quarters):
    train, _ = csdn_quarters
    items = list(train.items())
    return PCFGMeter.train(items), MarkovMeter.train(items, order=3)


def test_fig10_scatter(benchmark, trained, csdn_quarters, capsys):
    pcfg, markov = trained
    _, test = csdn_quarters

    def scatter():
        results = {}
        for meter in (pcfg, markov):
            estimator = MonteCarloEstimator(
                meter, sample_size=SAMPLE_SIZE,
                rng=random.Random(SEED),
            )
            results[meter.name] = guess_number_scatter(
                estimator, meter, test, max_rank=TOP_RANKS
            )
        return results

    results = benchmark.pedantic(scatter, rounds=1, iterations=1)
    rows = []
    for name, points in results.items():
        rows.append([
            name,
            f"{scatter_accuracy(points):.3f}",
            f"{underivable_fraction(points):.2%}",
        ])
    emit(capsys, format_table(
        ["Model", "Mean |log10 error|", "Underivable"],
        rows,
        title=(
            f"Fig. 10 -- guess-number accuracy on the top-{TOP_RANKS} "
            "CSDN test passwords (diagonal distance; lower is better)"
        ),
    ))
    sample = results["PCFG"][:8]
    emit(capsys, format_table(
        ["ideal rank", "PCFG guess #", "Markov guess #"],
        [
            [p.ideal_rank,
             f"{p.model_guess_number:.0f}",
             f"{results['Markov'][i].model_guess_number:.0f}"]
            for i, p in enumerate(sample)
        ],
        title="Fig. 10 -- first scatter points",
    ))
    # The paper's claim: PCFG sits closer to the diagonal than Markov
    # on the weak (top-ranked) passwords.
    assert (
        scatter_accuracy(results["PCFG"])
        < scatter_accuracy(results["Markov"])
    )


def test_fig10_weak_region(benchmark, trained, csdn_quarters, capsys):
    """Restrict to the 30 most popular passwords — the region the
    paper's zoom-in discussion (and Table II) focuses on."""
    pcfg, markov = trained
    _, test = csdn_quarters

    def head_accuracy():
        out = {}
        for meter in (pcfg, markov):
            estimator = MonteCarloEstimator(
                meter, sample_size=SAMPLE_SIZE,
                rng=random.Random(SEED),
            )
            points = guess_number_scatter(
                estimator, meter, test, max_rank=30
            )
            out[meter.name] = scatter_accuracy(points)
        return out

    accuracy = benchmark.pedantic(head_accuracy, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Model", "Mean |log10 error| (top 30)"],
        [[name, f"{value:.3f}"] for name, value in accuracy.items()],
        title="Fig. 10 -- weak-password region",
    ))
    assert accuracy["PCFG"] < accuracy["Markov"]
