"""Extension — Table I's attacker taxonomy, simulated end to end.

Table I bounds the online attacker at < 10^4 guesses (lockout) and
the offline attacker at > 10^9 (hardware).  This bench runs both
against the same victim corpus with fuzzyPSM's guess stream as the
attack dictionary and checks the taxonomy's quantitative shape:

* compromise rate grows monotonically with the lockout allowance;
* the offline attacker strictly dominates the online one;
* bcrypt-class slow hashing drags the offline budget back toward the
  online regime (footnote 5).
"""

import random

import pytest

from repro.attacks import (
    HASH_PROFILES,
    LockoutPolicy,
    OfflineAttack,
    OnlineAttack,
)
from repro.core.meter import FuzzyPSM
from repro.experiments.reporting import format_table

from bench_lib import SEED, emit


@pytest.fixture(scope="module")
def setup(ecosystem, corpora):
    corpus = corpora["yahoo"]
    train, _, _, victims = corpus.split(
        [0.25] * 4, random.Random(SEED)
    )
    attacker = FuzzyPSM.train(
        base_dictionary=corpora["rockyou"].unique_passwords(),
        training=list(train.items()),
    )
    return attacker, victims


def test_ext_online_lockout_sweep(benchmark, setup, capsys):
    attacker, victims = setup

    def sweep():
        outcomes = []
        for attempts in (10, 100, 1_000, 10_000):
            outcome = OnlineAttack(
                LockoutPolicy(attempts_per_window=attempts)
            ).run(attacker.iter_guesses(), victims)
            outcomes.append(outcome)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["lockout allowance", "accounts compromised", "rate"],
        [
            [f"{o.guesses_per_account:,}",
             f"{o.accounts_compromised:,}",
             f"{o.compromise_rate:.2%}"]
            for o in outcomes
        ],
        title="(extension) online trawling vs lockout allowance "
              "(Table I: online budget < 10^4)",
    ))
    rates = [o.compromise_rate for o in outcomes]
    assert rates == sorted(rates)
    assert 0.0 < rates[0] < rates[-1] < 1.0


def test_ext_offline_hash_sweep(benchmark, setup, capsys):
    attacker, victims = setup

    def sweep():
        outcomes = {}
        for name in ("md5", "bcrypt", "scrypt"):
            outcomes[name] = OfflineAttack(
                HASH_PROFILES[name], seconds=24 * 3600,
                max_stream_guesses=150_000,
            ).run(attacker.iter_guesses(), victims)
        online = OnlineAttack(LockoutPolicy()).run(
            attacker.iter_guesses(), victims
        )
        return outcomes, online

    outcomes, online = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["attack", "budget/account", "rate"],
        [["online (lockout 100)",
          f"{online.guesses_per_account:,}",
          f"{online.compromise_rate:.2%}"]]
        + [
            [o.attack, f"{o.guesses_per_account:,}",
             f"{o.compromise_rate:.2%}"]
            for o in outcomes.values()
        ],
        title="(extension) offline trawling vs hash function "
              "(Table I: offline budget > 10^9; footnote 5)",
    ))
    # Offline fast-hash dominates online.
    assert outcomes["md5"].compromise_rate > online.compromise_rate
    # Slow hashing shrinks the budget monotonically.
    assert (
        outcomes["md5"].guesses_per_account
        >= outcomes["bcrypt"].guesses_per_account
        >= outcomes["scrypt"].guesses_per_account
    )
    # scrypt drags offline close to the online regime.
    assert outcomes["scrypt"].guesses_per_account < 10 ** 5
