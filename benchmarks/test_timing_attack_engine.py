"""The attack engine vs the pre-engine reference enumerator.

Before the attack-engine refactor, guess streams came from
``FuzzyPSM._iter_guesses_reference``: per-structure
``descending_products`` over dict-table factor lists, merged by
``merge_weighted_descending`` and deduplicated.  The engine rebuilds
the same stream on :class:`~repro.core.frozen.FrozenGrammar`'s
interned flat arrays with one global heap over per-length variant
lattices.

The bench takes the same number of guesses through both paths on a
full-scale trained meter, asserts they agree (same surfaces, same
probabilities to 1e-9 — the engine path is additionally asserted
*bit-identical* to the frozen kernel in ``tests/test_attacks_engine``),
then records the speedup.  The acceptance floor is 5x: below that the
engine has fallen off its compiled arrays.
"""

import time

from repro.core.meter import FuzzyPSM

from bench_lib import SMOKE, emit, record

#: Guesses materialized per path.  The reference path is the slow side
#: at any scale; smoke keeps the same comparison at toy size.
GUESSES = 500 if SMOKE else 20_000

_MIN_SPEEDUP = 5.0


def test_timing_attack_enumeration(corpora, csdn_quarters, capsys):
    train, _ = csdn_quarters
    meter = FuzzyPSM.train(
        base_dictionary=corpora["tianya"].unique_passwords(),
        training=list(train.items()),
    )

    # Engine first: its one-off costs — the table build, timed
    # separately, and the lazy variant-lattice materialization, paid by
    # an untimed warm-up pass (the standard bench idiom; the lattices
    # are cached for the meter's lifetime, so steady state is what a
    # 10^7-guess session actually runs at).  Any parse-cache warmth
    # left behind favours the reference side.
    start = time.perf_counter()
    engine = meter.attack_engine()
    build_seconds = time.perf_counter() - start

    list(engine.guesses(limit=GUESSES))  # untimed lattice warm-up

    start = time.perf_counter()
    engine_guesses = list(engine.guesses(limit=GUESSES))
    engine_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reference_guesses = []
    for item in meter._iter_guesses_reference():
        reference_guesses.append(item)
        if len(reference_guesses) >= GUESSES:
            break
    reference_seconds = time.perf_counter() - start

    # Equivalence: same stream, whichever path produced it.  (The
    # reference includes zero-probability tail entries only after every
    # positive guess, so equal-length prefixes must match.)
    assert len(engine_guesses) == len(reference_guesses)
    assert (
        {surface for surface, _ in engine_guesses}
        == {surface for surface, _ in reference_guesses}
    )
    for (_, engine_p), (_, reference_p) in zip(
        sorted(engine_guesses, key=lambda g: (-g[1], g[0])),
        sorted(reference_guesses, key=lambda g: (-g[1], g[0])),
    ):
        assert abs(engine_p - reference_p) <= 1e-9 * reference_p

    speedup = reference_seconds / engine_seconds
    emit(
        capsys,
        f"(timing) attack enumeration, {len(engine_guesses):,} guesses:\n"
        f"  reference {reference_seconds:7.3f} s\n"
        f"  engine    {engine_seconds:7.3f} s   {speedup:5.2f}x "
        f"(+ {build_seconds:.3f} s one-off build)",
    )
    record(
        "attack_enumeration",
        guesses=len(engine_guesses),
        reference_seconds=reference_seconds,
        engine_seconds=engine_seconds,
        build_seconds=build_seconds,
        speedup=speedup,
    )
    if SMOKE:
        return  # equivalence asserted above; toy-scale ratios are noise
    assert speedup > _MIN_SPEEDUP, (
        f"attack engine below its {_MIN_SPEEDUP}x floor ({speedup:.2f}x)"
    )
