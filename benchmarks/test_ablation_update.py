"""Ablation — the adaptive update phase on/off (DESIGN.md §6).

The paper's real-world scenario folds 1/4 of the target site's
passwords into training, modelling the update phase ("user-submitted
passwords are inserted into the training set and the PSM is
dynamically updated", Sec. V-C).  This ablation compares:

* static   — trained on the similar-service leak only;
* adaptive — leak + the update stream (the paper's real case).

The adaptive meter should track the target distribution better; that
gap is the value of the update phase.
"""

import random

import pytest

from repro.core.meter import FuzzyPSM
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_meters

from bench_lib import CORPUS_SIZE, SEED, emit


@pytest.fixture(scope="module")
def material(ecosystem, corpora):
    base_words = corpora["tianya"].unique_passwords()
    leak = ecosystem.generate("weibo", total=CORPUS_SIZE, seed=SEED + 7)
    target = ecosystem.generate("csdn", total=CORPUS_SIZE, seed=SEED + 8)
    quarters = target.split([0.25, 0.25, 0.25, 0.25],
                            random.Random(SEED))
    update_stream = quarters[0]
    test = quarters[1].merged_with(quarters[2]).merged_with(quarters[3])
    return base_words, leak, update_stream, test


def test_ablation_update_phase(benchmark, material, capsys):
    base_words, leak, update_stream, test = material

    def evaluate_both():
        static = FuzzyPSM.train(
            base_dictionary=base_words, training=list(leak.items())
        )
        adaptive = FuzzyPSM.train(
            base_dictionary=base_words, training=list(leak.items())
        )
        for password, count in update_stream.items():
            adaptive.accept(password, count)
        results = {}
        for label, meter in (("static", static), ("adaptive", adaptive)):
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            results[label] = curves[0].mean
        return results

    results = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["Variant", "mean Kendall tau vs ideal"],
        [[label, f"{value:+.3f}"] for label, value in results.items()],
        title="Ablation -- update phase (leak-only vs leak + update "
              "stream, measuring CSDN)",
    ))
    assert results["adaptive"] >= results["static"]


def test_ablation_update_reaches_new_trends(benchmark, material, capsys):
    """The qualitative property behind the numbers: after updates, a
    previously underivable trend password becomes measurable."""
    base_words, leak, _, _ = material

    def run():
        meter = FuzzyPSM.train(
            base_dictionary=base_words, training=list(leak.items())
        )
        trend = "xinniankuaile2026!"
        before = meter.probability(trend)
        for _ in range(25):
            meter.accept(trend)
        return before, meter.probability(trend)

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, f"Ablation -- trend password probability: "
                 f"{before:.3e} -> {after:.3e} after 25 acceptances")
    assert before == 0.0
    assert after > 0.0
