"""Extension — the future-work transformation rules.

Sec. IV-C's limitations name two gaps this library closes behind
config flags:

* the **reverse** rule ("substring movement and reverse are left as
  future research") — our synthetic users apply it at the survey's
  observed rate (Fig. 5: 8.7% of modifiers), so it is evaluated on
  data that actually contains the phenomenon;
* **all-caps** capitalization (limitation #2: "it only considers the
  capitalization of the first letter") — the synthetic corpora carry
  almost no all-caps passwords (matching Table IX's sub-2% [A-Z]+
  rows), so its bench is a mechanism demonstration on a corpus with
  the signal injected at Table IX's observed rate.

Checked for each: coverage widens (the new surfaces become
derivable), accuracy does not regress, and the learned Yes-rate stays
small so ordinary passwords are barely taxed.
"""

import random

import pytest

from repro.core.meter import FuzzyPSM, FuzzyPSMConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_meters

from bench_lib import emit


@pytest.fixture(scope="module")
def material(corpora, csdn_quarters):
    train, test = csdn_quarters
    return (
        corpora["tianya"].unique_passwords(),
        list(train.items()),
        test,
    )


def test_ext_reverse_rule(benchmark, material, capsys):
    base_words, items, test = material

    def evaluate_both():
        results = {}
        for label, flag in (("off (paper)", False), ("on", True)):
            meter = FuzzyPSM.train(
                base_dictionary=base_words, training=items,
                config=FuzzyPSMConfig(allow_reverse=flag),
            )
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            reverse_rate = (
                meter.grammar.reverse.probability(True)
                if meter.grammar.reverse.total else 0.0
            )
            derivable = sum(
                1 for password in test.unique_passwords()
                if meter.probability(password) > 0
            ) / test.unique
            results[label] = (curves[0].mean, reverse_rate, derivable)
        return results

    results = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["reverse rule", "mean Kendall tau", "learned P(Reverse=Yes)",
         "derivable test fraction"],
        [
            [label, f"{tau:+.3f}", f"{rate:.3%}", f"{derivable:.1%}"]
            for label, (tau, rate, derivable) in results.items()
        ],
        title="(extension) the reverse transformation rule "
              "(paper future work; survey rate 8.7% of modifiers)",
    ))
    tau_off, _, derivable_off = results["off (paper)"]
    tau_on, rate_on, derivable_on = results["on"]
    # The extension widens coverage without hurting accuracy.
    assert derivable_on >= derivable_off
    assert tau_on >= tau_off - 0.03
    # The learned rate is small (reversal is a niche behaviour), so
    # the per-segment tax on ordinary passwords is tiny.
    assert 0.0 < rate_on < 0.10


def test_ext_reverse_spot_checks(benchmark, material, capsys):
    base_words, items, _ = material

    def train_on():
        return FuzzyPSM.train(
            base_dictionary=base_words, training=items,
            config=FuzzyPSMConfig(allow_reverse=True),
        )

    meter = benchmark.pedantic(train_on, rounds=1, iterations=1)
    # A password is derivable when its base is a learned terminal, so
    # the right probes are trained terminals that are also trie words
    # (reverse-matchable): their reversed forms must all measure > 0.
    rows = []
    derivable = 0
    probes = 0
    for length in meter.grammar.known_lengths():
        if length < 6:
            continue
        for word, _ in meter.grammar.terminals[length].most_common():
            if (
                word.isalpha() and word != word[::-1]
                and word in meter.trie
                and (length,) in meter.grammar.structures
            ):
                reversed_form = word[::-1]
                probability = meter.probability(reversed_form)
                if len(rows) < 5:
                    rows.append([
                        word, reversed_form,
                        f"{probability:.2e}" if probability else "0",
                    ])
                probes += 1
                if probability > 0:
                    derivable += 1
                if probes >= 200:
                    break
        if probes >= 200:
            break
    emit(capsys, format_table(
        ["trained base word", "reversed", "P(reversed)"],
        rows,
        title="(extension) reversed trained words become measurable",
    ))
    assert probes > 20
    # A few reversed forms parse differently under the greedy
    # longest-match (e.g. a longer forward word wins); the vast
    # majority become measurable.
    assert derivable / probes > 0.8


def test_ext_allcaps_rule(benchmark, material, capsys):
    """Mechanism demo for the all-caps extension: inject all-caps
    variants at Table IX's uppercase-row rate (~1%) into training and
    test, then compare derivability of the injected surfaces."""
    base_words, items, test = material
    rng = random.Random(3)
    injected_train = list(items)
    injected_probes = []
    for password, count in items:
        if (
            password.isalpha() and password.islower()
            and len(password) >= 6 and rng.random() < 0.05
        ):
            upper = password.upper()
            injected_train.append((upper, max(1, count // 2)))
            injected_probes.append(upper)
        if len(injected_probes) >= 120:
            break

    def evaluate_both():
        results = {}
        for label, flag in (("off (paper)", False), ("on", True)):
            meter = FuzzyPSM.train(
                base_dictionary=base_words, training=injected_train,
                config=FuzzyPSMConfig(allow_allcaps=flag),
            )
            derivable = sum(
                1 for probe in injected_probes
                if meter.probability(probe) > 0
            ) / len(injected_probes)
            rate = (
                meter.grammar.allcaps.probability(True)
                if meter.grammar.allcaps.total else 0.0
            )
            results[label] = (derivable, rate)
        return results

    results = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["all-caps rule", "injected surfaces derivable",
         "learned P(AllCaps=Yes)"],
        [
            [label, f"{derivable:.1%}", f"{rate:.3%}"]
            for label, (derivable, rate) in results.items()
        ],
        title="(extension) all-caps capitalization "
              "(paper limitation #2)",
    ))
    derivable_off, _ = results["off (paper)"]
    derivable_on, rate_on = results["on"]
    # Both configurations derive the injected surfaces (they are in
    # training), but only the extension *pools* them with their
    # lower-case base — visible as a learned AllCaps rate.
    assert derivable_on >= derivable_off
    assert 0.0 < rate_on < 0.10
