"""Fig. 13(q)/(r) — cross-language training is ineffective.

Sub-figure (q) measures Dodonew (Chinese) with English training
material (Rockyou base + Phpbb); (r) measures Yahoo (English) with
Chinese material (Tianya base + Weibo).  The paper's point: language
mismatch visibly degrades the trained meters, so "PSMs originally
designed for English users can be used for non-English users [only]
if training sets are properly chosen".
"""

from repro.experiments.reporting import format_curves, format_ranking
from repro.experiments.scenarios import scenario

from bench_lib import emit

CROSS_DODONEW = scenario("cross-dodonew")
CROSS_YAHOO = scenario("cross-yahoo")
MATCHED_DODONEW = scenario("real-dodonew")
MATCHED_YAHOO = scenario("real-yahoo")

LEARNED_METERS = ("fuzzyPSM", "PCFG", "Markov")


def _learned_mean(result):
    return sum(
        result.curve(meter).mean for meter in LEARNED_METERS
    ) / len(LEARNED_METERS)


def test_fig13q_dodonew_cross_language(benchmark, scenario_runner,
                                       capsys):
    result = benchmark.pedantic(
        lambda: scenario_runner(CROSS_DODONEW), rounds=1, iterations=1
    )
    emit(capsys, format_curves(result))
    emit(capsys, "Fig 13(q) ranking: " + format_ranking(result))
    matched = scenario_runner(MATCHED_DODONEW)
    emit(
        capsys,
        "Fig 13(q) learned-meter mean tau: "
        f"cross-language {_learned_mean(result):+.3f} vs "
        f"matched-language {_learned_mean(matched):+.3f}",
    )
    # Cross-language training degrades the learned meters.
    assert _learned_mean(result) < _learned_mean(matched)


def test_fig13r_yahoo_cross_language(benchmark, scenario_runner, capsys):
    result = benchmark.pedantic(
        lambda: scenario_runner(CROSS_YAHOO), rounds=1, iterations=1
    )
    emit(capsys, format_curves(result))
    emit(capsys, "Fig 13(r) ranking: " + format_ranking(result))
    matched = scenario_runner(MATCHED_YAHOO)
    emit(
        capsys,
        "Fig 13(r) learned-meter mean tau: "
        f"cross-language {_learned_mean(result):+.3f} vs "
        f"matched-language {_learned_mean(matched):+.3f}",
    )
    assert _learned_mean(result) < _learned_mean(matched)
