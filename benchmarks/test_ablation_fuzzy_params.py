"""Ablation — fuzzyPSM's base dictionary and minimum base length.

DESIGN.md §6: the paper fixes the minimum basic-password length at 3
and picks the weakest same-language leak as the base dictionary; this
ablation varies both.  The base-dictionary ablation is the
interesting one — fuzzyPSM's whole premise is that base coverage of
reused passwords drives accuracy, so shrinking the base dictionary
should hurt.
"""

import pytest

from repro.core.meter import FuzzyPSM, FuzzyPSMConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_meters

from bench_lib import emit

MIN_LENGTHS = (3, 4, 6)


@pytest.fixture(scope="module")
def material(corpora, csdn_quarters):
    train, test = csdn_quarters
    return corpora["tianya"].unique_passwords(), list(train.items()), test


def test_ablation_min_base_length(benchmark, material, capsys):
    base_words, items, test = material

    def evaluate_all():
        results = {}
        for min_length in MIN_LENGTHS:
            meter = FuzzyPSM.train(
                base_dictionary=base_words, training=items,
                config=FuzzyPSMConfig(min_base_length=min_length),
            )
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            results[min_length] = curves[0].mean
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["min base length", "mean Kendall tau vs ideal"],
        [[length, f"{value:+.3f}"]
         for length, value in results.items()],
        title="Ablation -- minimum basic-password length "
              "(paper default: 3)",
    ))
    # The paper's default must be competitive with the alternatives.
    best = max(results.values())
    assert results[3] >= best - 0.05


def test_ablation_base_dictionary_coverage(benchmark, material, capsys):
    """The quantity that matters is *coverage*, not raw size: the
    paper's base dictionaries (12.9-14.3M uniques) contain most
    passwords users reuse, while the bench's scaled-down stand-in is
    1000x smaller.  Three coverage levels:

    * none   — empty base dictionary, pure traditional-PCFG fallback;
    * scaled — the bench's Tianya stand-in (partial coverage, which
      fragments parses and can even cost a little accuracy);
    * paper  — scaled base plus the training passwords themselves,
      restoring the full-coverage regime the paper operates in.
    """
    base_words, items, test = material
    levels = (
        ("none (fallback grammar only)", []),
        ("scaled (1000x smaller than paper)", base_words),
        ("paper-level coverage",
         base_words + [password for password, _ in items]),
    )

    def evaluate_all():
        results = {}
        for label, words in levels:
            meter = FuzzyPSM.train(
                base_dictionary=words, training=items
            )
            curves, _ = evaluate_meters([meter], test, min_frequency=4)
            coverage = sum(
                1 for password in test.unique_passwords()
                if meter.parse(password).uses_dictionary
            ) / test.unique
            results[label] = (curves[0].mean, coverage)
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["base dictionary", "mean Kendall tau", "dict coverage"],
        [[label, f"{tau:+.3f}", f"{coverage:.1%}"]
         for label, (tau, coverage) in results.items()],
        title="Ablation -- base-dictionary coverage",
    ))
    taus = {label: tau for label, (tau, _) in results.items()}
    coverages = {
        label: coverage for label, (_, coverage) in results.items()
    }
    # Coverage is monotone in dictionary content.
    assert coverages["paper-level coverage"] >= coverages[
        "scaled (1000x smaller than paper)"
    ] >= coverages["none (fallback grammar only)"]
    # At paper-level coverage the base dictionary pays for itself.
    assert taus["paper-level coverage"] >= taus[
        "scaled (1000x smaller than paper)"
    ]
    assert taus["paper-level coverage"] >= taus[
        "none (fallback grammar only)"
    ] - 0.02
