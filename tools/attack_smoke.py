"""End-to-end smoke test of ``repro attack`` as a real subprocess.

The attack test suites exercise :mod:`repro.attacks` in-process; this
script covers the CLI seam: training two models on disk, then driving
all four ``repro attack`` subcommands (``enumerate``, ``masks``,
``simulate``, ``crossover``) through ``python -m repro`` and checking
their observable outputs — descending enumeration, a persisted mask
set that loads back, simulation fractions, and the online/offline
crossover tables.  Used by ``make attack-smoke`` and the CI attack
job.

Exit status 0 on success; any failure prints the command's output and
exits non-zero within the overall deadline (no hung CI jobs).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.core import now  # noqa: E402

#: Overall wall-clock budget for the whole smoke run.
DEADLINE = 120.0

_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")


def _fail(message: str, output: str = "") -> None:
    print(f"attack-smoke FAILED: {message}", file=sys.stderr)
    if output:
        print(f"--- command output ---\n{output}", file=sys.stderr)
    sys.exit(1)


def _repro(*argv: str, deadline: float) -> str:
    """Run one CLI command, returning stdout+stderr; die on failure."""
    command = [sys.executable, "-m", "repro", *argv]
    try:
        result = subprocess.run(
            command, env=_ENV, cwd=REPO_ROOT, text=True,
            capture_output=True, timeout=max(1.0, deadline),
        )
    except subprocess.TimeoutExpired as error:
        _fail(f"timed out: {' '.join(command)}", str(error.stdout))
    if result.returncode != 0:
        _fail(
            f"exit {result.returncode}: {' '.join(command)}",
            result.stdout + result.stderr,
        )
    return result.stdout + result.stderr


def main() -> int:
    started = now()

    def remaining() -> float:
        return DEADLINE - (now() - started)

    with tempfile.TemporaryDirectory(prefix="repro-attack-") as workdir:
        base = os.path.join(workdir, "base.txt")
        training = os.path.join(workdir, "train.txt")
        victims = os.path.join(workdir, "victims.txt")
        fuzzy = os.path.join(workdir, "fuzzy.json")
        pcfg = os.path.join(workdir, "pcfg.json")
        masks = os.path.join(workdir, "masks.json")

        _repro("generate", "rockyou", "--total", "3000",
               "--output", base, deadline=remaining())
        _repro("generate", "yahoo", "--total", "1500",
               "--output", training, deadline=remaining())
        _repro("generate", "yahoo", "--total", "800", "--seed", "9",
               "--output", victims, deadline=remaining())
        _repro("train", "--training", training, "--base", base,
               "--output", fuzzy, deadline=remaining())
        _repro("train", "--kind", "pcfg", "--training", training,
               "--output", pcfg, deadline=remaining())
        print("corpora generated, fuzzyPSM + PCFG trained")

        out = _repro("attack", "enumerate", "--model", fuzzy,
                     "-n", "50", "--beam-width", "2000", "--stats",
                     deadline=remaining())
        lines = [line for line in out.splitlines()
                 if line and "\t" in line]
        if len(lines) != 50:
            _fail(f"enumerate returned {len(lines)} guesses", out)
        probabilities = [float(line.split("\t")[1]) for line in lines]
        if probabilities != sorted(probabilities, reverse=True):
            _fail("enumeration not descending", out)
        if "pops=" not in out:
            _fail("enumerate --stats missing telemetry line", out)
        print("enumerate OK: 50 descending guesses")

        out = _repro("attack", "masks", "--model", fuzzy,
                     "--source-guesses", "2000", "--top", "10",
                     "--output", masks, deadline=remaining())
        if "top masks" not in out or "substitution rules" not in out:
            _fail("masks output missing tables", out)
        from repro.persistence import load_mask_set
        mask_set = load_mask_set(masks)
        if not mask_set.entries or mask_set.total_keyspace <= 0:
            _fail(f"bad persisted mask set: {mask_set!r}", out)
        print(f"masks OK: {len(mask_set.entries)} masks, "
              f"keyspace {mask_set.total_keyspace:.3e}")

        out = _repro("attack", "simulate", "--model", fuzzy,
                     "--victims", victims, "--lockout", "50",
                     "--hash", "bcrypt", "--max-guesses", "20000",
                     deadline=remaining())
        if "online" not in out or "offline (bcrypt" not in out:
            _fail("simulate output missing attack rows", out)
        print("simulate OK")

        out = _repro("attack", "crossover", "--model", fuzzy,
                     "--baseline", pcfg, "--victims", victims,
                     "--online-budget", "1000",
                     "--offline-budget", "10000000",
                     deadline=remaining())
        for needle in ("online cracked fraction",
                       "offline cracked fraction",
                       "crossover", "fuzzyPSM", "PCFG"):
            if needle not in out:
                _fail(f"crossover output missing {needle!r}", out)
        print("crossover OK: online + offline tables present")

    print(f"attack-smoke OK in {now() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
