"""End-to-end smoke test of ``repro serve`` as a real subprocess.

The serving test suites exercise :class:`repro.serve.ReproServer`
in-process; this script covers the one seam they cannot — the CLI
entry point itself: model loading from disk, ephemeral-port binding,
the startup banner, every endpoint over a real socket from a separate
process, and a clean SIGTERM shutdown.  Used by ``make serve-smoke``
and the CI serving job.

Exit status 0 on success; any failure prints a diagnostic and exits
non-zero within the overall deadline (no hung CI jobs).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.meter import FuzzyPSM  # noqa: E402
from repro.obs.core import now  # noqa: E402
from repro.persistence import save_meter  # noqa: E402

#: Overall wall-clock budget for the whole smoke run.
DEADLINE = 120.0

BASE_DICTIONARY = [
    "password", "iloveyou", "monkey", "dragon", "sunshine",
    "princess", "football", "woaini", "qwerty", "letmein",
]
TRAINING = [
    "password", "password123", "iloveyou1", "woaini520",
    "monkey99", "qwerty12", "sunshine!", "dragon2008",
    "letmein1", "princess7", "football12", "123456",
]

_BANNER = re.compile(
    r"serving (\d+) worker\(s\) on http://([\d.]+):(\d+)"
)


def _fail(message: str, process: subprocess.Popen) -> "NoReturn":  # noqa: F821
    process.kill()
    tail = process.stdout.read() if process.stdout else ""
    print(f"serve-smoke FAILED: {message}", file=sys.stderr)
    if tail:
        print(f"--- server output ---\n{tail}", file=sys.stderr)
    sys.exit(1)


def _request(port: int, method: str, path: str, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    started = now()
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as workdir:
        model_path = os.path.join(workdir, "smoke-model.json")
        meter = FuzzyPSM.train(BASE_DICTIONARY, TRAINING)
        expected = meter.probability("password123")
        save_meter(meter, model_path)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model", model_path, "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO_ROOT,
        )
        try:
            banner = process.stdout.readline()
            match = _BANNER.search(banner)
            if match is None:
                _fail(f"bad startup banner: {banner!r}", process)
            port = int(match.group(3))
            print(f"server up on port {port} "
                  f"({match.group(1)} worker)")

            status, payload = _request(
                port, "POST", "/check", {"password": "password123"}
            )
            assert status == 200 and payload["probability"] == expected, (
                "check",
                payload,
            )
            status, payload = _request(
                port, "POST", "/suggest", {"password": "password123"}
            )
            assert status == 200 and payload["suggestions"], payload
            status, payload = _request(
                port, "POST", "/policy",
                {"password": "abc", "policy": "6-20"},
            )
            assert status == 200 and payload["allowed"] is False, payload
            status, payload = _request(
                port, "POST", "/accept",
                {"password": "zebra42!", "count": 5},
            )
            assert status == 200 and payload["epoch"] >= 1, payload
            status, payload = _request(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "healthy", (
                payload
            )
            status, payload = _request(port, "GET", "/metrics")
            counters = payload["counters"]
            assert counters.get("serve.requests", 0) >= 5, counters
            assert counters.get("serve.reloads", 0) == 1, counters
            print(f"endpoints OK: {counters.get('serve.requests')} "
                  f"requests, epoch {payload['epoch']}")
        except AssertionError as error:
            _fail(f"endpoint assertion: {error}", process)
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(
                        timeout=max(1.0, DEADLINE
                                    - (now() - started))
                    )
                except subprocess.TimeoutExpired:
                    _fail("server ignored SIGTERM", process)

        if process.returncode != 0:
            print(f"serve-smoke FAILED: exit {process.returncode}",
                  file=sys.stderr)
            print(process.stdout.read(), file=sys.stderr)
            return 1
    print(f"serve-smoke OK in {now() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
