#!/usr/bin/env python
"""Dependency-free statement coverage for ``src/repro``.

CI runs the real ``coverage`` package (see ``[tool.coverage.*]`` in
pyproject.toml); this tool exists for containers where it is not
installed — it measures with :func:`sys.settrace` and an AST-derived
statement denominator, which is how the CI ratchet's ``fail_under``
baseline was originally set.

The number reported here is a *conservative underestimate* of what
coverage.py reports:

* the denominator counts every statement line the AST contains, with
  no ``pragma: no cover`` exclusions;
* lines executed only inside ``multiprocessing`` workers are invisible
  to the parent's trace function and count as uncovered.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [--fail-under PCT]
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import threading
from collections import defaultdict
from typing import Dict, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")
_PREFIX = SRC_ROOT + os.sep

_executed: "defaultdict[str, Set[int]]" = defaultdict(set)


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(_PREFIX):
        return None
    if event == "line":
        _executed[filename].add(frame.f_lineno)
    return _tracer


def _is_docstring(statement: ast.stmt) -> bool:
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and isinstance(statement.value.value, str)
    )


def statement_lines(path: str) -> Set[int]:
    """Line numbers of every executable statement in a module.

    Docstrings are skipped (they generate no line events on modern
    CPython); everything else counts, pragma comments included.
    """
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    lines: Set[int] = set()
    # ast.walk gives no parent links, so docstring statements are
    # collected in a first pass and excluded in the second.
    docstrings = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef,
             ast.AsyncFunctionDef),
        ):
            body = node.body
            if body and _is_docstring(body[0]):
                docstrings.add(id(body[0]))
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and id(node) not in docstrings:
            lines.add(node.lineno)
    return lines


def run_suite() -> int:
    """Run the tier-1 suite under the statement tracer."""
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        return pytest.main(
            ["-q", "-p", "no:cacheprovider", "--no-header",
             os.path.join(REPO_ROOT, "tests")]
        )
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def collect_report() -> Dict[str, Dict[str, int]]:
    report: Dict[str, Dict[str, int]] = {}
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            statements = statement_lines(path)
            covered = len(statements & _executed.get(path, set()))
            module = os.path.relpath(path, REPO_ROOT)
            report[module] = {
                "statements": len(statements),
                "covered": covered,
            }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under", type=float, default=None, metavar="PCT",
        help="exit non-zero when total coverage is below PCT",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the per-module report as JSON",
    )
    args = parser.parse_args(argv)

    exit_code = run_suite()
    if exit_code != 0:
        print(f"test suite failed (exit {exit_code}); "
              "coverage not meaningful", file=sys.stderr)
        return exit_code

    report = collect_report()
    total_statements = sum(m["statements"] for m in report.values())
    total_covered = sum(m["covered"] for m in report.values())
    percent = (
        100.0 * total_covered / total_statements if total_statements else 0.0
    )

    if args.json:
        print(json.dumps(
            {"modules": report,
             "total": {"statements": total_statements,
                       "covered": total_covered,
                       "percent": round(percent, 2)}},
            indent=2, sort_keys=True,
        ))
    else:
        width = max(len(module) for module in report)
        for module, counts in sorted(report.items()):
            statements, covered = counts["statements"], counts["covered"]
            share = 100.0 * covered / statements if statements else 100.0
            print(f"{module:<{width}}  {covered:>5}/{statements:<5} "
                  f"{share:6.1f}%")
        print(f"{'TOTAL':<{width}}  {total_covered:>5}/"
              f"{total_statements:<5} {percent:6.1f}%")

    if args.fail_under is not None and percent < args.fail_under:
        print(f"coverage {percent:.1f}% is below the ratchet "
              f"{args.fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
