.PHONY: install test bench examples reproduce clean

install:
	pip install -e '.[dev]' --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

# The full paper reproduction with outputs captured at the repo root.
reproduce:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
