.PHONY: install test bench bench-smoke serve-smoke attack-smoke examples reproduce lint coverage clean

install:
	pip install -e '.[dev]' --no-build-isolation

# Matches the tier-1 verify command; PYTHONPATH=src means no editable
# install is needed for any target below.
test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

# CI-sized run of the timing benches: tiny synthetic corpora, every
# fast-path == reference equivalence assertion still enforced, but
# speedup thresholds skipped and BENCH_timing.json left untouched
# (toy-scale ratios are meaningless; see bench_lib.SMOKE).
bench-smoke:
	PYTHONPATH=src REPRO_BENCH_SMOKE=1 REPRO_BENCH_CORPUS=800 \
		REPRO_BENCH_BASE=2000 python -m pytest \
		benchmarks/test_timing_scoring_engine.py \
		benchmarks/test_timing_batch_scoring.py \
		benchmarks/test_timing_training_engine.py \
		benchmarks/test_timing_measure.py \
		benchmarks/test_timing_lint.py \
		benchmarks/test_timing_serving.py \
		benchmarks/test_timing_snapshot_attach.py \
		benchmarks/test_timing_attack_engine.py -q

# End-to-end smoke of `repro serve` as a real subprocess: trains a
# tiny model, boots the CLI on an ephemeral port, hits every endpoint
# over a socket, and requires a clean SIGTERM shutdown.
serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

# End-to-end smoke of `repro attack` as a real subprocess: trains
# fuzzyPSM + PCFG models on tiny corpora and drives all four attack
# subcommands (enumerate / masks / simulate / crossover).
attack-smoke:
	PYTHONPATH=src python tools/attack_smoke.py

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		PYTHONPATH=src python $$script || exit 1; \
	done

# The full paper reproduction with outputs captured at the repo root.
reproduce:
	PYTHONPATH=src python -m pytest tests/ 2>&1 | tee test_output.txt
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# The static-analysis gate: the domain linter always runs — strict
# over src/, relaxed profile over tests/benchmarks/tools/examples —
# and ruff/mypy run when installed (not baked into every container).
lint:
	PYTHONPATH=src python -m repro lint src/repro tests benchmarks tools examples
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

# The CI coverage ratchet, runnable locally.  Falls back to the
# dependency-free tracer when the coverage package is not installed.
coverage:
	@if python -c 'import coverage' >/dev/null 2>&1; then \
		PYTHONPATH=src python -m coverage run -m pytest -q && \
		PYTHONPATH=src python -m coverage report; \
	else \
		echo "coverage not installed; using tools/measure_coverage.py"; \
		PYTHONPATH=src python tools/measure_coverage.py; \
	fi

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info .coverage htmlcov coverage.xml
	rm -f .repro_lint_cache.json lint.sarif
	find . -name __pycache__ -type d -exec rm -rf {} +
