#!/usr/bin/env python3
"""Quickstart — train fuzzyPSM and measure a few passwords.

The minimal end-to-end flow of the public API:

1. get a *base dictionary* (passwords from a less sensitive service)
   and a *training dictionary* (passwords from a sensitive service) —
   here both are synthetic stand-ins calibrated to the paper's
   published corpus statistics;
2. train the meter;
3. measure passwords (higher probability = weaker password);
4. accept a password to exercise the adaptive update phase.

Run:  python examples/quickstart.py
"""

from repro import FuzzyPSM, SyntheticEcosystem

ecosystem = SyntheticEcosystem(seed=42)

# Rockyou plays the weak-base-dictionary role for English services,
# exactly as in the paper's Table XI.
base = ecosystem.generate("rockyou", total=50_000)
training = ecosystem.generate("yahoo", total=10_000)

print(f"base dictionary : {base.name}, {base.unique:,} unique passwords")
print(f"training set    : {training.name}, {training.total:,} entries")

meter = FuzzyPSM.train(
    base_dictionary=base.unique_passwords(),
    training=list(training.items()),
)

print("\npassword measurements (higher probability = weaker):")
candidates = [
    "123456",          # the universal head of every leak
    "password",        # dictionary word
    "Password1",       # capitalized + digit: barely better
    "p@ssw0rd",        # leet: also barely better
    "sunshine99",      # word + digits
    "gT7#qLw9!xZ2",    # actually strong
]
for password in candidates:
    probability = meter.probability(password)
    bits = meter.entropy(password)
    bits_text = f"{bits:6.1f} bits" if probability else "   inf bits"
    print(f"  {password:15s} p = {probability:11.3e}   {bits_text}")

print("\nwhy is p@ssw0rd weak?  the fuzzy parse explains:")
for line in meter.explain("p@ssw0rd").lines():
    print("  " + line)

# The update phase: the meter adapts as users register new passwords.
trend = "eras-tour-2026"
print(f"\nadaptive update: {trend!r}")
print(f"  before: p = {meter.probability(trend):.3e}")
for _ in range(25):
    meter.accept(trend)
print(f"  after 25 registrations: p = {meter.probability(trend):.3e}")
print("  -> the meter now warns the 26th user picking the same fad.")
