#!/usr/bin/env python3
"""Corpus analysis — the paper's Sec. V-B statistics on any password list.

Computes Tables VIII-X (top-10, character composition, lengths) and a
Fig.-12 style overlap check for two corpora.  Works on synthetic
stand-ins out of the box; point it at real leak files (one password
per line) to analyse genuine data:

Run:  python examples/corpus_analysis.py [file1 [file2]]
"""

import sys

from repro.datasets.loaders import load_corpus
from repro.datasets.stats import (
    composition_table,
    length_table,
    overlap_curve,
    top_k_table,
)
from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.reporting import format_percent, format_table


def load_or_generate():
    if len(sys.argv) >= 2:
        first = load_corpus(sys.argv[1])
        second = load_corpus(sys.argv[2]) if len(sys.argv) >= 3 else None
        return first, second
    ecosystem = SyntheticEcosystem(seed=1)
    return (
        ecosystem.generate("csdn", total=15_000),
        ecosystem.generate("tianya", total=15_000),
    )


first, second = load_or_generate()

print(f"corpus: {first.name}  ({first.unique:,} unique / "
      f"{first.total:,} total)\n")

table, share = top_k_table(first, k=10)
print(format_table(
    ["rank", "password", "count", "share"],
    [
        [rank, pw, count, format_percent(count / first.total)]
        for rank, (pw, count) in enumerate(table, start=1)
    ],
    title=f"Top-10 passwords (together {format_percent(share)} "
          "of the corpus) -- Table VIII",
))

print()
composition = composition_table(first)
print(format_table(
    ["class", "fraction"],
    [
        [name, format_percent(value)]
        for name, value in composition.items()
    ],
    title="Character composition -- Table IX",
))

print()
lengths = length_table(first)
print(format_table(
    ["length", "fraction"],
    [[bucket, format_percent(value)] for bucket, value in lengths.items()],
    title="Length distribution -- Table X",
))

if second is not None:
    print()
    thresholds = [100, 1_000, 5_000]
    curve = overlap_curve(first, second, thresholds)
    print(format_table(
        ["top-k", "shared fraction"],
        [[k, format_percent(value)] for k, value in curve],
        title=f"Password overlap: {first.name} vs {second.name} "
              "-- Fig. 12",
    ))
    print("\nhigh overlap between same-language services is exactly the")
    print("reuse behaviour fuzzyPSM's base dictionary exploits.")
