#!/usr/bin/env python3
"""Password coach — reject weak choices and suggest better ones.

The Houshmand-Aggarwal capability the paper highlights for PCFG-style
meters: when the user's password measures below the threshold, offer
*small, memorable* modifications that escape the attacker's early
guess space — scored by the same meter, filtered by the site's
composition policy.

Run:  python examples/password_coach.py [password ...]
"""

import sys

from repro import FuzzyPSM, PasswordPolicy, SyntheticEcosystem
from repro.core.suggestions import improvement_report, suggest_stronger

TARGET_BITS = 22.0

ecosystem = SyntheticEcosystem(seed=11)
base = ecosystem.generate("rockyou", total=40_000)
leak = ecosystem.generate("yahoo", total=8_000)
meter = FuzzyPSM.train(
    base_dictionary=base.unique_passwords(),
    training=list(leak.items()),
)
policy = PasswordPolicy(min_length=6, max_length=20)

candidates = sys.argv[1:] or [
    "123456", "password", "sunshine", "iloveyou1", "monkey99",
]

print(f"policy: length {policy.describe()}, "
      f"threshold {TARGET_BITS:.0f} bits (under this meter)\n")

for password in candidates:
    violations = policy.violations(password)
    if violations:
        print(f"{password!r}: rejected by policy — "
              + "; ".join(v.message for v in violations))
        print()
        continue
    bits = meter.entropy(password)
    if bits >= TARGET_BITS:
        strength = (
            "outside the modelled guess space"
            if bits == float("inf") else f"{bits:.1f} bits"
        )
        print(f"{password!r}: accepted ({strength})")
        print()
        continue
    suggestions = suggest_stronger(
        meter, password, target_bits=TARGET_BITS,
        max_suggestions=3, policy=policy,
    )
    for line in improvement_report(meter, password, suggestions):
        print(line)
    print()

print("note: suggested edits favour placements real users rarely")
print("choose (middle-of-string insertions), which is what pushes the")
print("variant out of the survey-shaped guess space the meter models.")
