#!/usr/bin/env python3
"""Cracking comparison — probabilistic meters as guessing attackers.

Probabilistic meters "are essentially password cracking tools" (paper
footnote 6).  This example turns fuzzyPSM, PCFG and Markov into
attackers against a held-out test set and reproduces the paper's
Sec. IV-B analysis in miniature:

* cracking curves (fraction of accounts recovered vs guesses tried);
* un-usable guess counts (Table III's quantity);
* the PCFG-measures-better / Markov-cracks-better reconciliation.

Run:  python examples/cracking_comparison.py
"""

import random

from repro import FuzzyPSM, MarkovMeter, PCFGMeter, SyntheticEcosystem
from repro.metrics.cracking import cracking_curve
from repro.metrics.unusable import count_unusable_guesses

HORIZONS = [100, 1_000, 10_000, 50_000]

ecosystem = SyntheticEcosystem(seed=3)
corpus = ecosystem.generate("csdn", total=16_000)
train, _, _, test = corpus.split([0.25] * 4, random.Random(0))
base = ecosystem.generate("tianya", total=60_000)

print(f"training on {train.total:,} CSDN entries, "
      f"attacking {test.total:,} held-out entries\n")

attackers = [
    FuzzyPSM.train(base_dictionary=base.unique_passwords(),
                   training=list(train.items())),
    PCFGMeter.train(train.items()),
    MarkovMeter.train(train.items(), order=3),
]

print("cracking curves (fraction of test accounts recovered):")
header = "  " + "guesses".ljust(10) + "".join(
    meter.name.rjust(10) for meter in attackers
)
print(header)
curves = {
    meter.name: cracking_curve(meter.iter_guesses(), test, HORIZONS)
    for meter in attackers
}
for index, horizon in enumerate(HORIZONS):
    row = f"  {horizon:<10,}"
    for meter in attackers:
        row += f"{curves[meter.name][index].cracked_fraction:10.1%}"
    print(row)

print("\nun-usable guesses (produced but absent from the test set):")
print("  " + "guesses".ljust(10) + "".join(
    meter.name.rjust(10) for meter in attackers
))
unusable = {
    meter.name: count_unusable_guesses(
        meter.iter_guesses(), test.unique_passwords(), HORIZONS
    )
    for meter in attackers
}
for horizon in HORIZONS:
    row = f"  {horizon:<10,}"
    for meter in attackers:
        row += f"{unusable[meter.name][horizon]:10,}"
    print(row)

print(
    "\nreading: structure-based models (fuzzyPSM, PCFG) waste fewer\n"
    "early guesses — why they measure weak passwords accurately —\n"
    "while the smoothed Markov model keeps generating novel guesses\n"
    "and catches up at large horizons — why it cracks well (paper\n"
    "Sec. IV-B, Table III)."
)
