#!/usr/bin/env python3
"""Meter shootout — run one Table-XI scenario end to end.

Reproduces a Fig. 13 panel at laptop scale: six meters (fuzzyPSM,
PCFG, Markov, Zxcvbn, KeePSM, NIST) train on identical material and
are ranked by Kendall-tau agreement with the practically ideal meter
on the most popular test passwords.

Run:  python examples/meter_shootout.py [scenario-name]
      (default scenario: real-csdn; list names with
       ``python -m repro scenarios``)
"""

import sys

from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.reporting import format_curves, format_ranking
from repro.experiments.runner import ExperimentConfig, run_scenario
from repro.experiments.scenarios import scenario
from repro.meters import registry

name = sys.argv[1] if len(sys.argv) > 1 else "real-csdn"
chosen = scenario(name)

print(f"scenario {chosen.name} (paper Fig. {chosen.figure})")
print(f"  kind          : {chosen.kind}")
print(f"  base dict     : {chosen.base_dataset}")
print(f"  training leak : {chosen.train_dataset or '1/4 of test set'}")
print(f"  test set      : {chosen.test_dataset}")
print()

# The suite is whatever the meter registry knows how to build — the
# config names meters, the registry supplies class, builder and
# capability flags (same mechanism as ``python -m repro meters``).
print("contenders:")
for display_name in ExperimentConfig().meters:
    spec = registry.get_spec(display_name)
    print(f"  {spec.display_name:8s} [{', '.join(spec.capability_names())}]")
print()

# Scale matters: small corpora leave too few frequent passwords for
# the ideal meter to rank reliably (Sec. V-D).
config = ExperimentConfig(corpus_size=20_000, base_corpus_size=100_000)
result = run_scenario(
    chosen,
    ecosystem=SyntheticEcosystem(seed=0, population=100_000),
    config=config,
    min_frequency=4,
)

print(format_curves(result))
print()
print("ranking by mean correlation:")
print("  " + format_ranking(result))
print()
winner = result.ranking()[0]
print(f"-> {winner} agrees best with the ideal meter on this panel.")
print("   Individual panels vary (they do in the paper too); across")
print("   the full Table-XI matrix fuzzyPSM and PCFG lead the field,")
print("   with fuzzyPSM strongest on the most popular (weakest)")
print("   passwords.  Run `pytest benchmarks/ --benchmark-only` for")
print("   the complete reproduction.")
