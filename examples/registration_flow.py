#!/usr/bin/env python3
"""Registration flow — bucketed real-time feedback at signup.

Models how a web service would actually deploy fuzzyPSM (paper
Sec. II-B: deployed meters group raw probabilities into a few labelled
buckets, like Google's weak/fair/good/strong in Fig. 1):

1. train fuzzyPSM on a same-language, same-service-type leak;
2. calibrate bucket thresholds so each quartile of *real* user
   passwords fills one bucket;
3. run a mandatory policy: reject anything in the weakest bucket;
4. feed accepted passwords back through the update phase so the meter
   tracks the site's own drifting distribution.

Run:  python examples/registration_flow.py
"""

from repro import (
    BucketedMeter,
    FuzzyPSM,
    SyntheticEcosystem,
    calibrate_scale,
)

ecosystem = SyntheticEcosystem(seed=7)
base = ecosystem.generate("rockyou", total=50_000)
leak = ecosystem.generate("phpbb", total=10_000)

meter = FuzzyPSM.train(
    base_dictionary=base.unique_passwords(),
    training=list(leak.items()),
)

# Calibrate: each label covers a quartile of real leaked passwords.
scale = calibrate_scale(meter, leak)
bucketed = BucketedMeter(meter, scale)
print("calibrated bucket thresholds (bits):",
      [f"{t:.1f}" for t in scale.thresholds])

SIGNUPS = [
    ("alice", "123456"),
    ("bob", "password"),
    ("carol", "Password1"),
    ("dave", "sunshine99"),
    ("erin", "correct-horse-battery"),
    ("frank", "gT7#qLw9!xZ2"),
    ("grace", "123456"),          # same fad as alice
]

print("\nsimulated signups (mandatory meter: 'weak' is rejected):")
accepted = 0
for user, password in SIGNUPS:
    feedback = bucketed.feedback(password)
    verdict = "ACCEPT" if feedback.accepted else "REJECT"
    print(
        f"  {user:6s} {password:22s} -> {feedback.label:7s}"
        f" ({feedback.entropy_bits:5.1f} bits)  {verdict}"
    )
    if feedback.accepted:
        accepted += 1
        # The update phase: accepted passwords shift the distribution.
        meter.accept(password)

print(f"\n{accepted}/{len(SIGNUPS)} signups accepted")

# Show the adaptivity: a password that keeps getting accepted drifts
# towards "weak" as it becomes popular on this site.
fad = "sunshine99"
before = bucketed.label(fad)
for _ in range(200):
    meter.accept(fad)
after = bucketed.label(fad)
print(f"\nadaptive drift for {fad!r}: {before} -> {after} "
      "after 200 more users pick it")
