#!/usr/bin/env python3
"""Attack surface — Table I of the paper, executed.

Simulates the taxonomy's two trawling attackers against the same
service, with fuzzyPSM's guess stream as the attack dictionary:

* online  — NIST-style lockout (100 attempts/window), so only the
  distribution head is reachable;
* offline — hash-file attacks under different hash functions and
  salting, showing why footnote 5 recommends bcrypt/scrypt.

Run:  python examples/attack_surface.py
"""

import random

from repro import FuzzyPSM, SyntheticEcosystem
from repro.attacks import (
    HASH_PROFILES,
    LockoutPolicy,
    OfflineAttack,
    OnlineAttack,
)

ecosystem = SyntheticEcosystem(seed=9)
base = ecosystem.generate("rockyou", total=40_000)
corpus = ecosystem.generate("yahoo", total=12_000)
train, _, _, victims = corpus.split([0.25] * 4, random.Random(0))

attacker = FuzzyPSM.train(
    base_dictionary=base.unique_passwords(),
    training=list(train.items()),
)

print(f"victim service: {victims.total:,} accounts "
      f"({victims.unique:,} distinct passwords)")
print("attacker model: fuzzyPSM trained on a similar-service leak\n")

# --- online: the lockout policy is the defence -------------------------
print("ONLINE (server-mediated, detection & lockout active)")
for attempts in (10, 100, 1_000):
    policy = LockoutPolicy(attempts_per_window=attempts)
    outcome = OnlineAttack(policy).run(
        attacker.iter_guesses(), victims
    )
    print(f"  {outcome.summary()}")

# --- offline: the hash function is the defence --------------------------
# Simulation horizon capped at 200k stream guesses to stay interactive;
# the per-account hash budgets still order the hash functions.
print("\nOFFLINE (hash file stolen, 24h on one GPU, salted)")
for name in ("plaintext", "md5", "bcrypt", "scrypt"):
    attack = OfflineAttack(HASH_PROFILES[name], seconds=24 * 3600,
                           max_stream_guesses=200_000)
    outcome = attack.run(attacker.iter_guesses(), victims)
    print(f"  {outcome.summary()}")

print("\nreading: lockout caps the online attacker at the distribution")
print("head — exactly the passwords a PSM must flag as weak — while a")
print("fast unsalted hash hands the offline attacker the deep tail.")
print("Slow salted hashes (bcrypt/scrypt) drag the offline budget back")
print("toward online scale (paper Sec. II-A, footnote 5).")
