"""The paper's evaluation harness.

* :mod:`~repro.experiments.taxonomy` — Table I (guessing-attack
  taxonomy, the security model).
* :mod:`~repro.experiments.scenarios` — Table XI's training/testing
  scenario matrix.
* :mod:`~repro.experiments.runner` — trains all six meters under a
  scenario and computes the top-k correlation curves of Figs. 9/13.
* :mod:`~repro.experiments.weak_passwords` — Table II's guess numbers
  for typical weak passwords.
* :mod:`~repro.experiments.reporting` — plain-text tables/series.
"""

from repro.experiments.taxonomy import GUESSING_ATTACKS, AttackVector
from repro.experiments.scenarios import (
    Scenario,
    ALL_SCENARIOS,
    IDEAL_SCENARIOS,
    REAL_SCENARIOS,
    CROSS_LANGUAGE_SCENARIOS,
    scenario,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    MeterCurve,
    build_meters,
    run_scenario,
    evaluate_meters,
)
from repro.experiments.weak_passwords import weak_password_table
from repro.experiments.reporting import (
    format_table,
    format_curves,
    format_percent,
    format_ranking,
)

__all__ = [
    "GUESSING_ATTACKS",
    "AttackVector",
    "Scenario",
    "ALL_SCENARIOS",
    "IDEAL_SCENARIOS",
    "REAL_SCENARIOS",
    "CROSS_LANGUAGE_SCENARIOS",
    "scenario",
    "ExperimentConfig",
    "ExperimentResult",
    "MeterCurve",
    "build_meters",
    "run_scenario",
    "evaluate_meters",
    "weak_password_table",
    "format_table",
    "format_curves",
    "format_percent",
    "format_ranking",
]
