"""Multi-seed robustness of scenario results.

The paper's evaluation runs once per scenario on fixed real corpora;
a synthetic reproduction must additionally show its conclusions are
not seed artefacts.  This module repeats a scenario across ecosystem
seeds and aggregates the per-meter ranks, so benches can assert
claims like "fuzzyPSM's mean rank across seeds is top-2" instead of
trusting a single draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_scenario,
)
from repro.experiments.scenarios import Scenario


@dataclass(frozen=True)
class MeterRobustness:
    """One meter's rank statistics across seeds (0 = best)."""

    meter: str
    ranks: Tuple[int, ...]
    mean_taus: Tuple[float, ...]

    @property
    def mean_rank(self) -> float:
        return sum(self.ranks) / len(self.ranks)

    @property
    def rank_stddev(self) -> float:
        mean = self.mean_rank
        return math.sqrt(
            sum((rank - mean) ** 2 for rank in self.ranks)
            / len(self.ranks)
        )

    @property
    def mean_tau(self) -> float:
        return sum(self.mean_taus) / len(self.mean_taus)

    @property
    def wins(self) -> int:
        """Seeds where the meter ranked first."""
        return sum(1 for rank in self.ranks if rank == 0)


@dataclass(frozen=True)
class RobustnessResult:
    """A scenario's aggregate over several seeds."""

    scenario: Scenario
    seeds: Tuple[int, ...]
    meters: Tuple[MeterRobustness, ...]

    def meter(self, name: str) -> MeterRobustness:
        for entry in self.meters:
            if entry.meter == name:
                return entry
        raise KeyError(f"no robustness data for meter {name!r}")

    def ranking(self) -> List[str]:
        """Meters by mean rank across seeds, best first."""
        return [
            entry.meter
            for entry in sorted(self.meters, key=lambda m: m.mean_rank)
        ]

    def rows(self) -> List[List[str]]:
        """Table rows for reporting: meter, mean rank +/- std, wins."""
        return [
            [
                entry.meter,
                f"{entry.mean_rank:.2f} +/- {entry.rank_stddev:.2f}",
                f"{entry.mean_tau:+.3f}",
                f"{entry.wins}/{len(self.seeds)}",
            ]
            for entry in sorted(self.meters, key=lambda m: m.mean_rank)
        ]


def run_scenario_across_seeds(
    scenario: Scenario,
    seeds: Sequence[int],
    config: Optional[ExperimentConfig] = None,
    min_frequency: int = 4,
    population: int = 100_000,
    result_hook: Optional[Callable[[int, ExperimentResult], None]] = None,
) -> RobustnessResult:
    """Run one scenario once per seed and aggregate the rankings.

    Each seed gets its own :class:`SyntheticEcosystem` — a fresh user
    population and fresh corpora — so the spread measures everything
    the synthetic substrate randomises.

    Args:
        result_hook: optional callback receiving each seed's raw
            :class:`ExperimentResult` (for logging/inspection).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    base_config = config or ExperimentConfig()
    ranks: Dict[str, List[int]] = {}
    taus: Dict[str, List[float]] = {}
    for seed in seeds:
        seed_config = ExperimentConfig(
            corpus_size=base_config.corpus_size,
            base_corpus_size=base_config.base_corpus_size,
            markov_order=base_config.markov_order,
            markov_smoothing=base_config.markov_smoothing,
            seed=seed,
            meters=base_config.meters,
        )
        ecosystem = SyntheticEcosystem(seed=seed, population=population)
        result = run_scenario(
            scenario, ecosystem=ecosystem, config=seed_config,
            min_frequency=min_frequency,
        )
        if result_hook is not None:
            result_hook(seed, result)
        for position, meter in enumerate(result.ranking()):
            ranks.setdefault(meter, []).append(position)
            taus.setdefault(meter, []).append(
                result.curve(meter).mean
            )
    meters = tuple(
        MeterRobustness(
            meter=name,
            ranks=tuple(ranks[name]),
            mean_taus=tuple(taus[name]),
        )
        for name in sorted(ranks)
    )
    return RobustnessResult(
        scenario=scenario, seeds=tuple(seeds), meters=meters
    )
