"""Table I — the guessing-attack taxonomy underlying the security model.

The paper classifies guessing attacks along two axes (personal data
used? interacts with the server?) and notes the practical constraint
and guess budget of each; only trawling attacks are in scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class AttackVector:
    """One row of Table I."""

    family: str                 # "Trawling" or "Targeted"
    channel: str                # "Online" or "Offline"
    uses_personal_data: bool
    interacts_with_server: bool
    major_constraint: str
    guess_budget: str           # e.g. "< 10^4"
    considered_in_paper: bool


GUESSING_ATTACKS: Sequence[AttackVector] = (
    AttackVector(
        family="Trawling", channel="Online",
        uses_personal_data=False, interacts_with_server=True,
        major_constraint="Detection, lockout",
        guess_budget="< 10^4", considered_in_paper=True,
    ),
    AttackVector(
        family="Trawling", channel="Offline",
        uses_personal_data=False, interacts_with_server=False,
        major_constraint="Attacker power",
        guess_budget="> 10^9", considered_in_paper=True,
    ),
    AttackVector(
        family="Targeted", channel="Online",
        uses_personal_data=True, interacts_with_server=True,
        major_constraint="Detection, lockout",
        guess_budget="< 10^4", considered_in_paper=False,
    ),
    AttackVector(
        family="Targeted", channel="Offline",
        uses_personal_data=True, interacts_with_server=False,
        major_constraint="Attacker power",
        guess_budget="> 10^9", considered_in_paper=False,
    ),
)


def online_guess_budget() -> int:
    """The online-attack horizon used by bench checkpoints (10^4)."""
    return 10_000
