"""Plain-text tables and curve series for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult


def format_percent(value: float, digits: int = 2) -> str:
    """0.0743 -> '7.43%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """A fixed-width aligned table (markdown-ish, monospace-friendly)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_curves(result: ExperimentResult) -> str:
    """One scenario's curves as a k-by-meter table (a Fig. 13 panel)."""
    ks = [point.k for point in result.curves[0].points]
    headers = ["k"] + [curve.meter for curve in result.curves]
    rows = []
    for index, k in enumerate(ks):
        row = [k]
        for curve in result.curves:
            row.append(f"{curve.points[index].value:+.3f}")
        rows.append(row)
    title = (
        f"Fig. {result.scenario.figure}  [{result.scenario.name}] "
        f"{result.metric_name} correlation vs ideal meter "
        f"({result.test_unique} unique test passwords)"
    )
    return format_table(headers, rows, title=title)


def format_ranking(result: ExperimentResult) -> str:
    """'fuzzyPSM > PCFG > Markov > ...' by mean correlation."""
    pieces = []
    for curve in sorted(result.curves, key=lambda c: -c.mean):
        pieces.append(f"{curve.meter}({curve.mean:+.3f})")
    return " > ".join(pieces)
