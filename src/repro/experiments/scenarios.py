"""Table XI — the training/testing scenario matrix.

Three scenario kinds (Sec. V-C):

* **ideal case** — training is 1/4 of the test dataset, testing is a
  disjoint 1/4; eliminates training-set mismatch so results reflect
  the meter alone (Figs. 9 and 13(a)-(i));
* **real-world case** — training is a leaked similar-service corpus
  plus 1/4 of the test set (the adaptive-update stream), testing is
  the full remaining set (Figs. 13(j)-(p));
* **cross-language** — training material from the other language
  (Figs. 13(q)-(r)), demonstrating that language mismatch breaks
  meters.

fuzzyPSM additionally needs a *base dictionary*: the weakest corpus of
each language group — Rockyou (English) and Tianya (Chinese).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Scenario:
    """One experiment of Fig. 13 (or Fig. 9, which is csdn-ideal).

    Attributes:
        name: identifier, e.g. ``ideal-csdn``.
        figure: the paper sub-figure it reproduces, e.g. ``13(h)``.
        kind: ``ideal`` / ``real`` / ``cross``.
        base_dataset: fuzzyPSM's base dictionary corpus.
        train_dataset: extra training corpus (None in the ideal case,
            where training is a quarter of the test set).
        test_dataset: the dataset being measured.
    """

    name: str
    figure: str
    kind: str
    base_dataset: str
    train_dataset: Optional[str]
    test_dataset: str

    @property
    def language_group(self) -> str:
        return "Chinese" if self.base_dataset == "tianya" else "English"


def _ideal(figure: str, base: str, test: str) -> Scenario:
    return Scenario(
        name=f"ideal-{test}", figure=figure, kind="ideal",
        base_dataset=base, train_dataset=None, test_dataset=test,
    )


def _real(figure: str, base: str, train: str, test: str) -> Scenario:
    return Scenario(
        name=f"real-{test}", figure=figure, kind="real",
        base_dataset=base, train_dataset=train, test_dataset=test,
    )


IDEAL_SCENARIOS: Tuple[Scenario, ...] = (
    _ideal("13(a)", "rockyou", "phpbb"),
    _ideal("13(b)", "rockyou", "yahoo"),
    _ideal("13(c)", "rockyou", "battlefield"),
    _ideal("13(d)", "rockyou", "singles"),
    _ideal("13(e)", "rockyou", "faithwriters"),
    _ideal("13(f)", "tianya", "weibo"),
    _ideal("13(g)", "tianya", "dodonew"),
    _ideal("13(h)", "tianya", "csdn"),   # also Fig. 9(a)/(b)
    _ideal("13(i)", "tianya", "zhenai"),
)

REAL_SCENARIOS: Tuple[Scenario, ...] = (
    _real("13(j)", "rockyou", "phpbb", "yahoo"),
    _real("13(k)", "rockyou", "phpbb", "battlefield"),
    _real("13(l)", "rockyou", "phpbb", "singles"),
    _real("13(m)", "rockyou", "phpbb", "faithwriters"),
    _real("13(n)", "tianya", "weibo", "dodonew"),
    _real("13(o)", "tianya", "weibo", "csdn"),
    _real("13(p)", "tianya", "weibo", "zhenai"),
)

CROSS_LANGUAGE_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="cross-dodonew", figure="13(q)", kind="cross",
        base_dataset="rockyou", train_dataset="phpbb",
        test_dataset="dodonew",
    ),
    Scenario(
        name="cross-yahoo", figure="13(r)", kind="cross",
        base_dataset="tianya", train_dataset="weibo",
        test_dataset="yahoo",
    ),
)

ALL_SCENARIOS: Tuple[Scenario, ...] = (
    IDEAL_SCENARIOS + REAL_SCENARIOS + CROSS_LANGUAGE_SCENARIOS
)

#: The meter pair compared by the crossover experiment
#: (:func:`repro.experiments.runner.run_crossover`): fuzzyPSM against
#: the classic PCFG attacker, at Table I's online (< 10^4) and offline
#: (> 10^9) budgets.
CROSSOVER_METERS: Tuple[str, str] = ("fuzzyPSM", "PCFG")

_BY_NAME: Dict[str, Scenario] = {s.name: s for s in ALL_SCENARIOS}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    >>> scenario("ideal-csdn").figure
    '13(h)'
    """
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_BY_NAME))}"
        )
    return _BY_NAME[name]
