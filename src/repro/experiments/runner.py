"""Runs a Table-XI scenario end to end: data, meters, curves.

The pipeline mirrors Sec. V-C/V-D:

1. Generate (or accept) the corpora involved in a scenario.
2. **ideal case** — split the test dataset into four equal parts,
   train on part 1, measure part 4.  **real / cross** — train on the
   similar-service leak plus 1/4 of the test set, measure the rest.
3. Train all six meters on identical material (fuzzyPSM additionally
   receives the language group's base dictionary).
4. Rank the test set's unique passwords by the ideal meter and compute
   the top-k Kendall-tau (or Spearman-rho) curves of Figs. 9/13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

if TYPE_CHECKING:  # runtime import stays local to run_crossover
    from repro.attacks.masks import CrossoverReport

from repro import obs
from repro.obs.report import build_report
from repro.datasets.corpus import PasswordCorpus
from repro.datasets.synthetic import SyntheticEcosystem
from repro.experiments.scenarios import CROSSOVER_METERS, Scenario
from repro.meters import registry
from repro.meters.base import Meter
from repro.meters.ideal import IdealMeter
from repro.meters.markov import Smoothing
from repro.meters.registry import TrainContext
from repro.meters.zxcvbn.frequency_lists import COMMON_PASSWORDS
from repro.metrics.curves import CurvePoint, correlation_curve, log_grid
from repro.metrics.rank import kendall_tau, spearman_rho


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of an experiment run (defaults = laptop-scale repro)."""

    corpus_size: int = 20_000          # entries per generated corpus
    # The base dictionary must dwarf the training corpus, as in the
    # paper (Rockyou/Tianya are the largest leaks): fuzzyPSM's edge
    # comes from base-dictionary coverage of reused passwords.
    base_corpus_size: int = 120_000
    markov_order: int = 3
    markov_smoothing: Smoothing = Smoothing.BACKOFF
    seed: int = 0
    #: Worker processes for fuzzyPSM's training pass (None = serial);
    #: parallel chunks merge to bit-identical count tables.
    jobs: Optional[int] = None
    #: Worker processes for bulk scoring (None = serial).  Applied to
    #: every meter whose registry spec declares
    #: :attr:`~repro.meters.registry.Capability.PARALLEL_SCORABLE`;
    #: results are bit-identical to serial scoring, and small batches
    #: fall back to the serial path automatically.
    score_jobs: Optional[int] = None
    meters: Tuple[str, ...] = (
        "fuzzyPSM", "PCFG", "Markov", "Zxcvbn", "KeePSM", "NIST",
    )
    #: Collect pipeline telemetry for the run (scoped session; the
    #: snapshot report lands on :attr:`ExperimentResult.telemetry`).
    telemetry: bool = True


@dataclass(frozen=True)
class MeterCurve:
    """One meter's top-k correlation curve."""

    meter: str
    points: Tuple[CurvePoint, ...]

    @property
    def final(self) -> float:
        return self.points[-1].value

    @property
    def mean(self) -> float:
        return sum(p.value for p in self.points) / len(self.points)


@dataclass(frozen=True)
class ExperimentResult:
    """All curves of one scenario run."""

    scenario: Scenario
    curves: Tuple[MeterCurve, ...]
    test_unique: int
    metric_name: str
    #: Telemetry report for the run (:func:`repro.obs.build_report`),
    #: or None when :attr:`ExperimentConfig.telemetry` is off.
    telemetry: Optional[Dict[str, Any]] = None

    def curve(self, meter: str) -> MeterCurve:
        for curve in self.curves:
            if curve.meter == meter:
                return curve
        raise KeyError(f"no curve for meter {meter!r}")

    def ranking(self) -> List[str]:
        """Meters ordered by mean correlation, best first."""
        return [
            curve.meter
            for curve in sorted(self.curves, key=lambda c: -c.mean)
        ]


def build_meters(base_corpus: PasswordCorpus,
                 training_corpus: PasswordCorpus,
                 config: Optional[ExperimentConfig] = None) -> List[Meter]:
    """Train the scenario's meter suite on identical material.

    The machine-learning meters (fuzzyPSM, PCFG, Markov) train on the
    full weighted training corpus; the rule-based meters receive the
    head of the training distribution as their dictionary, which is
    how a deployment would provision them.
    """
    config = config or ExperimentConfig()
    # The rule-based industry/standards meters are static: they ship
    # with stock dictionaries and are NOT retrained per service (that
    # inability to adapt is one of the paper's points).  Their registry
    # builders ignore the training corpus and take only the stock
    # dictionary; the machine-learning meters train on the full
    # weighted corpus.  One shared context serves every meter.
    context = TrainContext(
        training=tuple(training_corpus.items()),
        base_dictionary=tuple(base_corpus.unique_passwords()),
        dictionary=COMMON_PASSWORDS,
        options={
            "markov_order": config.markov_order,
            "markov_smoothing": config.markov_smoothing,
            "jobs": config.jobs,
        },
    )
    telemetry = obs.get()
    meters: List[Meter] = []
    for name in config.meters:
        # One observation per trained meter: the histogram's spread is
        # the per-meter training cost mix of the scenario.
        with telemetry.timer("experiment.train.seconds"):
            meters.append(registry.build_meter(name, context))
    return meters


def evaluate_meters(meters: Sequence[Meter], test_corpus: PasswordCorpus,
                    ks: Optional[Sequence[int]] = None,
                    metric: Callable = kendall_tau,
                    metric_name: str = "kendall",
                    min_frequency: int = 1,
                    score_jobs: Optional[int] = None,
                    ) -> Tuple[Tuple[MeterCurve, ...], int]:
    """Top-k correlation curves of every meter against the ideal meter.

    ``min_frequency`` restricts the ranked test list to passwords with
    empirical frequency at least that value; the paper deems the ideal
    meter meaningful only for ``f_pw >= 4`` (Sec. V-D), so the headline
    comparisons use ``min_frequency=4``.

    ``score_jobs`` is forwarded as ``jobs=N`` to meters that declare
    the parallel-scoring capability (dispatch goes through the
    registry spec, never through concrete meter types); the other
    meters score serially as before.
    """
    ideal = IdealMeter(test_corpus.counts())
    passwords = [
        pw
        for pw, count in test_corpus.most_common()
        if count >= min_frequency
    ]
    if len(passwords) < 2:
        raise ValueError(
            f"fewer than two test passwords with frequency >= {min_frequency}"
        )
    # Batched scoring: every meter is batch-scorable through
    # Meter.probability_many — vectorised overrides (fuzzyPSM's parse
    # cache, the PCFG/Markov memos) serve the whole list at once, the
    # base-class default is the same per-call loop as before.
    telemetry = obs.get()
    ideal_scores = ideal.probability_many(passwords)
    curves = []
    for meter in meters:
        spec = registry.spec_for(meter)
        kind = spec.kind if spec is not None else meter.name.lower()
        # Two spans per meter: the aggregate histogram keeps the whole
        # suite's scoring-cost mix, the per-kind one names the meter.
        with telemetry.timer("experiment.score.seconds"), \
                telemetry.timer(f"experiment.score.{kind}.seconds"):
            if (
                score_jobs is not None
                and spec is not None
                and spec.has(registry.Capability.PARALLEL_SCORABLE)
            ):
                meter_scores = meter.probability_many(
                    passwords, jobs=score_jobs
                )
            else:
                meter_scores = meter.probability_many(passwords)
        points = correlation_curve(
            ideal_scores, meter_scores, ks=ks, metric=metric
        )
        curves.append(MeterCurve(meter.name, tuple(points)))
    return tuple(curves), len(passwords)


def prepare_scenario_data(scenario: Scenario,
                          ecosystem: SyntheticEcosystem,
                          config: Optional[ExperimentConfig] = None,
                          ) -> Tuple[PasswordCorpus, PasswordCorpus,
                                     PasswordCorpus]:
    """(base, training, testing) corpora for a scenario (Sec. V-C)."""
    config = config or ExperimentConfig()
    rng = random.Random(config.seed)
    base = ecosystem.generate(
        scenario.base_dataset, total=config.base_corpus_size,
        seed=config.seed,
    )
    test_full = ecosystem.generate(
        scenario.test_dataset, total=config.corpus_size, seed=config.seed + 1,
    )
    quarters = test_full.split([0.25, 0.25, 0.25, 0.25], rng)
    if scenario.kind == "ideal":
        return base, quarters[0], quarters[3]
    leak = ecosystem.generate(
        scenario.train_dataset, total=config.corpus_size, seed=config.seed + 2,
    )
    training = leak.merged_with(quarters[0], name=f"{leak.name}+quarter")
    testing = quarters[1].merged_with(quarters[2]).merged_with(
        quarters[3], name=f"{test_full.name}[rest]"
    )
    return base, training, testing


def run_scenario(scenario: Scenario,
                 ecosystem: Optional[SyntheticEcosystem] = None,
                 config: Optional[ExperimentConfig] = None,
                 ks: Optional[Sequence[int]] = None,
                 metric: Callable = kendall_tau,
                 metric_name: str = "kendall",
                 min_frequency: int = 1) -> ExperimentResult:
    """Run one scenario and return the correlation curves.

    >>> from repro.experiments.scenarios import scenario as get  # doctest: +SKIP
    >>> result = run_scenario(get("ideal-csdn"))                 # doctest: +SKIP
    """
    config = config or ExperimentConfig()
    ecosystem = ecosystem or SyntheticEcosystem(seed=config.seed)
    if not config.telemetry:
        return _run_scenario_stages(
            scenario, ecosystem, config, ks, metric, metric_name,
            min_frequency, telemetry_report=None,
        )
    # A scoped session, so each scenario's snapshot is its own run and
    # never mixes with process-wide or sibling-scenario telemetry.
    with obs.session() as telemetry:
        return _run_scenario_stages(
            scenario, ecosystem, config, ks, metric, metric_name,
            min_frequency, telemetry_report=lambda: build_report(
                telemetry.snapshot()
            ),
        )


def run_crossover(scenario: Scenario,
                  ecosystem: Optional[SyntheticEcosystem] = None,
                  config: Optional[ExperimentConfig] = None,
                  meters: Sequence[str] = CROSSOVER_METERS,
                  online_budget: int = 10**4,
                  offline_budget: int = 10**10,
                  enumerate_limit: Optional[int] = None) -> "CrossoverReport":
    """Online/offline crossover curves for a scenario's meter pair.

    Prepares the scenario corpora exactly like :func:`run_scenario`,
    trains the requested subset of the meter suite, and compares their
    guess streams on the testing split: materialized cracking curves
    up to ``online_budget`` and mask-extrapolated coverage out to
    ``offline_budget``.  Returns the
    :class:`repro.attacks.masks.CrossoverReport`.
    """
    from repro.attacks import crossover_report, guess_stream_for
    config = replace(config or ExperimentConfig(), meters=tuple(meters))
    ecosystem = ecosystem or SyntheticEcosystem(seed=config.seed)
    base, training, testing = prepare_scenario_data(
        scenario, ecosystem, config
    )
    trained = build_meters(base, training, config)
    limit = enumerate_limit if enumerate_limit is not None else (
        online_budget
    )
    return crossover_report(
        [
            (meter.name, guess_stream_for(meter, limit=limit))
            for meter in trained
        ],
        testing,
        online_budget=online_budget,
        offline_budget=offline_budget,
        enumerate_limit=limit,
    )


def _run_scenario_stages(
    scenario: Scenario,
    ecosystem: SyntheticEcosystem,
    config: ExperimentConfig,
    ks: Optional[Sequence[int]],
    metric: Callable,
    metric_name: str,
    min_frequency: int,
    telemetry_report: Optional[Callable[[], Dict[str, Any]]],
) -> ExperimentResult:
    telemetry = obs.get()
    with telemetry.timer("experiment.data.seconds"):
        base, training, testing = prepare_scenario_data(
            scenario, ecosystem, config
        )
    meters = build_meters(base, training, config)
    with telemetry.timer("experiment.evaluate.seconds"):
        curves, test_unique = evaluate_meters(
            meters, testing, ks=ks, metric=metric,
            metric_name=metric_name, min_frequency=min_frequency,
            score_jobs=config.score_jobs,
        )
    return ExperimentResult(
        scenario=scenario,
        curves=curves,
        test_unique=test_unique,
        metric_name=metric_name,
        telemetry=telemetry_report() if telemetry_report else None,
    )
