"""Table II — guess numbers given by each PSM for typical weak passwords.

The paper trains on 1/4 of CSDN, measures six notoriously weak
passwords, and compares every meter's guess number against the ideal
meter's.  Probabilistic meters get Monte-Carlo guess numbers
(Dell'Amico & Filippone); the ideal meter's guess number is the rank
in the training distribution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.corpus import PasswordCorpus
from repro.meters.base import Meter, ProbabilisticMeter
from repro.meters.ideal import IdealMeter
from repro.metrics.guessnumber import MonteCarloEstimator

#: The paper's six typical weak passwords (Table II column 1).
TYPICAL_WEAK_PASSWORDS: Tuple[str, ...] = (
    "123qwe", "123qwe123qwe", "password123", "Password123",
    "password", "p@ssw0rd",
)


@dataclass(frozen=True)
class WeakPasswordRow:
    """One row of Table II."""

    password: str
    training_rank: Optional[int]
    guess_numbers: Dict[str, float]   # meter name -> estimated guess number

    def closest_meter(self, ideal_name: str = "Ideal") -> Optional[str]:
        """The meter whose guess number is closest to the ideal's (log scale)."""
        ideal = self.guess_numbers.get(ideal_name)
        if ideal is None or not math.isfinite(ideal):
            return None
        best, best_distance = None, math.inf
        for name, value in self.guess_numbers.items():
            if name == ideal_name or not math.isfinite(value) or value <= 0:
                continue
            distance = abs(math.log10(value) - math.log10(ideal))
            if distance < best_distance:
                best, best_distance = name, distance
        return best


def weak_password_table(meters: Sequence[Meter],
                        training_corpus: PasswordCorpus,
                        test_corpus: Optional[PasswordCorpus] = None,
                        passwords: Sequence[str] = TYPICAL_WEAK_PASSWORDS,
                        sample_size: int = 20_000,
                        seed: int = 0) -> List[WeakPasswordRow]:
    """Compute Table II's rows.

    Args:
        meters: trained meters; probabilistic ones are Monte-Carlo
            estimated, rule-based ones get ``2**entropy`` as their
            implied guess number.
        training_corpus: provides the "rank in training set" column.
        test_corpus: provides the ideal meter (defaults to training).
        sample_size: Monte-Carlo samples per probabilistic meter.
    """
    ideal_source = test_corpus if test_corpus is not None else training_corpus
    ideal = IdealMeter(ideal_source.counts())
    training_ranks = {
        password: rank
        for rank, (password, _) in enumerate(
            training_corpus.most_common(), start=1
        )
    }
    estimators: Dict[str, MonteCarloEstimator] = {}
    for meter in meters:
        if isinstance(meter, ProbabilisticMeter):
            try:
                estimators[meter.name] = MonteCarloEstimator(
                    meter, sample_size=sample_size,
                    rng=random.Random(seed),
                )
            except NotImplementedError:
                pass
    rows = []
    for password in passwords:
        guesses: Dict[str, float] = {}
        ideal_rank = ideal.guess_number(password)
        guesses["Ideal"] = float(ideal_rank) if ideal_rank else math.inf
        for meter in meters:
            if meter.name in estimators:
                guesses[meter.name] = estimators[meter.name].guess_number(
                    meter.probability(password)
                )
            else:
                # Rule-based meters: entropy H implies ~2**H guesses.
                guesses[meter.name] = 2.0 ** meter.entropy(password)
        rows.append(
            WeakPasswordRow(
                password=password,
                training_rank=training_ranks.get(password),
                guess_numbers=guesses,
            )
        )
    return rows
