"""fuzzyPSM — the public train / measure / update API (paper Sec. IV-C).

Typical use::

    from repro import FuzzyPSM

    meter = FuzzyPSM.train(base_dictionary=rockyou, training=phpbb)
    meter.probability("P@ssw0rd123")   # higher = weaker
    meter.entropy("P@ssw0rd123")       # same, in bits
    meter.update("newpassword1")       # update phase

The meter is a :class:`~repro.meters.base.ProbabilisticMeter`: it can
also output guesses in decreasing probability (making it a cracking
tool, paper footnote 6) and be sampled for Monte-Carlo guess numbers.
"""

from __future__ import annotations

import random
import warnings
from array import array
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro import obs
from repro.obs.core import now as _now
from repro.core.frozen import FrozenGrammar
from repro.core.grammar import (
    Derivation,
    DerivedSegment,
    FuzzyGrammar,
    leet_rule_for_char,
    structure_label,
)
from repro.core.parser import (
    DEFAULT_PARSE_CACHE_SIZE,
    FuzzyParser,
    ParsedPassword,
)
from repro.core.shm import (
    SharedScoringSegment,
    _worker_attach_state,
    mp_context,
)
from repro.core.training import (
    PasswordEntry,
    build_base_trie,
    train_grammar,
    train_grammar_streaming,
)
from repro.core.trie import PrefixTrie
from repro.meters.base import ProbabilisticMeter, probability_to_entropy
from repro.meters.registry import Capability, TrainContext, register_meter
from repro.metrics.enumeration import (
    LazyDescendingList,
    deduplicate_guesses,
    descending_products,
    merge_weighted_descending,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attacks.engine import AttackEngine


@dataclass(frozen=True)
class FuzzyPSMConfig:
    """Tunables of the meter; defaults are the paper's choices.

    Attributes:
        min_base_length: basic passwords shorter than this are dropped
            from the trie (paper: 3).
        allow_capitalization: model the capitalize-first-letter rule.
        allow_leet: model the six leet rules of Table VI.
        allow_reverse: model the reverse rule — the paper's named
            future work ("substring movement and reverse are left as
            future research"); off by default to match the published
            meter exactly.
        allow_allcaps: model whole-word capitalization — the paper's
            limitation-#2 extension ("it only considers the
            capitalization of the first letter"); off by default.
        auto_update: when True, :meth:`FuzzyPSM.probability` feeds every
            measured password back through the update phase.  The paper
            updates on *accepted* passwords, so this defaults to False
            and :meth:`FuzzyPSM.accept` is the explicit entry point.
        use_compiled_trie: parse against the flat-array
            :class:`~repro.core.compiled_trie.CompiledTrie` snapshot
            instead of walking pointer-trie nodes (``--no-compile`` on
            the CLI turns this off).  Purely an execution-strategy
            switch — parses are bit-for-bit identical either way.
        parse_cache_size: capacity of the parser's LRU parse cache
            (``--parse-cache-size`` on the CLI).  Bulk scoring of
            Zipf-shaped streams hits this cache for the popular head;
            raise it for wide sweeps, shrink it for memory-constrained
            deployments.  Another pure execution-strategy knob.
    """

    min_base_length: int = 3
    allow_capitalization: bool = True
    allow_leet: bool = True
    allow_reverse: bool = False
    allow_allcaps: bool = False
    auto_update: bool = False
    use_compiled_trie: bool = True
    parse_cache_size: int = DEFAULT_PARSE_CACHE_SIZE


@dataclass(frozen=True)
class Explanation:
    """Human-readable breakdown of a measurement (for UIs / examples)."""

    password: str
    probability: float
    structure: str
    segments: Tuple[Tuple[str, str], ...]  # (base, description) pairs

    def lines(self) -> List[str]:
        out = [
            f"password   : {self.password}",
            f"probability: {self.probability:.3e}",
            f"structure  : S -> {self.structure}",
        ]
        for base, description in self.segments:
            out.append(f"  segment {base!r}: {description}")
        return out


def _build_parser(trie: PrefixTrie, config: FuzzyPSMConfig) -> FuzzyParser:
    """The parser matching a meter config (one construction site)."""
    return FuzzyParser(
        trie,
        allow_capitalization=config.allow_capitalization,
        allow_leet=config.allow_leet,
        allow_reverse=config.allow_reverse,
        allow_allcaps=config.allow_allcaps,
        use_compiled=config.use_compiled_trie,
        parse_cache_size=config.parse_cache_size,
    )


#: Distinct-password cutoff below which ``jobs > 1`` still scores
#: serially.  Workers attach to the meter's shared-memory snapshot
#: segment by *name* (DESIGN.md §16), so the old per-pool broadcast tax
#: — pickling compiled matchers and the frozen grammar into every
#: worker — is gone and the cutoff only has to cover process start-up
#: itself.  Mirrors the training fallback
#: (:data:`repro.core.training.PARALLEL_MIN_ENTRIES`); pass
#: ``parallel_threshold`` to :meth:`FuzzyPSM.probability_many` to
#: override (tests and tuning).
PARALLEL_MIN_DISTINCT = 2_000

#: Per-worker scoring state, installed once by ``_worker_init_shared``
#: so every chunk mapped to that worker reuses the same compiled
#: matchers and frozen grammar.
_SCORE_PARSER: Optional[FuzzyParser] = None
_SCORE_FROZEN: Optional[FrozenGrammar] = None


def _worker_init_shared(segment_name: str) -> None:
    """Process-pool initialiser: attach the shared snapshot **once**.

    Workers receive only a segment *name* — nothing model-sized is
    pickled, so the initialiser costs the same few milliseconds under
    ``fork`` and ``spawn`` alike (the broadcast half of DESIGN.md §11,
    re-based onto the snapshot plane of §16).  The per-process attach
    cache in :mod:`repro.core.shm` makes re-initialisation with an
    unchanged name (worker respawns) effectively free.
    """
    global _SCORE_PARSER, _SCORE_FROZEN
    state = _worker_attach_state(segment_name)
    if state.frozen is None:
        raise ValueError(
            f"segment {segment_name!r} carries no grammar tables"
        )
    _SCORE_PARSER = state.build_parser()
    _SCORE_FROZEN = state.frozen


def _score_chunk(chunk: List[str]) -> Tuple[List[float], float]:
    """Score one chunk of *distinct* passwords in a worker.

    Returns the scores plus the worker-side seconds: the parent's
    telemetry backend cannot see into pool processes, so each chunk
    ships its own timing home for the ``meter.parallel.chunk.seconds``
    histogram (same pattern as training's ``train.chunk.seconds``).
    """
    parser = _SCORE_PARSER
    frozen = _SCORE_FROZEN
    assert parser is not None and frozen is not None, \
        "_worker_init_shared did not run"
    start = _now()
    parse = parser.parse
    score = frozen.derivation_probability
    values = [
        score(parse(password).to_derivation()) if password else 0.0
        for password in chunk
    ]
    return values, _now() - start


def _build_fuzzypsm(cls: type, context: TrainContext) -> "FuzzyPSM":
    """Registry builder: base dictionary + training + family options."""
    options = context.options
    return cls.train(
        base_dictionary=context.base_dictionary,
        training=list(context.training),
        config=options.get("fuzzy_config"),
        jobs=options.get("jobs"),
    )


@register_meter(
    "fuzzypsm",
    capabilities=(
        Capability.TRAINABLE,
        Capability.STREAM_TRAINABLE,
        Capability.UPDATABLE,
        Capability.BATCH_SCORABLE,
        Capability.PARALLEL_SCORABLE,
        Capability.PERSISTABLE,
        Capability.BINARY_PERSISTABLE,
    ),
    summary="The paper's fuzzy-PCFG meter with an online update phase",
    builder=_build_fuzzypsm,
    requires_base_dictionary=True,
)
class FuzzyPSM(ProbabilisticMeter):
    """The fuzzy-PCFG password strength meter.

    Build with :meth:`train` (the normal path) or assemble from an
    existing :class:`FuzzyGrammar` and :class:`PrefixTrie` (e.g. after
    deserialising a stored model).
    """

    name = "fuzzyPSM"

    def __init__(self, grammar: FuzzyGrammar, trie: PrefixTrie,
                 config: Optional[FuzzyPSMConfig] = None) -> None:
        self._config = config or FuzzyPSMConfig()
        self._grammar = grammar
        self._trie = trie
        self._parser = _build_parser(trie, self._config)
        # Sorted base-word list, materialised at most once per trie
        # state (keyed on the word count) and shared by every
        # ``to_dict`` call — see :meth:`base_words`.
        self._base_words: Optional[List[str]] = None
        # Frozen scoring snapshot, built lazily by :meth:`frozen_grammar`
        # and invalidated by the grammar's epoch counter.
        self._frozen: Optional[FrozenGrammar] = None
        # Compiled attack engine (guess enumeration / sampling), built
        # lazily by :meth:`attack_engine` with the same epoch-keyed
        # invalidation as the frozen snapshot it sits on.
        self._attack_engine: Optional["AttackEngine"] = None
        # Published shared-memory snapshot segment (DESIGN.md §16),
        # built lazily by :meth:`shared_segment`; a stale epoch is
        # unlinked when the replacement is published.
        self._shared_segment: Optional[SharedScoringSegment] = None

    # --- construction -------------------------------------------------

    @classmethod
    def train(cls, base_dictionary: Iterable[str],
              training: Iterable[PasswordEntry],
              config: Optional[FuzzyPSMConfig] = None,
              jobs: Optional[int] = None) -> "FuzzyPSM":
        """Run the training phase and return a ready meter.

        Args:
            base_dictionary: passwords from a *less sensitive* service
                (the paper uses Rockyou / Tianya).
            training: passwords from a *sensitive* service (optionally
                ``(password, count)`` pairs).
            config: meter tunables; see :class:`FuzzyPSMConfig`.
            jobs: worker processes for the training pass; ``N > 1``
                parses chunks in parallel and merges the count tables
                exactly (see :func:`~repro.core.training.train_grammar`).
        """
        config = config or FuzzyPSMConfig()
        trie = build_base_trie(
            base_dictionary, min_length=config.min_base_length
        )
        parser = _build_parser(trie, config)
        grammar = train_grammar(training, trie, parser=parser, jobs=jobs)
        return cls(grammar, trie, config)

    @classmethod
    def train_streaming(
        cls,
        base_dictionary: Iterable[str],
        chunks: Iterable[Iterable[PasswordEntry]],
        config: Optional[FuzzyPSMConfig] = None,
        jobs: Optional[int] = None,
    ) -> "FuzzyPSM":
        """Train from an out-of-core stream of entry chunks.

        The corpus-scale twin of :meth:`train`: ``chunks`` is an
        iterator of bounded ``(password, count)`` batches — typically
        :func:`repro.datasets.loaders.stream_corpus_chunks` over a
        RockYou-scale file — consumed exactly once, so peak memory is
        governed by the chunk size and (with ``jobs > 1``) the
        trainer's bounded in-flight window, never the corpus.  The
        resulting grammar is byte-identical to an in-memory
        :meth:`train` over the concatenated entries
        (:func:`~repro.core.training.train_grammar_streaming`).
        """
        config = config or FuzzyPSMConfig()
        trie = build_base_trie(
            base_dictionary, min_length=config.min_base_length
        )
        parser = _build_parser(trie, config)
        grammar = train_grammar_streaming(
            chunks, trie, parser=parser, jobs=jobs
        )
        return cls(grammar, trie, config)

    # --- accessors ------------------------------------------------------

    @property
    def grammar(self) -> FuzzyGrammar:
        return self._grammar

    @property
    def trie(self) -> PrefixTrie:
        return self._trie

    @property
    def config(self) -> FuzzyPSMConfig:
        return self._config

    @property
    def parser(self) -> FuzzyParser:
        """The meter's deterministic parser (for cache introspection)."""
        return self._parser

    def frozen_grammar(self) -> FrozenGrammar:
        """The compiled scoring snapshot, current as of this call.

        Built lazily and cached; the grammar's epoch counter (bumped by
        :meth:`update` / training merges) invalidates it, so the update
        phase never scores against stale tables.  Scores from the
        snapshot are bit-identical to
        :meth:`FuzzyGrammar.derivation_probability`.
        """
        frozen = self._frozen
        if frozen is None or frozen.epoch != self._grammar.epoch:
            telemetry = obs.get()
            with telemetry.timer("meter.frozen.build.seconds"):
                frozen = FrozenGrammar(self._grammar)
            self._frozen = frozen
            if telemetry.enabled:
                telemetry.incr("meter.frozen.builds")
        return frozen

    def shared_segment(self) -> SharedScoringSegment:
        """The published snapshot segment for the current epoch.

        Packs the compiled matchers and the frozen grammar into one
        shared-memory segment (created lazily, cached by epoch) that
        scoring pools, serve workers and attack tooling attach to by
        name in milliseconds.  Publishing a new epoch unlinks the
        retired segment — attached processes keep their mappings until
        they drop them, late attachers fail fast.
        """
        segment = self._shared_segment
        frozen = self.frozen_grammar()
        if segment is not None and segment.epoch == frozen.epoch:
            return segment
        forward, reversed_matcher = self._parser.ensure_compiled_matchers()
        telemetry = obs.get()
        with telemetry.timer("shm.segment.publish.seconds"):
            fresh = SharedScoringSegment.create(
                epoch=frozen.epoch,
                forward=forward,
                min_length=self._trie.min_length,
                flags=self._parser.flags,
                parse_cache_size=self._config.parse_cache_size,
                reversed_matcher=reversed_matcher,
                frozen=frozen,
            )
        if segment is not None:
            segment.unlink()
        self._shared_segment = fresh
        return fresh

    def attack_engine(self) -> "AttackEngine":
        """The compiled attack engine, current as of this call.

        Same lifecycle as :meth:`frozen_grammar`: built lazily, cached,
        and rebuilt when the grammar's epoch moves (update phase).  The
        engine drives :meth:`iter_guesses`, beam-bounded enumeration,
        fast Monte-Carlo sampling and mask compilation — see
        :mod:`repro.attacks.engine`.
        """
        # Local import: repro.attacks sits above the core layer.
        from repro.attacks.engine import AttackEngine

        engine = self._attack_engine
        if engine is None or not engine.is_current():
            telemetry = obs.get()
            with telemetry.timer("attack.engine.build.seconds"):
                engine = AttackEngine(self)
            self._attack_engine = engine
            if telemetry.enabled:
                telemetry.incr("attack.engine.builds")
        return engine

    # --- measuring -------------------------------------------------------

    def parse(self, password: str) -> ParsedPassword:
        """The deterministic fuzzy parse used for measuring/updating."""
        return self._parser.parse(password)

    def probability(self, password: str) -> float:
        """``M(pw)``: probability of the password's fuzzy derivation.

        Unseen structures or terminals yield 0.0 — under trawling
        guessing, a password the model cannot derive is out of reach of
        the modelled attacker.
        """
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("meter.probability")
        if not password:
            return 0.0
        parsed = self.parse(password)
        probability = self._grammar.derivation_probability(
            parsed.to_derivation()
        )
        if self._config.auto_update:
            self._grammar.observe(parsed.to_derivation())
        return probability

    def probability_many(
        self,
        passwords: Iterable[str],
        jobs: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
    ) -> List[float]:
        """Bulk :meth:`probability`, returning one value per input.

        Real password streams are heavily repetitive (Zipf-shaped), so
        bulk scoring routes parses through the parser's LRU cache,
        memoises the final probability per distinct password within the
        batch, and evaluates derivations against the frozen scoring
        kernel (:meth:`frozen_grammar`).  Results are exactly the
        per-call values, in order.

        Args:
            passwords: the stream to score.
            jobs: worker processes; ``None``/``0``/``1`` score in this
                process.  ``N > 1`` deduplicates the stream and fans
                chunks of distinct passwords to a pool whose workers
                receive the compiled matchers + frozen grammar once at
                start-up.  Batches with fewer distinct passwords than
                the threshold — or meters parsing without the compiled
                trie — fall back to the serial path automatically
                (``meter.parallel.fallback.serial``).
            parallel_threshold: distinct-count cutoff for that fallback
                (default :data:`PARALLEL_MIN_DISTINCT`).

        With ``auto_update`` on, every measurement mutates the grammar,
        so each value depends on all earlier ones — that mode falls
        back to the plain sequential loop.
        """
        if self._config.auto_update:
            return [self.probability(pw) for pw in passwords]
        telemetry = obs.get()
        if jobs is not None and jobs > 1:
            stream = list(passwords)
            distinct = list(dict.fromkeys(stream))
            threshold = (
                PARALLEL_MIN_DISTINCT if parallel_threshold is None
                else parallel_threshold
            )
            if (
                len(distinct) >= threshold
                and self._config.use_compiled_trie
            ):
                return self._probability_many_parallel(
                    stream, distinct, jobs
                )
            if telemetry.enabled:
                telemetry.incr("meter.parallel.fallback.serial")
            passwords = stream
        frozen = self.frozen_grammar()
        parse = self._parser.parse_cached
        score = frozen.derivation_probability
        batch: Dict[str, float] = {}
        out: List[float] = []
        # Probes stay at batch granularity: per-item telemetry in this
        # loop would eat into the very speedup the batch path exists
        # for (per-score cost is ~3 us on cache hits).
        with telemetry.timer("meter.batch.seconds"):
            for password in passwords:
                probability = batch.get(password)
                if probability is None:
                    if password:
                        probability = score(
                            parse(password).to_derivation()
                        )
                    else:
                        probability = 0.0
                    batch[password] = probability
                out.append(probability)
        if telemetry.enabled:
            telemetry.incr("meter.batch.calls")
            telemetry.incr("meter.batch.scores", len(out))
            telemetry.incr("meter.batch.distinct", len(batch))
            telemetry.observe("meter.batch.size", float(len(out)))
        return out

    def entropy_many(
        self,
        passwords: Iterable[str],
        jobs: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
    ) -> List[float]:
        """Batch :meth:`entropy`, sharing the bulk/parallel machinery."""
        return [
            probability_to_entropy(probability)
            for probability in self.probability_many(
                passwords, jobs=jobs, parallel_threshold=parallel_threshold
            )
        ]

    def _probability_many_parallel(
        self, stream: List[str], distinct: List[str], jobs: int
    ) -> List[float]:
        """Fan distinct passwords to a scoring pool; reassemble in order.

        The expensive work — parse + frozen-kernel evaluation — is done
        once per *distinct* password in the pool; the (typically much
        longer) stream is then reassembled by dict lookup in the
        parent.  Workers never see the pointer trie or the count-table
        grammar — nor a pickled copy of anything model-sized: the pool
        initializer hands each worker the *name* of the meter's shared
        snapshot segment (:meth:`shared_segment`) and the worker
        attaches zero-copy, under whatever start method
        :func:`repro.core.shm.mp_context` selects.
        """
        telemetry = obs.get()
        segment = self.shared_segment()
        # A few chunks per worker smooths over uneven parse costs
        # without inflating per-chunk pickling overhead (same shape as
        # parallel training).
        chunk_count = min(jobs * 4, len(distinct))
        step = -(-len(distinct) // chunk_count)
        chunks = [
            distinct[i:i + step] for i in range(0, len(distinct), step)
        ]
        scores: Dict[str, float] = {}
        with telemetry.timer("meter.parallel.seconds"):
            with mp_context().Pool(
                processes=jobs,
                initializer=_worker_init_shared,
                initargs=(segment.name,),
            ) as pool:
                for chunk, (values, chunk_seconds) in zip(
                    chunks, pool.imap(_score_chunk, chunks)
                ):
                    if telemetry.enabled:
                        telemetry.observe(
                            "meter.parallel.chunk.seconds", chunk_seconds
                        )
                    for password, value in zip(chunk, values):
                        scores[password] = value
        if telemetry.enabled:
            telemetry.incr("meter.parallel.calls")
            telemetry.incr("meter.parallel.scores", len(stream))
            telemetry.incr("meter.parallel.distinct", len(distinct))
            telemetry.observe("meter.parallel.size", float(len(stream)))
        return [scores[password] for password in stream]

    def explain(self, password: str) -> Explanation:
        """A structured account of how the password was derived."""
        parsed = self.parse(password)
        probability = self._grammar.derivation_probability(
            parsed.to_derivation()
        )
        segments: List[Tuple[str, str]] = []
        for segment in parsed.segments:
            notes = [segment.kind.value]
            if segment.capitalized:
                notes.append("capitalized")
            if segment.reversed_word:
                notes.append("reversed")
            if segment.all_caps:
                notes.append("all-caps")
            for offset in segment.toggled_offsets:
                rule = leet_rule_for_char(segment.base[offset])
                notes.append(f"leet {rule} at {offset}")
            segments.append((segment.base, ", ".join(notes)))
        return Explanation(
            password=password,
            probability=probability,
            structure=structure_label(parsed.structure),
            segments=tuple(segments),
        )

    # --- update phase ------------------------------------------------------

    def update(self, password: str, count: int = 1) -> None:
        """The update phase: fold an accepted password into the grammar.

        All probabilities associated with the password's structures,
        terminals and transformation rules shift towards the new
        observation (paper Sec. IV-C), keeping the meter adaptive.
        This is the unified lifecycle verb
        (:class:`repro.meters.registry.Updatable`).
        """
        if not password:
            raise ValueError("cannot accept an empty password")
        if count <= 0:
            raise ValueError(
                f"accept count for {password!r} must be positive, "
                f"got {count!r}"
            )
        parsed = self.parse(password)
        self._grammar.observe(parsed.to_derivation(), count)

    def accept(self, password: str, count: int = 1) -> None:
        """Deprecated spelling of :meth:`update`."""
        warnings.warn(
            "FuzzyPSM.accept() is deprecated; use update()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update(password, count)

    # --- serialisation -----------------------------------------------------

    def base_words(self) -> List[str]:
        """The sorted base-dictionary word list, materialised once.

        The list is cached and shared across :meth:`to_dict` calls
        (saving a large meter used to rebuild it on every save); it is
        refreshed if the trie has gained words since.
        """
        if (
            self._base_words is None
            or len(self._base_words) != len(self._trie)
        ):
            self._base_words = list(self._trie.iter_words())
        return self._base_words

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot: base trie, grammar and config."""
        return {
            "config": {
                "min_base_length": self._config.min_base_length,
                "allow_capitalization": self._config.allow_capitalization,
                "allow_leet": self._config.allow_leet,
                "allow_reverse": self._config.allow_reverse,
                "allow_allcaps": self._config.allow_allcaps,
                "auto_update": self._config.auto_update,
                "use_compiled_trie": self._config.use_compiled_trie,
                "parse_cache_size": self._config.parse_cache_size,
            },
            "base_words": self.base_words(),
            "grammar": self._grammar.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzyPSM":
        config = FuzzyPSMConfig(**data["config"])
        trie = PrefixTrie(
            data["base_words"], min_length=config.min_base_length
        )
        grammar = FuzzyGrammar.from_dict(data["grammar"])
        return cls(grammar, trie, config)

    def to_buffers(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Flat-column snapshot for the binary model format.

        Returns ``(meta, sections)``: the JSON-safe config (same keys
        as :meth:`to_dict`'s ``config``) plus an ordered mapping of
        flat columns — the sorted base words as one blob with a
        character-length column, and the grammar's
        :meth:`FuzzyGrammar.to_arrays` columns.  Consumed by
        :func:`repro.persistence.save_meter` with ``fmt="binary"``.
        """
        words = self.base_words()
        base_lens = array("q", (len(word) for word in words))
        sections: Dict[str, Any] = {
            "base_blob": "".join(words),
            "base_lens": base_lens,
        }
        sections.update(self._grammar.to_arrays())
        meta = {
            "config": {
                "min_base_length": self._config.min_base_length,
                "allow_capitalization": self._config.allow_capitalization,
                "allow_leet": self._config.allow_leet,
                "allow_reverse": self._config.allow_reverse,
                "allow_allcaps": self._config.allow_allcaps,
                "auto_update": self._config.auto_update,
                "use_compiled_trie": self._config.use_compiled_trie,
                "parse_cache_size": self._config.parse_cache_size,
            },
        }
        return meta, sections

    @classmethod
    def from_buffers(
        cls, meta: Dict[str, Any], sections: Dict[str, Any]
    ) -> "FuzzyPSM":
        """Rebuild a meter from :meth:`to_buffers` output.

        The fast load path: grammar tables are bulk-built from the
        flat columns (:meth:`FuzzyGrammar.from_arrays`), and the trie
        is rebuilt from the word blob.  A binary round trip yields a
        meter whose :meth:`to_dict` is byte-identical to the source.
        """
        config = FuzzyPSMConfig(**meta["config"])
        blob = sections["base_blob"]
        words: List[str] = []
        offset = 0
        for length in sections["base_lens"]:
            words.append(blob[offset:offset + length])
            offset += length
        trie = PrefixTrie(words, min_length=config.min_base_length)
        grammar = FuzzyGrammar.from_arrays(sections)
        return cls(grammar, trie, config)

    # --- probabilistic-meter extras -----------------------------------------

    def sample(self, rng: random.Random,
               max_attempts: int = 1000) -> Tuple[str, float]:
        """Draw ``(password, probability)`` consistent with ``probability``.

        The grammar can emit several derivations for the same surface
        string, but the meter always measures via the single canonical
        (deterministic longest-prefix) parse.  To sample from exactly
        the distribution that ``probability`` defines, draws whose
        canonical parse differs from the sampled derivation are
        rejected and redrawn.  Non-canonical draws are rare in trained
        grammars; if ``max_attempts`` are exhausted the last surface is
        returned with its canonical (measured) probability so the pair
        stays self-consistent.

        Draws run on the attack engine's
        :class:`~repro.attacks.engine.FrozenSampler` — cumulative
        tables + bisect instead of the training tables' linear scans —
        and accepted probabilities come from the frozen kernel, which
        is bit-identical to the dict path.
        """
        return self.attack_engine().sample(rng, max_attempts=max_attempts)

    def iter_guesses(self, limit: Optional[int] = None
                     ) -> Iterator[Tuple[str, float]]:
        """Guesses in decreasing probability order (deduplicated).

        Served by the compiled attack engine
        (:meth:`attack_engine`), which enumerates the grammar's product
        lattice over the frozen flat tables with one global heap —
        probabilities are bit-identical to the scoring kernel.  Unlike
        the legacy path (kept as :meth:`_iter_guesses_reference` for
        differential tests and benchmarks), the stream contains only
        guesses with probability > 0: zero-probability variants are
        unreachable under the modelled attacker.
        """
        return iter(self.attack_engine().guesses(limit=limit))

    def _iter_guesses_reference(self, limit: Optional[int] = None
                                ) -> Iterator[Tuple[str, float]]:
        """The pre-engine per-guess enumeration (reference semantics).

        Merges, over all learned base structures, the product of
        per-slot variant streams (terminal x capitalization x leet),
        walking the training-side count tables.  Kept as the
        differential oracle for the engine (same guesses, same order up
        to ties, probabilities equal within float re-association) and
        as the baseline of ``benchmarks/test_timing_attack_engine.py``.
        Appends zero-probability variants the engine omits.
        """
        slot_cache: Dict[int, LazyDescendingList[str]] = {}

        def slot_list(length: int) -> LazyDescendingList[str]:
            if length not in slot_cache:
                slot_cache[length] = LazyDescendingList(
                    self._slot_variants(length)
                )
            return slot_cache[length]

        def structure_stream(structure: Tuple[int, ...]
                             ) -> Iterator[Tuple[str, float]]:
            factors = [slot_list(length) for length in structure]
            for surfaces, probability in descending_products(factors):
                yield "".join(surfaces), probability

        streams: List[Tuple[float, Iterator[Tuple[str, float]]]] = []
        total = self._grammar.structures.total
        if total == 0:
            return
        for structure, count in self._grammar.structures.most_common():
            streams.append((count / total, structure_stream(structure)))
        merged = merge_weighted_descending(streams)
        deduplicated = deduplicate_guesses(merged)
        if limit is None:
            yield from deduplicated
        else:
            for index, item in enumerate(deduplicated):
                if index >= limit:
                    return
                yield item

    def _slot_variants(self, length: int) -> Iterator[Tuple[str, float]]:
        """Descending (surface, probability) stream for one B_n slot."""
        table = self._grammar.terminals.get(length)
        if table is None or table.total == 0:
            return iter(())
        total = table.total

        def variants_of(base: str) -> Iterator[Tuple[str, float]]:
            # Heterogeneous slots (case/reverse choices vs leet-toggle
            # offsets), so the factor element type is Any by design.
            factors: List[List[Tuple[Any, float]]] = [
                self._case_reverse_factor(base)
            ]
            for offset, ch in enumerate(base):
                rule = leet_rule_for_char(ch)
                if rule is not None:
                    factors.append(self._leet_factor(rule, offset))
            for choices, probability in descending_products(factors):
                capitalized, reversed_word, all_caps = choices[0]
                toggles = tuple(
                    offset for offset in choices[1:] if offset is not None
                )
                segment = DerivedSegment(base, capitalized, toggles,
                                         reversed_word, all_caps)
                yield segment.surface(), probability

        weighted = [
            (count / total, variants_of(base))
            for base, count in table.most_common()
        ]
        return merge_weighted_descending(weighted)

    def _case_reverse_factor(
        self, base: str
    ) -> List[Tuple[Tuple[bool, bool, bool], float]]:
        """(capitalized, reversed, all_caps) choices for a slot.

        Enumeration must only emit variants the measuring parse can
        report, or measured and enumerated probabilities would drift:

        * ``capitalized=True`` needs a lower-case first character;
        * ``reversed_word=True`` needs the reverse rule enabled and
          observed, a non-palindromic base that is an actual trie word
          (fallback runs are not reverse-matchable), and — matching
          the parser's semantics — no case rule on the same segment;
        * ``all_caps=True`` needs the rule enabled and observed, a
          trie-word base, and an upper-casing that changes a character
          beyond position 0 (otherwise the surface collides with the
          first-letter or plain reading, which the parser prefers).
        """
        p_cap_yes = self._grammar.capitalization_probability(True)
        p_cap_no = self._grammar.capitalization_probability(False)
        p_rev_yes = self._grammar.reverse_probability(True)
        p_rev_no = self._grammar.reverse_probability(False)
        p_ac_yes = self._grammar.allcaps_probability(True)
        p_ac_no = self._grammar.allcaps_probability(False)
        options = [
            ((False, False, False), p_cap_no * p_rev_no * p_ac_no)
        ]
        if base[:1].islower():
            options.append(
                ((True, False, False), p_cap_yes * p_rev_no * p_ac_no)
            )
        if (
            self._config.allow_reverse
            and self._grammar.reverse.count(True) > 0
            and base != base[::-1]
            and base in self._trie
        ):
            options.append(
                ((False, True, False), p_cap_no * p_rev_yes * p_ac_no)
            )
        if (
            self._config.allow_allcaps
            and self._grammar.allcaps.count(True) > 0
            and base in self._trie
            and base[1:] != base[1:].upper()
        ):
            options.append(
                ((False, False, True), p_cap_no * p_rev_no * p_ac_yes)
            )
        options.sort(key=lambda item: (-item[1], item[0]))
        return options

    def _leet_factor(
        self, rule: str, offset: int
    ) -> List[Tuple[Optional[int], float]]:
        p_yes = self._grammar.leet_probability(rule, True)
        p_no = self._grammar.leet_probability(rule, False)
        options = [(None, p_no), (offset, p_yes)]
        options.sort(key=lambda item: (-item[1], item[0] is not None))
        return options
