"""Compact count-table deltas for parallel grammar training.

The first parallel trainer shipped a whole :class:`FuzzyGrammar` back
from every worker chunk — a pickle of every structure tuple, terminal
string and boolean table the chunk touched, with the popular keys
repeated in every chunk's payload.  A :class:`GrammarDelta` replaces
that with the *frozen-grammar layout* turned into a wire format:
per-worker interned indices plus flat ``array`` columns.

Interning is **per worker and persistent across chunks**: the first
time a worker sees a structure or terminal it assigns the next index
and ships the key once, in its ``new_structures`` / ``new_terminals``
lists; every later chunk refers to it by integer index only.  The
parent keeps a mirror vocabulary per worker (:class:`DeltaMerger`), so
the steady-state payload of a chunk is three int arrays and a handful
of boolean counters — no strings, no tuples, no
:class:`~repro.util.freqdist.FrequencyDistribution` objects.

Byte-identity with serial training (the oracle) holds because only the
``structures`` and per-length ``terminals`` tables are insertion-order
sensitive in :meth:`FuzzyGrammar.to_dict` (the boolean tables
serialise under explicit yes/no keys):

* within a chunk, the builder records keys in first-seen order, and
  aggregating a key's repeats into one ``(index, count)`` pair
  preserves that order while counting commutes;
* a worker processes its chunks in increasing submission order (the
  pool task queue is FIFO per process), so by the time the parent
  applies a delta, every index it references is already in that
  worker's mirror vocabulary;
* the parent applies deltas in chunk submission order, so a key first
  seen globally in chunk *k* is inserted exactly where the serial pass
  over the concatenated chunks would have inserted it;
* a terminal's table is keyed by ``len(word)``, so a flat word stream
  reproduces both the length-table insertion order and each table's
  internal order.

``tests/test_training_streaming.py`` asserts the resulting
``to_dict`` documents are byte-identical to the serial pass.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.grammar import Derivation, FuzzyGrammar, Structure
from repro.util.freqdist import FrequencyDistribution
from repro.util.leet import LEET_RULE_INDEX, LEET_RULE_NAMES

#: Boolean-table slots of :attr:`GrammarDelta.booleans`:
#: (cap_yes, cap_no, rev_yes, rev_no, allcaps_yes, allcaps_no).
_BOOLEAN_SLOTS = 6

#: Leet slots: (yes, no) per rule ``L1..L6`` in paper order.
_LEET_SLOTS = 2 * len(LEET_RULE_NAMES)


@dataclass(frozen=True)
class GrammarDelta:
    """One chunk's count-table increments, in interned-index form.

    Attributes:
        worker_id: identifies which worker's vocabulary the index
            columns refer to (the worker's PID under fork).
        new_structures: structures first seen by this worker, in
            first-seen order; the parent appends them to its mirror
            vocabulary *before* resolving ``structure_refs``.
        structure_refs / structure_counts: parallel columns — the
            chunk's structure observations aggregated per structure,
            in chunk-first-seen order.
        new_terminals: terminal strings first seen by this worker
            (their segment length is ``len(word)``, so no length
            column is needed).
        terminal_refs / terminal_counts: parallel columns over the
            worker's terminal vocabulary, chunk-first-seen order.
        booleans: six counters — capitalization / reverse / all-caps
            yes and no totals for the chunk.
        leet: twelve counters — (yes, no) per leet rule in
            ``LEET_RULE_NAMES`` order.
        entries: number of ``(password, count)`` entries parsed.
        seconds: worker-side wall seconds spent parsing the chunk
            (the parent's telemetry cannot see into pool processes).
    """

    worker_id: int
    new_structures: Tuple[Structure, ...]
    structure_refs: "array[int]"
    structure_counts: "array[int]"
    new_terminals: Tuple[str, ...]
    terminal_refs: "array[int]"
    terminal_counts: "array[int]"
    booleans: Tuple[int, ...]
    leet: Tuple[int, ...]
    entries: int
    seconds: float


class DeltaBuilder:
    """Worker-side accumulator translating derivations into deltas.

    One builder lives for the whole worker process; its intern tables
    (:attr:`_structure_ids` / :attr:`_terminal_ids`) persist across
    chunks so repeated keys ship as bare integers after their first
    chunk.  Mirrors the counting order of :meth:`FuzzyGrammar.observe`
    exactly — structure first, then per segment: terminal,
    capitalization, reverse, all-caps, per-character leet.
    """

    def __init__(self, worker_id: int = 0) -> None:
        self._worker_id = worker_id
        self._structure_ids: Dict[Structure, int] = {}
        self._terminal_ids: Dict[str, int] = {}
        self.begin_chunk()

    def begin_chunk(self) -> None:
        """Reset the per-chunk accumulators (vocabularies persist)."""
        self._new_structures: List[Structure] = []
        self._structure_refs = array("q")
        self._structure_counts = array("q")
        self._structure_slots: Dict[int, int] = {}
        self._new_terminals: List[str] = []
        self._terminal_refs = array("q")
        self._terminal_counts = array("q")
        self._terminal_slots: Dict[int, int] = {}
        self._booleans = [0] * _BOOLEAN_SLOTS
        self._leet = [0] * _LEET_SLOTS
        self._entries = 0

    def observe(self, derivation: Derivation, count: int = 1) -> None:
        """Accumulate one derivation (same contract as the grammar's)."""
        self._entries += 1
        structure = derivation.structure
        ref = self._structure_ids.get(structure)
        if ref is None:
            ref = len(self._structure_ids)
            self._structure_ids[structure] = ref
            self._new_structures.append(structure)
        slot = self._structure_slots.get(ref)
        if slot is None:
            self._structure_slots[ref] = len(self._structure_refs)
            self._structure_refs.append(ref)
            self._structure_counts.append(count)
        else:
            self._structure_counts[slot] += count
        booleans = self._booleans
        leet = self._leet
        for segment in derivation.segments:
            base = segment.base
            ref = self._terminal_ids.get(base)
            if ref is None:
                ref = len(self._terminal_ids)
                self._terminal_ids[base] = ref
                self._new_terminals.append(base)
            slot = self._terminal_slots.get(ref)
            if slot is None:
                self._terminal_slots[ref] = len(self._terminal_refs)
                self._terminal_refs.append(ref)
                self._terminal_counts.append(count)
            else:
                self._terminal_counts[slot] += count
            booleans[0 if segment.capitalized else 1] += count
            booleans[2 if segment.reversed_word else 3] += count
            booleans[4 if segment.all_caps else 5] += count
            toggled = segment.toggled_offsets
            toggled_set = set(toggled) if toggled else ()
            for offset, ch in enumerate(base):
                rule = LEET_RULE_INDEX.get(ch)
                if rule is not None:
                    leet[
                        2 * rule + (0 if offset in toggled_set else 1)
                    ] += count

    def finish_chunk(self, seconds: float = 0.0) -> GrammarDelta:
        """Package the accumulated counts and reset for the next chunk."""
        delta = GrammarDelta(
            worker_id=self._worker_id,
            new_structures=tuple(self._new_structures),
            structure_refs=self._structure_refs,
            structure_counts=self._structure_counts,
            new_terminals=tuple(self._new_terminals),
            terminal_refs=self._terminal_refs,
            terminal_counts=self._terminal_counts,
            booleans=tuple(self._booleans),
            leet=tuple(self._leet),
            entries=self._entries,
            seconds=seconds,
        )
        self.begin_chunk()
        return delta


class DeltaMerger:
    """Parent-side fold of :class:`GrammarDelta` streams into a grammar.

    Keeps one mirror vocabulary per ``worker_id``; deltas **must** be
    applied in chunk submission order (the order ``pool.imap`` /
    ``apply_async`` results are consumed), which both resolves every
    index reference and reproduces the serial key-insertion order.
    """

    def __init__(self) -> None:
        self._structures: Dict[int, List[Structure]] = {}
        self._terminals: Dict[int, List[str]] = {}

    def apply(self, grammar: FuzzyGrammar, delta: GrammarDelta) -> None:  # lint-ok: FPM013 -- the epoch bump below is guarded by `bump`: an all-zero delta only issues .add(x, 0) calls, which FrequencyDistribution drops, so the guarded paths leave the grammar byte-identical and frozen snapshots stay valid
        """Fold one delta's counts into ``grammar`` in place."""
        structures = self._structures.setdefault(delta.worker_id, [])
        structures.extend(delta.new_structures)
        terminals = self._terminals.setdefault(delta.worker_id, [])
        terminals.extend(delta.new_terminals)
        bump = any(delta.structure_counts) or any(delta.terminal_counts)
        for ref, count in zip(
            delta.structure_refs, delta.structure_counts
        ):
            grammar.structures.add(structures[ref], count)
        grammar_terminals = grammar.terminals
        for ref, count in zip(delta.terminal_refs, delta.terminal_counts):
            word = terminals[ref]
            table = grammar_terminals.get(len(word))
            if table is None:
                table = grammar_terminals.setdefault(
                    len(word), FrequencyDistribution()
                )
            table.add(word, count)
        booleans = delta.booleans
        grammar.capitalization.add(True, booleans[0])
        grammar.capitalization.add(False, booleans[1])
        grammar.reverse.add(True, booleans[2])
        grammar.reverse.add(False, booleans[3])
        grammar.allcaps.add(True, booleans[4])
        grammar.allcaps.add(False, booleans[5])
        leet = delta.leet
        for index, name in enumerate(LEET_RULE_NAMES):
            table = grammar.leet[name]
            table.add(True, leet[2 * index])
            table.add(False, leet[2 * index + 1])
        if bump:
            # One epoch tick per applied delta, mirroring merge().
            grammar._epoch += 1
