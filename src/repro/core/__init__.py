"""The fuzzy probabilistic context-free grammar core of fuzzyPSM.

Layout (bottom-up):

* :mod:`~repro.core.trie` — prefix trie over the base dictionary with
  transformation-aware longest-prefix matching.
* :mod:`~repro.core.compiled_trie` — the flat-array compiled snapshot
  of that trie used by the parsing hot path.
* :mod:`~repro.core.grammar` — the fuzzy PCFG rule tables
  (paper Tables IV-VI) and derivation probability arithmetic.
* :mod:`~repro.core.parser` — parses a password into base segments,
  capitalization and leet decisions, with traditional-PCFG fallback.
* :mod:`~repro.core.training` — the training phase: builds a
  :class:`~repro.core.grammar.FuzzyGrammar` from a training dictionary.
* :mod:`~repro.core.meter` — :class:`~repro.core.meter.FuzzyPSM`, the
  public train / measure / update API.
"""

from repro.core.trie import PrefixTrie, FuzzyMatch
from repro.core.compiled_trie import CompiledTrie
from repro.core.grammar import FuzzyGrammar, Derivation, DerivedSegment
from repro.core.parser import FuzzyParser, ParsedPassword, ParsedSegment, SegmentKind
from repro.core.training import train_grammar
from repro.core.meter import FuzzyPSM, FuzzyPSMConfig
from repro.core.buckets import (
    BucketScale,
    BucketedMeter,
    Feedback,
    calibrate_scale,
)
from repro.core.policy import COMMON_POLICIES, PasswordPolicy, PolicyViolation
from repro.core.suggestions import (
    Suggestion,
    improvement_report,
    suggest_stronger,
)

__all__ = [
    "PrefixTrie",
    "FuzzyMatch",
    "CompiledTrie",
    "FuzzyGrammar",
    "Derivation",
    "DerivedSegment",
    "FuzzyParser",
    "ParsedPassword",
    "ParsedSegment",
    "SegmentKind",
    "train_grammar",
    "FuzzyPSM",
    "FuzzyPSMConfig",
    "BucketScale",
    "BucketedMeter",
    "Feedback",
    "calibrate_scale",
    "PasswordPolicy",
    "PolicyViolation",
    "COMMON_POLICIES",
    "Suggestion",
    "suggest_stronger",
    "improvement_report",
]
