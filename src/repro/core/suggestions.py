"""Suggesting stronger variants of a weak password.

The paper credits the PCFG-based PSM of Houshmand & Aggarwal (ACSAC
2012) with a distinctive capability: when a user's password falls
below the allowed threshold, the meter "can suggest better password
candidates" — small modifications the user can remember that push the
password out of the attacker's early guess space.

This module implements that capability on top of any meter.  The
candidate space mirrors the transformation rules of the user survey
(insert a digit/symbol, capitalize a letter, toggle a leet pair), but
applied *against* the learned distribution: candidates are scored by
the meter and only modifications that genuinely reduce the derivation
probability qualify.  A beam search composes up to ``max_edits``
single-character modifications, preferring the fewest edits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.policy import PasswordPolicy
from repro.meters.base import Meter, probability_to_entropy
from repro.util.leet import LEET_BY_LETTER, LEET_BY_SUBSTITUTE

#: Characters considered for insertion; middle-of-password insertions
#: are the survey's *least* popular placement — which is exactly what
#: makes them effective against meters trained on survey behaviour.
_INSERTION_CHARS = "0123456789!@#$%^&*_."


@dataclass(frozen=True)
class Suggestion:
    """One candidate replacement password."""

    password: str
    probability: float
    edits: Tuple[str, ...]

    @property
    def entropy_bits(self) -> float:
        return probability_to_entropy(self.probability)

    @property
    def edit_count(self) -> int:
        return len(self.edits)


def _single_edits(password: str) -> List[Tuple[str, str]]:
    """All (variant, description) pairs one edit away."""
    variants: List[Tuple[str, str]] = []
    n = len(password)
    for position in range(n + 1):
        for ch in _INSERTION_CHARS:
            variants.append((
                password[:position] + ch + password[position:],
                f"insert {ch!r} at position {position}",
            ))
    for position, ch in enumerate(password):
        if ch.islower():
            variants.append((
                password[:position] + ch.upper()
                + password[position + 1:],
                f"capitalize position {position}",
            ))
        elif ch.isupper():
            variants.append((
                password[:position] + ch.lower()
                + password[position + 1:],
                f"lowercase position {position}",
            ))
        partner = LEET_BY_LETTER.get(ch) or LEET_BY_SUBSTITUTE.get(ch)
        if partner is not None:
            variants.append((
                password[:position] + partner + password[position + 1:],
                f"leet-toggle position {position} ({ch} -> {partner})",
            ))
    return variants


def suggest_stronger(meter: Meter, password: str,
                     target_bits: float = 20.0,
                     max_suggestions: int = 5,
                     max_edits: int = 2,
                     beam_width: int = 40,
                     policy: Optional[PasswordPolicy] = None,
                     rng: Optional[random.Random] = None
                     ) -> List[Suggestion]:
    """Propose memorable, stronger variants of ``password``.

    Args:
        meter: the strength meter defining "stronger" (lower
            probability / more bits under *this* meter).
        password: the user's original choice.
        target_bits: candidates must measure at least this many bits.
        max_suggestions: how many qualifying candidates to return.
        max_edits: maximum number of composed single-character edits.
        beam_width: candidates kept per search depth.
        policy: optional composition policy candidates must satisfy.
        rng: tie-breaking shuffle source (seeded for reproducibility;
            defaults to a fixed seed so suggestions are deterministic).

    Returns:
        Qualifying suggestions sorted by (edit count, probability) —
        the smallest memorable change first.  Empty when even
        ``max_edits`` edits cannot reach the target.

    >>> from repro.meters.nist import NISTMeter
    >>> out = suggest_stronger(NISTMeter(), "abcdef", target_bits=15.0)
    >>> all(s.entropy_bits >= 15.0 for s in out)
    True
    """
    if not password:
        raise ValueError("cannot improve an empty password")
    if target_bits <= 0:
        raise ValueError("target_bits must be positive")
    if max_edits < 1:
        raise ValueError("max_edits must be >= 1")
    rng = rng or random.Random(0)
    target_probability = 2.0 ** -target_bits

    qualifying: List[Suggestion] = []
    seen: Set[str] = {password}
    # Beam of (variant, edits) to expand at the next depth.
    beam: List[Tuple[str, Tuple[str, ...]]] = [(password, ())]

    for _ in range(max_edits):
        scored: List[Tuple[float, str, Tuple[str, ...]]] = []
        for current, edits in beam:
            candidates = _single_edits(current)
            rng.shuffle(candidates)
            for variant, description in candidates:
                if variant in seen:
                    continue
                seen.add(variant)
                if policy is not None and not policy.is_allowed(variant):
                    continue
                probability = meter.probability(variant)
                trail = edits + (description,)
                if probability <= target_probability:
                    qualifying.append(
                        Suggestion(variant, probability, trail)
                    )
                else:
                    scored.append((probability, variant, trail))
        if len(qualifying) >= max_suggestions:
            break
        # Expand the strongest not-yet-qualifying candidates.
        scored.sort(key=lambda item: item[0])
        beam = [
            (variant, trail)
            for _, variant, trail in scored[:beam_width]
        ]
        if not beam:
            break

    qualifying.sort(key=lambda s: (s.edit_count, s.probability))
    return qualifying[:max_suggestions]


def _bits_text(bits: float) -> str:
    """Render entropy; infinity means "outside the modelled guess
    space" (a probabilistic meter assigns 0 to underivable strings)."""
    if bits == float("inf"):
        return "not in modelled guess space"
    return f"{bits:.1f} bits"


def improvement_report(meter: Meter, password: str,
                       suggestions: Sequence[Suggestion]) -> List[str]:
    """Human-readable lines for a registration UI."""
    lines = [
        f"original  : {password!r} ({_bits_text(meter.entropy(password))})"
    ]
    for suggestion in suggestions:
        lines.append(
            f"suggested : {suggestion.password!r} "
            f"({_bits_text(suggestion.entropy_bits)}; "
            f"{', '.join(suggestion.edits)})"
        )
    if not suggestions:
        lines.append("suggested : (no qualifying variant found)")
    return lines
