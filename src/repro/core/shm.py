"""Zero-copy shared-memory snapshot plane (DESIGN.md §16).

Every multiprocess path in the repo used to broadcast its model by
value: pool initializers pickled the compiled trie and frozen grammar
into each worker (re-deserialized per process), and the serve workers
leaned on fork/COW — which excludes spawn-start platforms and still
pays a full rebuild on every ``/accept`` hot-swap.  This module moves
the model's flat tables into one POSIX ``multiprocessing.shared_memory``
segment instead, so any number of reader processes attach in
milliseconds and score against the *same* physical bytes:

* :class:`SharedScoringSegment` — owner/attachment handle.  ``create``
  packs the :meth:`~repro.core.compiled_trie.CompiledTrie.to_arrays`
  and :meth:`~repro.core.frozen.FrozenGrammar.to_tables` columns with
  the section-directory codec (:mod:`repro.util.sections` — the same
  layout as FPSMBIN1 model files) and writes the image into a fresh
  segment; ``attach`` opens it by name; ``materialize`` rebuilds
  scoring objects whose numeric columns are ``memoryview`` casts
  straight into the mapping (no copy, bit-identical scores).
* :class:`MaterializedScoringState` — what a worker scores with: the
  compiled matchers, the (lazily decoded) frozen grammar, and the
  parser configuration needed to rebuild a byte-identical
  :class:`~repro.core.parser.FuzzyParser`.
* :func:`mp_context` — the repo-wide start-method policy: ``fork``
  where available, overridable via ``REPRO_START_METHOD`` (``spawn``
  CI legs run every pool through here).
* :func:`_worker_attach_state` — the per-process attach cache worker
  initializers call with a segment *name*; re-initialising with a new
  name (an epoch hot-swap) attaches the new segment and detaches the
  old one.

Lifetime rules: exactly one process owns a segment (the one that
called ``create``); owners must ``unlink`` when the epoch is retired,
and an ``atexit`` hook unlinks anything they leaked.  Attached
processes only ever ``close`` their mapping — CPython < 3.13 wrongly
registers attachments with the ``resource_tracker`` (whose exit-time
cleanup would unlink a segment the process does not own), so ``attach``
immediately unregisters.  ``close`` is BufferError-safe: materialized
states export views into the mapping, and while any survive the
mapping is left open for the OS to reclaim at process exit rather than
failing the caller.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
import uuid
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.context import BaseContext
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import obs
from repro.core.compiled_trie import CompiledTrie
from repro.core.frozen import FrozenGrammar
from repro.core.parser import FuzzyParser
from repro.util.sections import decode_sections, pack, read_header

#: Magic of the in-segment image (the shared-memory sibling of the
#: FPSMBIN1 file magic; same directory codec behind it).
MAGIC = b"FPSMSHM1"

#: Every segment name starts with this, so tests (and operators
#: inspecting ``/dev/shm``) can attribute entries to the snapshot
#: plane — and the test suite can assert none leak.
SEGMENT_PREFIX = "reprosnap"

#: Environment variable selecting the pool start method repo-wide.
START_METHOD_ENV = "REPRO_START_METHOD"


def mp_context(method: Optional[str] = None) -> BaseContext:
    """The multiprocessing context every repo pool is built from.

    ``method`` (or the ``REPRO_START_METHOD`` environment variable)
    picks ``fork``/``spawn``/``forkserver`` explicitly; the default is
    ``fork`` where the platform offers it.  Because workers receive a
    segment *name* instead of a model, every start method behaves
    identically — the spawn CI legs simply export the variable.
    """
    chosen = method
    if chosen is None:
        env = os.environ.get(START_METHOD_ENV, "").strip().lower()
        chosen = env or None
    available = multiprocessing.get_all_start_methods()
    if chosen is None:
        chosen = "fork" if "fork" in available else available[0]
    if chosen not in available:
        raise ValueError(
            f"unsupported start method {chosen!r} (from "
            f"{START_METHOD_ENV}); expected one of {sorted(available)}"
        )
    return multiprocessing.get_context(chosen)


class MaterializedScoringState:
    """Scoring objects rebuilt from one attached segment.

    Numeric columns inside ``forward``/``reversed_matcher``/``frozen``
    are zero-copy views into the segment mapping: keep the state (or
    its parser) alive only while the segment is attached.
    """

    __slots__ = (
        "epoch", "forward", "reversed_matcher", "frozen", "min_length",
        "flags", "parse_cache_size",
    )

    def __init__(
        self,
        epoch: int,
        forward: CompiledTrie,
        reversed_matcher: Optional[CompiledTrie],
        frozen: Optional[FrozenGrammar],
        min_length: int,
        flags: Dict[str, bool],
        parse_cache_size: int,
    ) -> None:
        self.epoch = epoch
        self.forward = forward
        self.reversed_matcher = reversed_matcher
        self.frozen = frozen
        self.min_length = min_length
        self.flags = flags
        self.parse_cache_size = parse_cache_size

    def build_parser(self) -> FuzzyParser:
        """A parser that parses byte-identically to the publisher's."""
        return FuzzyParser.from_compiled(
            self.forward,
            self.reversed_matcher,
            self.min_length,
            dict(self.flags),
            parse_cache_size=self.parse_cache_size,
        )


#: Segments created (hence owned) by this process, by name.  The
#: ``atexit`` sweep unlinks leftovers so crashed owners do not leak
#: ``/dev/shm`` entries; the pid check keeps fork children (which
#: inherit this dict but not ownership) from destroying segments the
#: parent is still serving.
_OWNED: Dict[str, "SharedScoringSegment"] = {}


def _cleanup_owned_segments() -> None:
    pid = os.getpid()
    for segment in list(_OWNED.values()):
        if segment.owner_pid == pid:
            segment.unlink()


atexit.register(_cleanup_owned_segments)


class SharedScoringSegment:
    """Handle on one snapshot segment (owner or attached reader)."""

    __slots__ = ("name", "epoch", "owner_pid", "_shm", "_closed")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        epoch: int,
        owner_pid: Optional[int],
    ) -> None:
        self.name = shm.name
        self.epoch = epoch
        #: pid of the creating process; ``None`` on attached handles.
        self.owner_pid = owner_pid
        self._shm = shm
        self._closed = False

    # --- publish -----------------------------------------------------

    @classmethod
    def create(
        cls,
        *,
        epoch: int,
        forward: CompiledTrie,
        min_length: int,
        flags: Mapping[str, bool],
        parse_cache_size: int,
        reversed_matcher: Optional[CompiledTrie] = None,
        frozen: Optional[FrozenGrammar] = None,
    ) -> "SharedScoringSegment":
        """Pack a scoring snapshot into a fresh shared segment.

        ``frozen`` is optional so the training engine can publish
        trie-only segments (workers there parse, they do not score).
        """
        trie_meta, trie_sections = forward.to_arrays()
        sections: Dict[str, Any] = {
            f"t.{name}": value for name, value in trie_sections.items()
        }
        parts: Dict[str, Any] = {"t": trie_meta}
        if reversed_matcher is not None:
            rev_meta, rev_sections = reversed_matcher.to_arrays()
            parts["r"] = rev_meta
            sections.update(
                (f"r.{name}", value)
                for name, value in rev_sections.items()
            )
        if frozen is not None:
            grammar_meta, grammar_sections = frozen.to_tables()
            parts["g"] = grammar_meta
            sections.update(
                (f"g.{name}", value)
                for name, value in grammar_sections.items()
            )
        image = pack(
            MAGIC,
            {
                "epoch": epoch,
                "min_length": min_length,
                "flags": dict(flags),
                "parse_cache_size": parse_cache_size,
                "parts": parts,
            },
            sections,
        )
        shm: Optional[shared_memory.SharedMemory] = None
        while shm is None:
            candidate = (
                f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"
            )
            try:
                shm = shared_memory.SharedMemory(
                    name=candidate, create=True, size=len(image)
                )
            except FileExistsError:  # pragma: no cover - uuid collision
                continue
        shm.buf[: len(image)] = image
        segment = cls(shm, epoch, owner_pid=os.getpid())
        _OWNED[segment.name] = segment
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("shm.segment.created")
            telemetry.observe("shm.segment.bytes", float(len(image)))
        return segment

    # --- attach ------------------------------------------------------

    @classmethod
    def attach(cls, name: str) -> "SharedScoringSegment":
        """Open an existing segment by name (non-owning)."""
        shm = shared_memory.SharedMemory(name=name)
        # CPython < 3.13 registers *attached* segments with the
        # resource tracker too; its exit-time cleanup would unlink a
        # segment this process does not own.  Undo the registration —
        # except when this very process is the owner (self-attach, e.g.
        # the serial fallback path), where the tracker entry belongs to
        # ``create`` and is balanced by ``unlink``.
        if name not in _OWNED:
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", "/" + shm.name), "shared_memory"
                )
            except (KeyError, ValueError):  # pragma: no cover - quirk
                pass
        view = memoryview(shm.buf)
        header = read_header(view, MAGIC)
        segment = cls(shm, int(header["epoch"]), owner_pid=None)
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("shm.segment.attached")
        return segment

    def materialize(self) -> MaterializedScoringState:
        """Rebuild the scoring objects over this segment's bytes."""
        view = memoryview(self._shm.buf)
        header = read_header(view, MAGIC)
        sections = decode_sections(header, view)
        parts = header["parts"]

        def part(prefix: str) -> Dict[str, Any]:
            tag = prefix + "."
            return {
                name[len(tag):]: value
                for name, value in sections.items()
                if name.startswith(tag)
            }

        forward = CompiledTrie.from_arrays(parts["t"], part("t"))
        reversed_matcher = (
            CompiledTrie.from_arrays(parts["r"], part("r"))
            if "r" in parts
            else None
        )
        frozen = (
            FrozenGrammar.from_tables(parts["g"], part("g"))
            if "g" in parts
            else None
        )
        return MaterializedScoringState(
            int(header["epoch"]),
            forward,
            reversed_matcher,
            frozen,
            int(header["min_length"]),
            {str(name): bool(value)
             for name, value in header["flags"].items()},
            int(header["parse_cache_size"]),
        )

    # --- lifetime ----------------------------------------------------

    @property
    def size(self) -> int:
        """Mapping size in bytes (page-rounded by the OS)."""
        return self._shm.size

    def close(self) -> None:
        """Detach this process's mapping (idempotent).

        Materialized states hold zero-copy views into the mapping;
        while any survive, closing would raise ``BufferError``.  One
        GC pass is attempted to collect dropped states; if views still
        remain the mapping is left open (the OS reclaims it at process
        exit) instead of failing the caller mid-swap.
        """
        if self._closed:
            return
        shm = self._shm
        try:
            shm.close()
        except BufferError:
            gc.collect()
            try:
                shm.close()
            except BufferError:
                # Live views still reference the mapping (they hold it
                # alive through their exporting ``mmap``, and the OS
                # reclaims it once the last one dies).  Release what
                # this handle owns — the fd — and neutralize it so
                # ``SharedMemory.__del__`` does not retry (and fail
                # noisily) during interpreter teardown.
                fd = getattr(shm, "_fd", -1)
                if isinstance(fd, int) and fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover - already closed
                        pass
                    setattr(shm, "_fd", -1)
                setattr(shm, "_mmap", None)
        self._closed = True

    def unlink(self) -> None:
        """Destroy the segment name (owner side).

        Existing mappings in attached processes stay valid until each
        closes; only the name disappears, so late attachers fail fast
        instead of reading a retired epoch.
        """
        _OWNED.pop(self.name, None)
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            return
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("shm.segment.unlinked")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner_pid is not None else "attached"
        return (
            f"SharedScoringSegment({self.name!r}, epoch={self.epoch}, "
            f"{role})"
        )


#: Single-slot per-process attach cache: ``(segment name, handle,
#: materialized state)``.  Worker initializers re-run on every pool
#: (re)build with the current segment name; a changed name is an epoch
#: hot-swap — attach the new segment, drop and close the old one.
_ATTACH_CACHE: Optional[
    Tuple[str, SharedScoringSegment, MaterializedScoringState]
] = None


def _cleanup_attach_cache() -> None:
    """Drop the attach cache and detach its mapping at process exit.

    Registered after the owned-segment sweep, so it runs first (LIFO):
    the cached state's views are usually the last exported pointers
    into the mapping, and releasing them here lets ``close`` succeed
    instead of leaving ``SharedMemory.__del__`` to complain during
    interpreter teardown.
    """
    global _ATTACH_CACHE
    cached = _ATTACH_CACHE
    _ATTACH_CACHE = None
    if cached is not None:
        cached[1].close()


atexit.register(_cleanup_attach_cache)


def _worker_attach_state(name: str) -> MaterializedScoringState:
    """Attach ``name`` and materialize it, with a single-slot cache.

    The shared tail of every pool initializer on the snapshot plane
    (the ``_worker_attach*`` prefix is blessed by FPM012 exactly like
    ``_worker_init*``): repeated calls with the same name — respawned
    tasks, batched re-inits — reuse the existing mapping, so only the
    first call per epoch pays the (millisecond) attach.
    """
    global _ATTACH_CACHE
    cached = _ATTACH_CACHE
    if cached is not None and cached[0] == name:
        return cached[2]
    segment = SharedScoringSegment.attach(name)
    state = segment.materialize()
    if cached is not None:
        _ATTACH_CACHE = None
        cached[1].close()
    _ATTACH_CACHE = (name, segment, state)
    return state
