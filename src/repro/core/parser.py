"""Parsing passwords into fuzzy-PCFG derivations (paper Sec. IV-C).

Every password — during training *and* measuring — is parsed by the same
deterministic procedure:

1. From the current position, find the **longest fuzzy prefix match** in
   the base-dictionary trie (exact / capitalized-first-letter / leet
   toggled characters).  The match becomes a dictionary base segment.
2. If no dictionary word matches, fall back to the **traditional PCFG**
   treatment: consume one maximal L/D/S character run as an opaque base
   segment (the paper's ``tyxdqd123 -> B6 B3`` example).
3. Repeat until the password is consumed.

The resulting sequence of segments, each with its capitalization flag
and leet-toggle offsets, is a :class:`~repro.core.grammar.Derivation`
whose probability the grammar can evaluate.

Performance notes (see DESIGN.md "Performance architecture"):

* dictionary matching runs against a :class:`CompiledTrie` — the
  flat-array snapshot of the base trie — built lazily on first parse
  (``use_compiled=False`` restores the pointer trie);
* the reversed-word trie of the ``allow_reverse`` extension is also
  built lazily, on the first parse that needs it, so deserialising a
  reverse-enabled grammar that never parses costs nothing;
* :meth:`FuzzyParser.parse_cached` memoises parses in a bounded LRU —
  password streams are Zipf-distributed, so a small cache absorbs most
  of a bulk-scoring workload.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.compiled_trie import CompiledTrie
from repro.core.grammar import Derivation, DerivedSegment
from repro.core.trie import PrefixTrie
from repro.util.charclasses import first_run

#: Default capacity of the per-parser LRU parse cache.
DEFAULT_PARSE_CACHE_SIZE = 65_536


class SegmentKind(enum.Enum):
    """How a segment was obtained — informational only; the grammar
    pools both kinds into the same ``B_n`` tables (Table IV)."""

    DICTIONARY = "dictionary"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class ParsedSegment:
    """A parsed base segment plus its transformation decisions."""

    base: str
    capitalized: bool
    toggled_offsets: Tuple[int, ...]
    kind: SegmentKind
    reversed_word: bool = False
    all_caps: bool = False

    def to_derived(self) -> DerivedSegment:
        return DerivedSegment(
            self.base, self.capitalized, self.toggled_offsets,
            self.reversed_word, self.all_caps,
        )


@dataclass(frozen=True)
class ParsedPassword:
    """The full parse of one password."""

    password: str
    segments: Tuple[ParsedSegment, ...]

    @property
    def structure(self) -> Tuple[int, ...]:
        return tuple(len(seg.base) for seg in self.segments)

    @property
    def uses_dictionary(self) -> bool:
        """True when at least one segment came from the base dictionary."""
        return any(seg.kind is SegmentKind.DICTIONARY for seg in self.segments)

    @property
    def transformation_count(self) -> int:
        return sum(
            int(seg.capitalized) + len(seg.toggled_offsets)
            + int(seg.reversed_word) + int(seg.all_caps)
            for seg in self.segments
        )

    def to_derivation(self) -> Derivation:
        return Derivation(tuple(seg.to_derived() for seg in self.segments))


def _record_parse(
    telemetry: obs.Telemetry,
    parsed: ParsedPassword,
    cache_miss: bool = False,
) -> None:
    """Report one completed parse to the active telemetry backend.

    Runs only when a collecting backend is installed, and only for
    actual parse work — parse-cache hits are counted separately, under
    ``parser.cache.hit``; a miss that triggered this parse folds its
    ``parser.cache.miss`` into the same dispatch via ``cache_miss``.
    Zero-valued counters are not emitted (report readers default
    missing probes to 0), and the whole group goes through one
    ``incr_many`` call.

    The hot path never calls this directly: parses are *deferred* —
    the parser buffers ``(parsed, cache_miss)`` events on the backend
    (one list append per parse) and this aggregation runs when a
    reader drains the buffer.  That deferral is what keeps the
    enabled-backend overhead of a scoring sweep inside the <5% budget.
    Probe inventory: DESIGN.md §9.
    """
    segments = parsed.segments
    counts = [("parser.parse", 1)]
    append = counts.append
    if cache_miss:
        append(("parser.cache.miss", 1))
    if segments:
        trie_hits = fallbacks = 0
        capitalized = leet = reversed_words = allcaps = 0
        for segment in segments:
            if segment.kind is SegmentKind.DICTIONARY:
                trie_hits += 1
            else:
                fallbacks += 1
            if segment.capitalized:
                capitalized += 1
            leet += len(segment.toggled_offsets)
            if segment.reversed_word:
                reversed_words += 1
            if segment.all_caps:
                allcaps += 1
        # One longest-prefix-match attempt per produced segment: the
        # parse loop consults the matcher exactly once per segment,
        # falling back to an L/D/S run when the attempt misses.
        append(("parser.match.attempts", len(segments)))
        if trie_hits:
            append(("parser.segment.trie_hit", trie_hits))
        if fallbacks:
            append(("parser.segment.fallback", fallbacks))
        if capitalized:
            append(("parser.rule.capitalization", capitalized))
        if leet:
            append(("parser.rule.leet", leet))
        if reversed_words:
            append(("parser.rule.reverse", reversed_words))
        if allcaps:
            append(("parser.rule.allcaps", allcaps))
    telemetry.incr_many(counts)
    telemetry.observe("parser.segments", float(len(segments)))


def _record_parse_event(
    telemetry: obs.Telemetry, event: Tuple[ParsedPassword, bool]
) -> None:
    """Deferred-event handler: unpack and aggregate one parse."""
    parsed, cache_miss = event
    _record_parse(telemetry, parsed, cache_miss)


class FuzzyParser:
    """Deterministic longest-prefix-match parser over a base trie.

    >>> trie = PrefixTrie(["password", "123qwe"])
    >>> parser = FuzzyParser(trie)
    >>> parse = parser.parse("Password123")
    >>> [seg.base for seg in parse.segments]
    ['password', '123']
    >>> parse.segments[0].capitalized
    True
    >>> parse.structure
    (8, 3)
    """

    def __init__(self, trie: PrefixTrie, allow_capitalization: bool = True,
                 allow_leet: bool = True,
                 allow_reverse: bool = False,
                 allow_allcaps: bool = False,
                 use_compiled: bool = True,
                 parse_cache_size: int = DEFAULT_PARSE_CACHE_SIZE) -> None:
        self._trie = trie
        self._allow_capitalization = allow_capitalization
        self._allow_leet = allow_leet
        self._allow_reverse = allow_reverse
        self._allow_allcaps = allow_allcaps
        self._use_compiled = use_compiled
        # The forward matcher (compiled trie) and the reverse-rule trie
        # are both built lazily: ``__init__`` must stay cheap because a
        # parser is created every time a meter is deserialised, and a
        # reverse-enabled grammar may never parse at all.  The reverse
        # rule (the paper's named future work) matches a password
        # prefix against *reversed* dictionary words; a second trie
        # over the reversed words answers those queries in the same
        # left-to-right pass.  Palindromes are excluded: their reversed
        # reading is indistinguishable from the plain one.
        self._compiled: Optional[CompiledTrie] = None
        self._reversed_trie: Optional[PrefixTrie] = None
        self._reversed_matcher: Optional[
            Union[PrefixTrie, CompiledTrie]
        ] = None
        self._parse_cache: "OrderedDict[str, ParsedPassword]" = OrderedDict()
        self._parse_cache_size = parse_cache_size

    @property
    def trie(self) -> PrefixTrie:
        return self._trie

    @property
    def allow_reverse(self) -> bool:
        return self._allow_reverse

    @property
    def use_compiled(self) -> bool:
        return self._use_compiled

    @property
    def flags(self) -> Dict[str, bool]:
        """Constructor keywords reproducing this parser's behaviour
        (used to rebuild equivalent parsers in worker processes)."""
        return {
            "allow_capitalization": self._allow_capitalization,
            "allow_leet": self._allow_leet,
            "allow_reverse": self._allow_reverse,
            "allow_allcaps": self._allow_allcaps,
            "use_compiled": self._use_compiled,
        }

    def config_key(self) -> Tuple:
        """Hashable identity of the parse behaviour: two parsers with
        equal keys and equal tries produce identical parses, so
        ``(password, config_key)`` fully determines a cached parse."""
        return (
            self._allow_capitalization, self._allow_leet,
            self._allow_reverse, self._allow_allcaps,
        )

    def cache_info(self) -> Dict[str, int]:
        """Occupancy and capacity of the LRU parse cache.

        Hit/miss/evict *counts* live in telemetry
        (``parser.cache.*`` — see DESIGN.md §9); this reports the
        structural side so profile reports can show both.
        """
        return {
            "size": len(self._parse_cache),
            "capacity": self._parse_cache_size,
        }

    # --- lazy matcher construction ------------------------------------

    @property
    def compiled_trie(self) -> Optional[CompiledTrie]:
        """The compiled forward matcher, or None when not (yet) built."""
        return self._compiled

    def ensure_compiled_matchers(
        self,
    ) -> Tuple[CompiledTrie, Optional[CompiledTrie]]:
        """Materialise and return the compiled matchers for broadcast.

        The parallel scoring engine pickles the flat-array
        :class:`CompiledTrie` snapshots into its worker pool **once**
        (pool initializer), instead of letting every worker re-walk a
        pointer trie — rebuilding tries per worker is what made small
        parallel training runs slower than serial (DESIGN.md §7).
        Returns ``(forward, reversed_or_None)``; the reversed matcher is
        built only when the reverse extension is on.  Requires
        ``use_compiled=True`` — the pointer trie is deliberately not
        broadcast.
        """
        if not self._use_compiled:
            raise ValueError(
                "compiled matcher broadcast requires use_compiled=True"
            )
        forward = self._forward_matcher()
        assert isinstance(forward, CompiledTrie)
        reversed_matcher: Optional[CompiledTrie] = None
        if self._allow_reverse:
            matcher = self._reverse_matcher()
            assert isinstance(matcher, CompiledTrie)
            reversed_matcher = matcher
        return forward, reversed_matcher

    @classmethod
    def from_compiled(
        cls,
        forward: CompiledTrie,
        reversed_matcher: Optional[CompiledTrie],
        min_length: int,
        flags: Dict[str, bool],
        parse_cache_size: int = DEFAULT_PARSE_CACHE_SIZE,
    ) -> "FuzzyParser":
        """Rebuild a parser around already-compiled matchers.

        The worker-side half of :meth:`ensure_compiled_matchers`: the
        pool initializer receives the compiled snapshots and ``flags``
        (the :attr:`flags` dict of the parent parser) and reconstructs
        a parser that parses identically without ever touching a
        pointer trie.  The backing :class:`PrefixTrie` is an empty
        husk — only the compiled matchers are consulted.
        """
        parser = cls(
            PrefixTrie(min_length=min_length),
            parse_cache_size=parse_cache_size,
            **flags,
        )
        if not parser._use_compiled:
            raise ValueError(
                "from_compiled requires flags with use_compiled=True"
            )
        parser._compiled = forward
        if flags.get("allow_reverse"):
            if reversed_matcher is None:
                raise ValueError(
                    "allow_reverse parser needs a reversed matcher"
                )
            parser._reversed_matcher = reversed_matcher
        return parser

    @property
    def reversed_trie_built(self) -> bool:
        """True once the reverse-rule trie has been materialised."""
        return self._reversed_matcher is not None

    def _forward_matcher(self) -> Union[PrefixTrie, CompiledTrie]:
        if not self._use_compiled:
            return self._trie
        if self._compiled is None:
            self._compiled = self._trie.compile()
        return self._compiled

    def _reverse_matcher(self) -> Union[PrefixTrie, CompiledTrie]:
        if self._reversed_matcher is None:
            reversed_trie = PrefixTrie(min_length=self._trie.min_length)
            for word in self._trie.iter_words():
                if word != word[::-1]:
                    reversed_trie.insert(word[::-1])
            self._reversed_trie = reversed_trie
            self._reversed_matcher = (
                reversed_trie.compile() if self._use_compiled
                else reversed_trie
            )
        return self._reversed_matcher

    # --- parsing -------------------------------------------------------

    def parse(self, password: str) -> ParsedPassword:
        """Parse ``password`` into base segments (never fails)."""
        parsed = self._parse_segments(password)
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.defer(_record_parse_event, (parsed, False))
        return parsed

    def _parse_segments(self, password: str) -> ParsedPassword:
        """The raw parse loop, free of telemetry probes."""
        segments: List[ParsedSegment] = []
        position = 0
        while position < len(password):
            segment = self._best_dictionary_segment(password, position)
            if segment is None:
                segment = self._fallback_segment(password, position)
            segments.append(segment)
            position += len(segment.base)
        return ParsedPassword(password, tuple(segments))

    def parse_cached(self, password: str) -> ParsedPassword:
        """:meth:`parse` through the bounded LRU parse cache.

        Parses depend only on the (immutable) trie and the parser
        flags, so memoisation is exact; bulk scoring of Zipf-shaped
        password streams hits the cache for the popular head.
        """
        telemetry = obs.get()
        cache = self._parse_cache
        parsed = cache.get(password)
        if parsed is not None:
            cache.move_to_end(password)
            if telemetry.enabled:
                telemetry.incr("parser.cache.hit")
            return parsed
        parsed = self._parse_segments(password)
        if telemetry.enabled:
            telemetry.defer(_record_parse_event, (parsed, True))
        cache[password] = parsed
        if len(cache) > self._parse_cache_size:
            cache.popitem(last=False)
            if telemetry.enabled:
                telemetry.incr("parser.cache.evict")
        return parsed

    def _best_dictionary_segment(self, password: str, position: int
                                 ) -> Optional[ParsedSegment]:
        """Longest match over both reading directions, from ``position``.

        Preference order: longest consumed prefix, then fewest
        transformations (the reverse flag counts as one), then the
        forward reading, then lexicographic base — fully deterministic.
        """
        matcher = self._forward_matcher()
        if isinstance(matcher, CompiledTrie):
            forward = matcher.longest_fuzzy_match(
                password,
                allow_capitalization=self._allow_capitalization,
                allow_leet=self._allow_leet,
                start=position,
            )
        else:
            forward = matcher.longest_fuzzy_match(
                password[position:],
                allow_capitalization=self._allow_capitalization,
                allow_leet=self._allow_leet,
            )
        if forward is not None and not self._allow_reverse \
                and not self._allow_allcaps:
            # Fast path: with the extensions off there is exactly one
            # candidate direction, no ranking needed.
            return ParsedSegment(
                base=forward.base,
                capitalized=forward.capitalized,
                toggled_offsets=forward.toggled_offsets,
                kind=SegmentKind.DICTIONARY,
            )
        remainder = password[position:]
        candidates: List[Tuple[int, int, int, str, ParsedSegment]] = []
        if forward is not None:
            candidates.append((
                -forward.length, forward.transformations, 0,
                forward.base,
                ParsedSegment(
                    base=forward.base,
                    capitalized=forward.capitalized,
                    toggled_offsets=forward.toggled_offsets,
                    kind=SegmentKind.DICTIONARY,
                ),
            ))
        if self._allow_reverse:
            # Capitalization is a first-letter-of-base rule; under
            # reversal it would surface at the segment's end, which
            # users do not do — only exact/leet readings are matched.
            backward = self._reverse_matcher().longest_fuzzy_match(
                remainder,
                allow_capitalization=False,
                allow_leet=self._allow_leet,
            )
            if backward is not None:
                base = backward.base[::-1]
                length = backward.length
                # Leet offsets arrive relative to the observed
                # (reversed) text; map them onto the stored base.
                toggles = tuple(sorted(
                    length - 1 - offset
                    for offset in backward.toggled_offsets
                ))
                candidates.append((
                    -length, backward.transformations + 1, 1, base,
                    ParsedSegment(
                        base=base,
                        capitalized=False,
                        toggled_offsets=toggles,
                        kind=SegmentKind.DICTIONARY,
                        reversed_word=True,
                    ),
                ))
        if self._allow_allcaps:
            allcaps = self._allcaps_candidate(remainder)
            if allcaps is not None:
                candidates.append(allcaps)
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[:4])
        return candidates[0][4]

    def _allcaps_candidate(
        self, remainder: str
    ) -> Optional[Tuple[int, int, int, str, ParsedSegment]]:
        """An all-caps reading: the observed prefix is a stored word
        with every letter upper-cased (limitation-#2 extension).

        Matching runs against the lower-cased text; the candidate only
        stands if the *observed* prefix really is the all-caps surface
        of the matched base (so plain lower-case words never read as
        all-caps, and single-leading-letter words — where all-caps is
        indistinguishable from first-letter capitalization — lose to
        the cheaper first-letter reading via the direction tag).
        """
        match = self._forward_matcher().longest_fuzzy_match(
            remainder.lower(),
            allow_capitalization=False,
            allow_leet=self._allow_leet,
        )
        if match is None:
            return None
        segment = ParsedSegment(
            base=match.base,
            capitalized=False,
            toggled_offsets=match.toggled_offsets,
            kind=SegmentKind.DICTIONARY,
            all_caps=True,
        )
        surface = segment.to_derived().surface()
        observed = remainder[:match.length]
        if surface != observed:
            return None
        # The rule must actually change something (reject pure-digit
        # or already-lower readings, which the exact match covers).
        if observed == match.base:
            return None
        return (
            -match.length, match.transformations + 1, 2, match.base,
            segment,
        )

    def _fallback_segment(self, password: str,
                          position: int) -> ParsedSegment:
        """One maximal L/D/S run, canonicalised for the grammar.

        Only the capitalization of the *first* character is modelled
        (paper limitation #2), so the base form lower-cases just that
        character; no leet decisions are inferred for fallback runs.
        """
        run = first_run(password, position)
        capitalized = run[0].isupper()
        base = run[0].lower() + run[1:] if capitalized else run
        return ParsedSegment(
            base=base,
            capitalized=capitalized,
            toggled_offsets=(),
            kind=SegmentKind.FALLBACK,
        )
