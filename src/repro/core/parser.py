"""Parsing passwords into fuzzy-PCFG derivations (paper Sec. IV-C).

Every password — during training *and* measuring — is parsed by the same
deterministic procedure:

1. From the current position, find the **longest fuzzy prefix match** in
   the base-dictionary trie (exact / capitalized-first-letter / leet
   toggled characters).  The match becomes a dictionary base segment.
2. If no dictionary word matches, fall back to the **traditional PCFG**
   treatment: consume one maximal L/D/S character run as an opaque base
   segment (the paper's ``tyxdqd123 -> B6 B3`` example).
3. Repeat until the password is consumed.

The resulting sequence of segments, each with its capitalization flag
and leet-toggle offsets, is a :class:`~repro.core.grammar.Derivation`
whose probability the grammar can evaluate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.grammar import Derivation, DerivedSegment
from repro.core.trie import PrefixTrie
from repro.util.charclasses import segment_by_class


class SegmentKind(enum.Enum):
    """How a segment was obtained — informational only; the grammar
    pools both kinds into the same ``B_n`` tables (Table IV)."""

    DICTIONARY = "dictionary"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class ParsedSegment:
    """A parsed base segment plus its transformation decisions."""

    base: str
    capitalized: bool
    toggled_offsets: Tuple[int, ...]
    kind: SegmentKind
    reversed_word: bool = False
    all_caps: bool = False

    def to_derived(self) -> DerivedSegment:
        return DerivedSegment(
            self.base, self.capitalized, self.toggled_offsets,
            self.reversed_word, self.all_caps,
        )


@dataclass(frozen=True)
class ParsedPassword:
    """The full parse of one password."""

    password: str
    segments: Tuple[ParsedSegment, ...]

    @property
    def structure(self) -> Tuple[int, ...]:
        return tuple(len(seg.base) for seg in self.segments)

    @property
    def uses_dictionary(self) -> bool:
        """True when at least one segment came from the base dictionary."""
        return any(seg.kind is SegmentKind.DICTIONARY for seg in self.segments)

    @property
    def transformation_count(self) -> int:
        return sum(
            int(seg.capitalized) + len(seg.toggled_offsets)
            + int(seg.reversed_word) + int(seg.all_caps)
            for seg in self.segments
        )

    def to_derivation(self) -> Derivation:
        return Derivation(tuple(seg.to_derived() for seg in self.segments))


class FuzzyParser:
    """Deterministic longest-prefix-match parser over a base trie.

    >>> trie = PrefixTrie(["password", "123qwe"])
    >>> parser = FuzzyParser(trie)
    >>> parse = parser.parse("Password123")
    >>> [seg.base for seg in parse.segments]
    ['password', '123']
    >>> parse.segments[0].capitalized
    True
    >>> parse.structure
    (8, 3)
    """

    def __init__(self, trie: PrefixTrie, allow_capitalization: bool = True,
                 allow_leet: bool = True,
                 allow_reverse: bool = False,
                 allow_allcaps: bool = False) -> None:
        self._trie = trie
        self._allow_capitalization = allow_capitalization
        self._allow_leet = allow_leet
        self._allow_reverse = allow_reverse
        self._allow_allcaps = allow_allcaps
        # The reverse rule (the paper's named future work) matches a
        # password prefix against *reversed* dictionary words; a
        # second trie over the reversed words answers those queries in
        # the same left-to-right pass.  Palindromes are excluded: their
        # reversed reading is indistinguishable from the plain one.
        self._reversed_trie: Optional[PrefixTrie] = None
        if allow_reverse:
            self._reversed_trie = PrefixTrie(
                min_length=trie.min_length
            )
            for word in trie.iter_words():
                if word != word[::-1]:
                    self._reversed_trie.insert(word[::-1])

    @property
    def trie(self) -> PrefixTrie:
        return self._trie

    @property
    def allow_reverse(self) -> bool:
        return self._allow_reverse

    def parse(self, password: str) -> ParsedPassword:
        """Parse ``password`` into base segments (never fails)."""
        segments: List[ParsedSegment] = []
        position = 0
        while position < len(password):
            remainder = password[position:]
            segment = self._best_dictionary_segment(remainder)
            if segment is not None:
                segments.append(segment)
                position += len(segment.base)
            else:
                segments.append(self._fallback_segment(remainder))
                position += len(segments[-1].base)
        return ParsedPassword(password, tuple(segments))

    def _best_dictionary_segment(self, remainder: str
                                 ) -> Optional[ParsedSegment]:
        """Longest match over both reading directions.

        Preference order: longest consumed prefix, then fewest
        transformations (the reverse flag counts as one), then the
        forward reading, then lexicographic base — fully deterministic.
        """
        candidates: List[Tuple[int, int, int, str, ParsedSegment]] = []
        forward = self._trie.longest_fuzzy_match(
            remainder,
            allow_capitalization=self._allow_capitalization,
            allow_leet=self._allow_leet,
        )
        if forward is not None:
            candidates.append((
                -forward.length, forward.transformations, 0,
                forward.base,
                ParsedSegment(
                    base=forward.base,
                    capitalized=forward.capitalized,
                    toggled_offsets=forward.toggled_offsets,
                    kind=SegmentKind.DICTIONARY,
                ),
            ))
        if self._reversed_trie is not None:
            # Capitalization is a first-letter-of-base rule; under
            # reversal it would surface at the segment's end, which
            # users do not do — only exact/leet readings are matched.
            backward = self._reversed_trie.longest_fuzzy_match(
                remainder,
                allow_capitalization=False,
                allow_leet=self._allow_leet,
            )
            if backward is not None:
                base = backward.base[::-1]
                length = backward.length
                # Leet offsets arrive relative to the observed
                # (reversed) text; map them onto the stored base.
                toggles = tuple(sorted(
                    length - 1 - offset
                    for offset in backward.toggled_offsets
                ))
                candidates.append((
                    -length, backward.transformations + 1, 1, base,
                    ParsedSegment(
                        base=base,
                        capitalized=False,
                        toggled_offsets=toggles,
                        kind=SegmentKind.DICTIONARY,
                        reversed_word=True,
                    ),
                ))
        if self._allow_allcaps:
            allcaps = self._allcaps_candidate(remainder)
            if allcaps is not None:
                candidates.append(allcaps)
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[:4])
        return candidates[0][4]

    def _allcaps_candidate(self, remainder: str):
        """An all-caps reading: the observed prefix is a stored word
        with every letter upper-cased (limitation-#2 extension).

        Matching runs against the lower-cased text; the candidate only
        stands if the *observed* prefix really is the all-caps surface
        of the matched base (so plain lower-case words never read as
        all-caps, and single-leading-letter words — where all-caps is
        indistinguishable from first-letter capitalization — lose to
        the cheaper first-letter reading via the direction tag).
        """
        match = self._trie.longest_fuzzy_match(
            remainder.lower(),
            allow_capitalization=False,
            allow_leet=self._allow_leet,
        )
        if match is None:
            return None
        segment = ParsedSegment(
            base=match.base,
            capitalized=False,
            toggled_offsets=match.toggled_offsets,
            kind=SegmentKind.DICTIONARY,
            all_caps=True,
        )
        surface = segment.to_derived().surface()
        observed = remainder[:match.length]
        if surface != observed:
            return None
        # The rule must actually change something (reject pure-digit
        # or already-lower readings, which the exact match covers).
        if observed == match.base:
            return None
        return (
            -match.length, match.transformations + 1, 2, match.base,
            segment,
        )

    def _fallback_segment(self, remainder: str) -> ParsedSegment:
        """One maximal L/D/S run, canonicalised for the grammar.

        Only the capitalization of the *first* character is modelled
        (paper limitation #2), so the base form lower-cases just that
        character; no leet decisions are inferred for fallback runs.
        """
        run = segment_by_class(remainder)[0].text
        capitalized = run[0].isupper()
        base = run[0].lower() + run[1:] if capitalized else run
        return ParsedSegment(
            base=base,
            capitalized=capitalized,
            toggled_offsets=(),
            kind=SegmentKind.FALLBACK,
        )
