"""The fuzzyPSM training phase (paper Sec. IV-C).

Training is a single pass: build the base trie from the base dictionary
``B`` (lower-cased, length >= 3), then parse every password of the
training dictionary ``T`` and accumulate its derivation into the fuzzy
grammar's count tables.  The paper reports ~10 s per million training
passwords; this implementation is linear in total training characters.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.core.grammar import FuzzyGrammar
from repro.core.parser import FuzzyParser
from repro.core.trie import PrefixTrie

#: Training entries may carry a multiplicity, e.g. from a frequency file.
PasswordEntry = Union[str, Tuple[str, int]]


def build_base_trie(base_dictionary: Iterable[str],
                    min_length: int = 3) -> PrefixTrie:
    """Build the basic-password trie from a base dictionary.

    Entries are lower-cased; entries shorter than ``min_length``
    (paper default: 3) are dropped.  Duplicates are harmless.

    >>> trie = build_base_trie(["PassWord", "ab", "123456"])
    >>> "password" in trie, "ab" in trie
    (True, False)
    """
    trie = PrefixTrie(min_length=min_length)
    for password in base_dictionary:
        trie.insert(password.lower())
    return trie


def _iter_entries(passwords: Iterable[PasswordEntry]):
    for entry in passwords:
        if isinstance(entry, str):
            yield entry, 1
        else:
            password, count = entry
            yield password, count


def train_grammar(training_passwords: Iterable[PasswordEntry],
                  trie: PrefixTrie,
                  parser: Optional[FuzzyParser] = None,
                  skip_empty: bool = True) -> FuzzyGrammar:
    """Learn a :class:`FuzzyGrammar` from the training dictionary.

    Args:
        training_passwords: passwords (optionally ``(password, count)``
            pairs) from the sensitive-service leak ``T``.
        trie: the base-dictionary trie from :func:`build_base_trie`.
        parser: override the parser (used by the parsing ablation).
        skip_empty: drop empty strings rather than raising.

    Returns:
        the trained grammar; training is pure counting, so the same
        grammar object also supports the paper's update phase via
        :meth:`FuzzyGrammar.observe`.
    """
    if parser is None:
        parser = FuzzyParser(trie)
    grammar = FuzzyGrammar()
    for password, count in _iter_entries(training_passwords):
        if not password:
            if skip_empty:
                continue
            raise ValueError("cannot train on an empty password")
        parsed = parser.parse(password)
        grammar.observe(parsed.to_derivation(), count)
    return grammar
