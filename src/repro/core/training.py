"""The fuzzyPSM training phase (paper Sec. IV-C).

Training is a single pass: build the base trie from the base dictionary
``B`` (lower-cased, length >= 3), then parse every password of the
training dictionary ``T`` and accumulate its derivation into the fuzzy
grammar's count tables.  The paper reports ~10 s per million training
passwords; this implementation is linear in total training characters.

Because training is pure counting, it parallelises exactly.  Two
engines share one worker pool design:

* :func:`train_grammar` — the in-memory engine: materialise the
  entries, split them into chunks, parse each chunk in a worker
  process, fold the results.
* :func:`train_grammar_streaming` — the out-of-core engine: consume an
  iterator of bounded chunks (see
  :func:`repro.datasets.loaders.stream_corpus_chunks`) through a
  bounded in-flight window, so neither the corpus nor the pool's task
  queue is ever materialised.  Memory stays flat in corpus size.

Workers are initialised **once** per pool with the parent's compiled
flat-array matchers (:meth:`FuzzyParser.ensure_compiled_matchers` →
:meth:`FuzzyParser.from_compiled`), not a rebuilt pointer trie, and
they return compact :class:`~repro.core.deltas.GrammarDelta` records —
interned-index count columns — instead of pickling a full
:class:`FuzzyGrammar` per chunk.  Chunks are aggregated per distinct
password before parsing and parsed through the worker's LRU parse
cache, so a skewed real-world corpus pays one parse per distinct
password per chunk rather than one per occurrence.  Counting commutes
and deltas are applied in submission order, so both engines produce a
grammar whose ``to_dict`` is byte-identical to the serial pass
(``tests/test_training_streaming.py``).
"""

from __future__ import annotations

import itertools
import multiprocessing.pool
import os
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.obs.core import now as _now
from repro.core.deltas import DeltaBuilder, DeltaMerger, GrammarDelta
from repro.core.grammar import FuzzyGrammar
from repro.core.parser import FuzzyParser
from repro.core.shm import SharedScoringSegment, _worker_attach_state, mp_context
from repro.core.trie import PrefixTrie

#: Training entries may carry a multiplicity, e.g. from a frequency file.
PasswordEntry = Union[str, Tuple[str, int]]

#: Corpora smaller than this train serially even when ``jobs > 1``.
#: Worker startup is a fixed cost of high hundreds of milliseconds
#: (process spawn plus the compiled-matcher broadcast) against a
#: ~100 us/password serial parse rate, so the break-even sits in the
#: tens of thousands of entries.  Below the cutoff ``jobs`` degrades to
#: the serial path and emits ``training.parallel.fallback`` so the
#: degradation is visible in telemetry; pass ``parallel_threshold`` to
#: override (tests and tuning).
PARALLEL_MIN_ENTRIES = 50_000

#: In-flight chunks per worker in the streaming engine.  The window
#: keeps every worker busy without letting ``apply_async`` results (or
#: the submitted chunks themselves) pile up unboundedly — this, not
#: ``Pool.imap`` (whose feeder thread slurps the whole iterable into
#: the task queue), is what keeps streamed training memory flat.
STREAM_INFLIGHT_PER_JOB = 4


def _available_cpus() -> int:
    """CPUs the pool could actually use (patchable in tests)."""
    return os.cpu_count() or 1


def _effective_jobs(jobs: int) -> int:
    """Clamp ``jobs`` to the host's CPU count.

    Workers beyond the core count cannot run concurrently — they only
    add process spawn, chunk pickling and delta IPC on top of the same
    serial compute (measured at ~2x total time for ``jobs=2`` on one
    core, BENCH_timing.json ``training_streaming_parallel``).  A clamp
    to one worker routes to the serial engine, which the caller reports
    through the ``training.parallel.fallback`` counter.
    """
    return min(jobs, _available_cpus())


def build_base_trie(base_dictionary: Iterable[str],
                    min_length: int = 3) -> PrefixTrie:
    """Build the basic-password trie from a base dictionary.

    Entries are lower-cased; entries shorter than ``min_length``
    (paper default: 3) are dropped.  Duplicates are harmless.

    >>> trie = build_base_trie(["PassWord", "ab", "123456"])
    >>> "password" in trie, "ab" in trie
    (True, False)
    """
    trie = PrefixTrie(min_length=min_length)
    for password in base_dictionary:
        trie.insert(password.lower())
    return trie


def _iter_entries(
    passwords: Iterable[PasswordEntry],
) -> Iterator[Tuple[str, int]]:
    """Normalise entries to ``(password, count)``, validating counts.

    A non-positive count would silently corrupt every table it touches
    (:class:`~repro.util.freqdist.FrequencyDistribution` drops zeros and
    rejects negatives only per-table), so it is rejected here with the
    offending entry named.
    """
    for entry in passwords:
        if isinstance(entry, str):
            yield entry, 1
        else:
            password, count = entry
            if count <= 0:
                raise ValueError(
                    f"training count for {password!r} must be positive, "
                    f"got {count!r}"
                )
            yield password, count


def _normalise_chunk(chunk: Iterable[PasswordEntry],
                     skip_empty: bool) -> List[Tuple[str, int]]:
    """One chunk's entries, validated and with empties resolved."""
    entries: List[Tuple[str, int]] = []
    for password, count in _iter_entries(chunk):
        if not password:
            if skip_empty:
                continue
            raise ValueError("cannot train on an empty password")
        entries.append((password, count))
    return entries


def _aggregate_chunk(
    chunk: List[Tuple[str, int]]
) -> Dict[str, int]:
    """Sum a chunk's counts per distinct password, first-seen order.

    Dict insertion order is first-seen order and
    ``add(key, n) == n x add(key, 1)``, so observing the aggregate once
    per distinct password yields the same count tables *in the same
    insertion order* as observing every occurrence — while paying one
    parse per distinct password instead of one per occurrence.
    """
    aggregated: Dict[str, int] = {}
    for password, count in chunk:
        aggregated[password] = aggregated.get(password, 0) + count
    return aggregated


#: Per-worker parser and delta builder, created once by the pool
#: initialiser so every chunk mapped to that worker reuses the same
#: compiled matcher, parse cache and intern tables.
_WORKER_PARSER: Optional[FuzzyParser] = None
_WORKER_BUILDER: Optional[DeltaBuilder] = None


def _worker_init(
    words: List[str], min_length: int, flags: Dict[str, bool]
) -> None:
    """Fallback pool initialiser: rebuild the trie locally from words.

    Used only when the parent parser runs with ``use_compiled=False``
    (ablations); the normal path is :func:`_worker_init_compiled`.
    """
    global _WORKER_PARSER, _WORKER_BUILDER
    trie = PrefixTrie(words, min_length=min_length)
    _WORKER_PARSER = FuzzyParser(trie, **flags)
    _WORKER_BUILDER = DeltaBuilder(worker_id=os.getpid())


def _worker_init_shared(segment_name: str) -> None:
    """Pool initialiser: attach the parent's snapshot segment by name.

    The parent compiles its flat-array matchers once
    (:meth:`FuzzyParser.ensure_compiled_matchers`) and publishes them
    into a shared-memory segment (DESIGN.md §16); workers attach
    zero-copy and wrap the mapped tables with
    :meth:`FuzzyParser.from_compiled` without ever touching a pointer
    trie — or a pickle.  Per-process setup cost is therefore flat in
    the base dictionary's size under ``fork`` and ``spawn`` alike.
    """
    global _WORKER_PARSER, _WORKER_BUILDER
    state = _worker_attach_state(segment_name)
    _WORKER_PARSER = state.build_parser()
    _WORKER_BUILDER = DeltaBuilder(worker_id=os.getpid())


def _delta_chunk(chunk: List[Tuple[str, int]]) -> GrammarDelta:
    """Parse one chunk of ``(password, count)`` pairs into a delta.

    The delta carries the worker-side parse seconds home: the parent's
    telemetry backend cannot see into pool processes, so each chunk
    ships its own timing for the ``train.chunk.seconds`` histogram.
    """
    parser = _WORKER_PARSER
    builder = _WORKER_BUILDER
    assert parser is not None and builder is not None, (
        "pool initialiser did not run"
    )
    start = _now()
    for password, count in _aggregate_chunk(chunk).items():
        parsed = parser.parse_cached(password)
        builder.observe(parsed.to_derivation(), count)
    return builder.finish_chunk(_now() - start)


@contextmanager
def _training_pool(
    parser: FuzzyParser, jobs: int
) -> Iterator[multiprocessing.pool.Pool]:
    """The persistent worker pool for ``parser``, with segment lifetime.

    Compiled parsers publish their flat-array matchers into a
    trie-only shared-memory segment (no grammar tables — training
    workers parse, they do not score) and hand every worker just the
    segment name; the segment is unlinked when the pool winds down.
    The ``use_compiled=False`` ablation falls back to shipping the
    word list and rebuilding per worker.  Both paths build the pool
    from :func:`repro.core.shm.mp_context`, so ``REPRO_START_METHOD``
    governs training exactly like scoring and serving.
    """
    if parser.flags.get("use_compiled"):
        forward, reversed_matcher = parser.ensure_compiled_matchers()
        segment = SharedScoringSegment.create(
            epoch=0,
            forward=forward,
            min_length=parser.trie.min_length,
            flags=parser.flags,
            parse_cache_size=parser.cache_info()["capacity"],
            reversed_matcher=reversed_matcher,
        )
        try:
            with mp_context().Pool(
                processes=jobs,
                initializer=_worker_init_shared,
                initargs=(segment.name,),
            ) as pool:
                yield pool
        finally:
            segment.unlink()
        return
    trie = parser.trie
    with mp_context().Pool(
        processes=jobs,
        initializer=_worker_init,
        initargs=(list(trie.iter_words()), trie.min_length, parser.flags),
    ) as pool:
        yield pool


def train_grammar(training_passwords: Iterable[PasswordEntry],
                  trie: PrefixTrie,
                  parser: Optional[FuzzyParser] = None,
                  skip_empty: bool = True,
                  jobs: Optional[int] = None,
                  parallel_threshold: Optional[int] = None) -> FuzzyGrammar:
    """Learn a :class:`FuzzyGrammar` from the training dictionary.

    Args:
        training_passwords: passwords (optionally ``(password, count)``
            pairs) from the sensitive-service leak ``T``.
        trie: the base-dictionary trie from :func:`build_base_trie`.
        parser: override the parser (used by the parsing ablation).
        skip_empty: drop empty strings rather than raising.
        jobs: number of worker processes.  ``None``, ``0`` and ``1``
            train serially; ``N > 1`` chunks the corpus across ``N``
            processes and folds the per-chunk count deltas, which is
            exact (counting commutes — see
            :class:`~repro.core.deltas.DeltaMerger`).  Small corpora
            fall back to the serial path automatically: below
            ``parallel_threshold`` entries the pool's fixed startup
            cost exceeds the entire serial parse time.  ``jobs`` is
            also clamped to the host's CPU count, so a single-core
            host always trains serially (see :func:`_effective_jobs`).
        parallel_threshold: corpus-size cutoff for that fallback
            (default :data:`PARALLEL_MIN_ENTRIES`).

    Returns:
        the trained grammar; training is pure counting, so the same
        grammar object also supports the paper's update phase via
        :meth:`FuzzyGrammar.observe`.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if parser is None:
        parser = FuzzyParser(trie)
    if not jobs or jobs == 1:
        return _train_grammar_serial(
            _iter_entries(training_passwords), parser, skip_empty
        )
    if _effective_jobs(jobs) == 1:
        # Requested workers can't run concurrently on this host; the
        # pool would only add IPC on top of the same serial compute.
        _record_parallel_fallback()
        return _train_grammar_serial(
            _iter_entries(training_passwords), parser, skip_empty
        )
    jobs = _effective_jobs(jobs)
    entries = _normalise_chunk(training_passwords, skip_empty)
    threshold = (
        PARALLEL_MIN_ENTRIES if parallel_threshold is None
        else parallel_threshold
    )
    if len(entries) < threshold:
        _record_parallel_fallback()
        return _train_grammar_serial(iter(entries), parser,
                                     skip_empty=False)
    return _train_grammar_parallel(entries, parser, jobs)


def _record_parallel_fallback() -> None:
    """Emit the counters that make a parallel->serial degrade visible."""
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr("train.fallback.serial")
        telemetry.incr("training.parallel.fallback")


def train_grammar_streaming(
    chunks: Iterable[Iterable[PasswordEntry]],
    trie: PrefixTrie,
    parser: Optional[FuzzyParser] = None,
    skip_empty: bool = True,
    jobs: Optional[int] = None,
    parallel_threshold: Optional[int] = None,
) -> FuzzyGrammar:
    """Learn a grammar from an out-of-core stream of entry chunks.

    The streaming twin of :func:`train_grammar`: ``chunks`` is an
    iterator of bounded batches (typically
    :func:`repro.datasets.loaders.stream_corpus_chunks`), consumed
    exactly once and never materialised, so peak memory is governed by
    the chunk size and the in-flight window rather than the corpus.

    Serial streaming aggregates each chunk per distinct password and
    parses through the LRU cache; parallel streaming feeds the same
    chunks to the delta worker pool through a bounded ``apply_async``
    window and applies deltas in submission order.  Both produce a
    grammar byte-identical (``to_dict``) to :func:`train_grammar` over
    the concatenated entries.

    Parallel runs first buffer chunks until ``parallel_threshold``
    entries have arrived; a stream that ends before reaching it trains
    serially instead (pool startup would dominate) and emits the
    ``training.parallel.fallback`` counter.  ``jobs`` is clamped to
    the host's CPU count the same way as in :func:`train_grammar`.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if parser is None:
        parser = FuzzyParser(trie)
    normalised = (_normalise_chunk(chunk, skip_empty) for chunk in chunks)
    if not jobs or jobs == 1:
        return _train_streaming_serial(normalised, parser)
    if _effective_jobs(jobs) == 1:
        # Single-core host: see :func:`_effective_jobs`.
        _record_parallel_fallback()
        return _train_streaming_serial(normalised, parser)
    jobs = _effective_jobs(jobs)
    threshold = (
        PARALLEL_MIN_ENTRIES if parallel_threshold is None
        else parallel_threshold
    )
    buffered: List[List[Tuple[str, int]]] = []
    total = 0
    iterator = iter(normalised)
    for chunk in iterator:
        buffered.append(chunk)
        total += len(chunk)
        if total >= threshold:
            break
    else:
        # Stream ended below break-even: the pool's startup cost would
        # dominate, so degrade to serial — visibly.
        _record_parallel_fallback()
        return _train_streaming_serial(iter(buffered), parser)
    return _train_streaming_parallel(
        itertools.chain(buffered, iterator), parser, jobs
    )


def _train_grammar_serial(entries: Iterator[Tuple[str, int]],
                          parser: FuzzyParser,
                          skip_empty: bool) -> FuzzyGrammar:
    """One in-process pass over normalised ``(password, count)`` pairs."""
    telemetry = obs.get()
    grammar = FuzzyGrammar()
    trained = 0
    with telemetry.timer("train.serial.seconds"):
        for password, count in entries:
            if not password:
                if skip_empty:
                    continue
                raise ValueError("cannot train on an empty password")
            parsed = parser.parse(password)
            grammar.observe(parsed.to_derivation(), count)
            trained += 1
    if telemetry.enabled:
        telemetry.incr("train.passwords", trained)
    return grammar


def _train_streaming_serial(
    chunks: Iterator[List[Tuple[str, int]]],
    parser: FuzzyParser,
) -> FuzzyGrammar:
    """In-process streamed training: aggregate, parse cached, observe."""
    telemetry = obs.get()
    grammar = FuzzyGrammar()
    trained = 0
    with telemetry.timer("train.stream.seconds"):
        for chunk in chunks:
            trained += len(chunk)
            for password, count in _aggregate_chunk(chunk).items():
                parsed = parser.parse_cached(password)
                grammar.observe(parsed.to_derivation(), count)
    if telemetry.enabled:
        telemetry.incr("train.passwords", trained)
    return grammar


def _train_grammar_parallel(entries: List[Tuple[str, int]],
                            parser: FuzzyParser,
                            jobs: int) -> FuzzyGrammar:
    """Chunk the corpus over the delta pool and fold the deltas."""
    if not entries:
        return FuzzyGrammar()
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr("train.parallel")
        telemetry.incr("train.passwords", len(entries))
    # A few chunks per worker smooths over uneven parse costs without
    # inflating per-chunk messaging overhead.
    chunk_count = min(jobs * 4, len(entries))
    step = -(-len(entries) // chunk_count)
    chunks = [entries[i:i + step] for i in range(0, len(entries), step)]
    grammar = FuzzyGrammar()
    merger = DeltaMerger()
    with telemetry.timer("train.parallel.seconds"):
        with _training_pool(parser, jobs) as pool:
            # Ordered application: chunks preserve stream order, so
            # folding deltas in sequence reproduces the serial
            # grammar's key insertion order too — serialized models
            # are byte-identical, not just dict-equal.
            for delta in pool.imap(_delta_chunk, chunks):
                if telemetry.enabled:
                    telemetry.observe(
                        "train.chunk.seconds", delta.seconds
                    )
                with telemetry.timer("train.merge.seconds"):
                    merger.apply(grammar, delta)
    return grammar


def _train_streaming_parallel(
    chunks: Iterator[List[Tuple[str, int]]],
    parser: FuzzyParser,
    jobs: int,
) -> FuzzyGrammar:
    """Streamed chunks through the delta pool, bounded in-flight window.

    ``Pool.imap`` is deliberately avoided: its feeder thread drains the
    whole input iterable into the task queue, which for an out-of-core
    stream is exactly the materialisation streaming exists to avoid.
    Instead at most ``jobs * STREAM_INFLIGHT_PER_JOB`` chunks are in
    flight; results are popped FIFO, which is submission order, which
    preserves byte-identity of the folded grammar.
    """
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr("train.parallel")
    grammar = FuzzyGrammar()
    merger = DeltaMerger()
    trained = 0
    window: "deque" = deque()
    max_inflight = jobs * STREAM_INFLIGHT_PER_JOB

    def _fold(delta: GrammarDelta) -> None:
        if telemetry.enabled:
            telemetry.observe("train.chunk.seconds", delta.seconds)
        with telemetry.timer("train.merge.seconds"):
            merger.apply(grammar, delta)

    with telemetry.timer("train.parallel.seconds"):
        with _training_pool(parser, jobs) as pool:
            for chunk in chunks:
                if not chunk:
                    continue
                trained += len(chunk)
                window.append(pool.apply_async(_delta_chunk, (chunk,)))
                if len(window) >= max_inflight:
                    _fold(window.popleft().get())
            while window:
                _fold(window.popleft().get())
    if telemetry.enabled:
        telemetry.incr("train.passwords", trained)
    return grammar
