"""The fuzzyPSM training phase (paper Sec. IV-C).

Training is a single pass: build the base trie from the base dictionary
``B`` (lower-cased, length >= 3), then parse every password of the
training dictionary ``T`` and accumulate its derivation into the fuzzy
grammar's count tables.  The paper reports ~10 s per million training
passwords; this implementation is linear in total training characters.

Because training is pure counting, it parallelises exactly:
``train_grammar(..., jobs=N)`` splits the training list into chunks,
parses each chunk in a worker process against its own copy of the trie,
and folds the per-chunk grammars together with
:meth:`FuzzyGrammar.merge`.  Counting commutes, so the merged grammar is
identical (same count tables) to the serial result.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.obs.core import now as _now
from repro.core.grammar import FuzzyGrammar
from repro.core.parser import FuzzyParser
from repro.core.trie import PrefixTrie

#: Training entries may carry a multiplicity, e.g. from a frequency file.
PasswordEntry = Union[str, Tuple[str, int]]

#: Corpora smaller than this train serially even when ``jobs > 1``.
#: Worker startup re-builds (and re-compiles) the base trie in every
#: process, a fixed cost of seconds against a ~100 us/password serial
#: parse rate: BENCH_timing.json records jobs=2 at 7x *slower* than
#: serial for 5k passwords.  The cutoff sits where the chunked parse
#: work plausibly amortises that startup; pass ``parallel_threshold``
#: to :func:`train_grammar` to override it (tests and tuning).
PARALLEL_MIN_ENTRIES = 100_000


def build_base_trie(base_dictionary: Iterable[str],
                    min_length: int = 3) -> PrefixTrie:
    """Build the basic-password trie from a base dictionary.

    Entries are lower-cased; entries shorter than ``min_length``
    (paper default: 3) are dropped.  Duplicates are harmless.

    >>> trie = build_base_trie(["PassWord", "ab", "123456"])
    >>> "password" in trie, "ab" in trie
    (True, False)
    """
    trie = PrefixTrie(min_length=min_length)
    for password in base_dictionary:
        trie.insert(password.lower())
    return trie


def _iter_entries(
    passwords: Iterable[PasswordEntry],
) -> Iterator[Tuple[str, int]]:
    """Normalise entries to ``(password, count)``, validating counts.

    A non-positive count would silently corrupt every table it touches
    (:class:`~repro.util.freqdist.FrequencyDistribution` drops zeros and
    rejects negatives only per-table), so it is rejected here with the
    offending entry named.
    """
    for entry in passwords:
        if isinstance(entry, str):
            yield entry, 1
        else:
            password, count = entry
            if count <= 0:
                raise ValueError(
                    f"training count for {password!r} must be positive, "
                    f"got {count!r}"
                )
            yield password, count


#: Per-worker parser, created once by ``_worker_init`` so every chunk
#: mapped to that worker reuses the same trie and compiled matcher.
_WORKER_PARSER: Optional[FuzzyParser] = None


def _worker_init(
    words: List[str], min_length: int, flags: Dict[str, bool]
) -> None:
    """Process-pool initialiser: rebuild the trie and parser locally.

    Workers receive the sorted word list rather than a pickled pointer
    trie — rebuilding from strings is cheaper than unpickling ~2 Python
    objects per trie node, and the worker compiles its own flat-array
    matcher from it when ``use_compiled`` is set.
    """
    global _WORKER_PARSER
    trie = PrefixTrie(words, min_length=min_length)
    _WORKER_PARSER = FuzzyParser(trie, **flags)


def _parse_chunk(chunk: List[Tuple[str, int]]) -> Tuple[FuzzyGrammar, float]:
    """Parse one chunk of ``(password, count)`` pairs into a grammar.

    Returns the chunk grammar plus the worker-side parse seconds: the
    parent's telemetry backend cannot see into pool processes, so each
    chunk ships its own timing home for the ``train.chunk.seconds``
    histogram.
    """
    parser = _WORKER_PARSER
    assert parser is not None, "_worker_init did not run"
    start = _now()
    grammar = FuzzyGrammar()
    for password, count in chunk:
        parsed = parser.parse(password)
        grammar.observe(parsed.to_derivation(), count)
    return grammar, _now() - start


def train_grammar(training_passwords: Iterable[PasswordEntry],
                  trie: PrefixTrie,
                  parser: Optional[FuzzyParser] = None,
                  skip_empty: bool = True,
                  jobs: Optional[int] = None,
                  parallel_threshold: Optional[int] = None) -> FuzzyGrammar:
    """Learn a :class:`FuzzyGrammar` from the training dictionary.

    Args:
        training_passwords: passwords (optionally ``(password, count)``
            pairs) from the sensitive-service leak ``T``.
        trie: the base-dictionary trie from :func:`build_base_trie`.
        parser: override the parser (used by the parsing ablation).
        skip_empty: drop empty strings rather than raising.
        jobs: number of worker processes.  ``None``, ``0`` and ``1``
            train serially; ``N > 1`` chunks the corpus across ``N``
            processes and merges the per-chunk count tables, which is
            exact (counting commutes — see :meth:`FuzzyGrammar.merge`).
            Small corpora fall back to the serial path automatically:
            below ``parallel_threshold`` entries the pool's fixed
            startup cost exceeds the entire serial parse time.
        parallel_threshold: corpus-size cutoff for that fallback
            (default :data:`PARALLEL_MIN_ENTRIES`).

    Returns:
        the trained grammar; training is pure counting, so the same
        grammar object also supports the paper's update phase via
        :meth:`FuzzyGrammar.observe`.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if parser is None:
        parser = FuzzyParser(trie)
    if not jobs or jobs == 1:
        return _train_grammar_serial(
            _iter_entries(training_passwords), parser, skip_empty
        )
    entries: List[Tuple[str, int]] = []
    for password, count in _iter_entries(training_passwords):
        if not password:
            if skip_empty:
                continue
            raise ValueError("cannot train on an empty password")
        entries.append((password, count))
    threshold = (
        PARALLEL_MIN_ENTRIES if parallel_threshold is None
        else parallel_threshold
    )
    if len(entries) < threshold:
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("train.fallback.serial")
        return _train_grammar_serial(iter(entries), parser,
                                     skip_empty=False)
    return _train_grammar_parallel(entries, parser, jobs)


def _train_grammar_serial(entries: Iterator[Tuple[str, int]],
                          parser: FuzzyParser,
                          skip_empty: bool) -> FuzzyGrammar:
    """One in-process pass over normalised ``(password, count)`` pairs."""
    telemetry = obs.get()
    grammar = FuzzyGrammar()
    trained = 0
    with telemetry.timer("train.serial.seconds"):
        for password, count in entries:
            if not password:
                if skip_empty:
                    continue
                raise ValueError("cannot train on an empty password")
            parsed = parser.parse(password)
            grammar.observe(parsed.to_derivation(), count)
            trained += 1
    if telemetry.enabled:
        telemetry.incr("train.passwords", trained)
    return grammar


def _train_grammar_parallel(entries: List[Tuple[str, int]],
                            parser: FuzzyParser,
                            jobs: int) -> FuzzyGrammar:
    """Chunk the corpus over a process pool and merge the counts."""
    if not entries:
        return FuzzyGrammar()
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr("train.parallel")
        telemetry.incr("train.passwords", len(entries))
    # A few chunks per worker smooths over uneven parse costs without
    # inflating per-chunk pickling overhead.
    chunk_count = min(jobs * 4, len(entries))
    step = -(-len(entries) // chunk_count)
    chunks = [entries[i:i + step] for i in range(0, len(entries), step)]
    trie = parser.trie
    words = list(trie.iter_words())
    with telemetry.timer("train.parallel.seconds"):
        with multiprocessing.Pool(
            processes=jobs,
            initializer=_worker_init,
            initargs=(words, trie.min_length, parser.flags),
        ) as pool:
            grammar = FuzzyGrammar()
            # Ordered merge: chunks preserve stream order, so merging
            # them in sequence reproduces the serial grammar's key
            # insertion order too — serialized models are
            # byte-identical, not just dict-equal.
            for chunk_grammar, chunk_seconds in pool.imap(
                _parse_chunk, chunks
            ):
                if telemetry.enabled:
                    telemetry.observe(
                        "train.chunk.seconds", chunk_seconds
                    )
                with telemetry.timer("train.merge.seconds"):
                    grammar.merge(chunk_grammar)
    return grammar
