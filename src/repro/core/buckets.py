"""Bucketed strength feedback (paper Sec. II-B).

Deployed meters rarely expose raw probabilities; they group values into
a few labelled buckets — ``[weak, medium, strong]`` (Apple) or
``[weak, fair, good, strong]`` (Google, Fig. 1 of the paper).  This
module turns any :class:`~repro.meters.base.Meter` into such a bucketed
meter.

Thresholds can be given directly (as entropy bits) or *calibrated*
against a password corpus so that a chosen fraction of real passwords
lands in each bucket — the data-driven way a service would tune its
registration feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.datasets.corpus import PasswordCorpus
from repro.meters.base import Meter

#: Google's four labels (Fig. 1); the default labelling.
DEFAULT_LABELS: Tuple[str, ...] = ("weak", "fair", "good", "strong")


@dataclass(frozen=True)
class BucketScale:
    """Labels plus the entropy thresholds separating them.

    ``thresholds[i]`` is the minimum entropy (bits) required for
    ``labels[i + 1]``; entropies below ``thresholds[0]`` earn
    ``labels[0]``.  There is exactly one threshold fewer than labels.

    >>> scale = BucketScale(("weak", "strong"), (20.0,))
    >>> scale.label_for(10.0), scale.label_for(25.0)
    ('weak', 'strong')
    """

    labels: Tuple[str, ...]
    thresholds: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.labels) < 2:
            raise ValueError("need at least two labels")
        if len(self.thresholds) != len(self.labels) - 1:
            raise ValueError(
                "need exactly len(labels) - 1 thresholds, got "
                f"{len(self.thresholds)} for {len(self.labels)} labels"
            )
        if list(self.thresholds) != sorted(self.thresholds):
            raise ValueError("thresholds must be ascending")

    def label_for(self, entropy_bits: float) -> str:
        """The bucket label for an entropy value."""
        for index, threshold in enumerate(self.thresholds):
            if entropy_bits < threshold:
                return self.labels[index]
        return self.labels[-1]

    def index_for(self, entropy_bits: float) -> int:
        """0-based bucket index (0 = weakest)."""
        return self.labels.index(self.label_for(entropy_bits))


class BucketedMeter:
    """A meter wrapped with a bucket scale for user-facing feedback.

    >>> from repro.meters.nist import NISTMeter
    >>> meter = BucketedMeter(NISTMeter(),
    ...                       BucketScale(("weak", "strong"), (20.0,)))
    >>> meter.label("abc")
    'weak'
    """

    def __init__(self, meter: Meter, scale: BucketScale) -> None:
        self._meter = meter
        self._scale = scale

    @property
    def meter(self) -> Meter:
        return self._meter

    @property
    def scale(self) -> BucketScale:
        return self._scale

    def label(self, password: str) -> str:
        return self._scale.label_for(self._meter.entropy(password))

    def index(self, password: str) -> int:
        return self._scale.index_for(self._meter.entropy(password))

    def feedback(self, password: str) -> "Feedback":
        """Label plus the raw numbers, for registration UIs."""
        entropy = self._meter.entropy(password)
        return Feedback(
            password=password,
            label=self._scale.label_for(entropy),
            index=self._scale.index_for(entropy),
            entropy_bits=entropy,
            probability=self._meter.probability(password),
        )


@dataclass(frozen=True)
class Feedback:
    """One password's bucketed measurement."""

    password: str
    label: str
    index: int
    entropy_bits: float
    probability: float

    @property
    def accepted(self) -> bool:
        """Convention used by the examples: anything above bucket 0."""
        return self.index > 0


def calibrate_scale(meter: Meter, corpus: PasswordCorpus,
                    labels: Sequence[str] = DEFAULT_LABELS,
                    quantiles: Optional[Sequence[float]] = None
                    ) -> BucketScale:
    """Fit bucket thresholds to a corpus's entropy distribution.

    With the default quantiles the buckets split the corpus evenly:
    e.g. four labels put a quarter of (weighted) real passwords in
    each.  A mandatory meter would then reject the weakest quartile.

    Args:
        meter: the meter to calibrate.
        corpus: passwords representative of the user population.
        labels: bucket names, weakest first.
        quantiles: ascending cut points in (0, 1); defaults to even
            splits (``k/len(labels)``).
    """
    if corpus.total == 0:
        raise ValueError("cannot calibrate on an empty corpus")
    if quantiles is None:
        quantiles = [
            index / len(labels) for index in range(1, len(labels))
        ]
    if len(quantiles) != len(labels) - 1:
        raise ValueError("need exactly len(labels) - 1 quantiles")
    if any(not 0.0 < q < 1.0 for q in quantiles):
        raise ValueError("quantiles must be inside (0, 1)")
    if list(quantiles) != sorted(quantiles):
        raise ValueError("quantiles must be ascending")
    weighted: List[Tuple[float, int]] = [
        (meter.entropy(password), count)
        for password, count in corpus.items()
    ]
    weighted.sort()
    total = corpus.total
    # Collapse to distinct entropies with cumulative mass, ascending.
    distinct: List[Tuple[float, int]] = []
    cumulative = 0
    for entropy, count in weighted:
        cumulative += count
        if distinct and distinct[-1][0] == entropy:  # lint-ok: FPM001 -- collapsing sort-adjacent duplicates: equal keys from the same sort are bitwise-identical, no arithmetic between them
            distinct[-1] = (entropy, cumulative)
        else:
            distinct.append((entropy, cumulative))
    thresholds: List[float] = []
    for quantile in quantiles:
        target = quantile * total
        for index, (entropy, mass) in enumerate(distinct):
            if mass >= target:
                # Passwords *at* the quantile entropy stay in the lower
                # bucket, so the cut sits at the next distinct entropy.
                if index + 1 < len(distinct):
                    thresholds.append(distinct[index + 1][0])
                else:
                    thresholds.append(entropy + 1e-9)
                break
    return BucketScale(tuple(labels), tuple(thresholds))
