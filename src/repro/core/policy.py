"""Password composition policies (paper Sec. II-B).

The paper's formal definition: a password is a string over an alphabet
``Sigma`` (a subset of the 95 printable ASCII characters) with length
between ``Lmin`` and ``Lmax``; the set of passwords an authentication
system accepts is ``Gamma = union of Sigma^l for l in [Lmin, Lmax]``.
Sec. II-B surveys the top-50 sites: ``6 <= len <= 20`` and
``6 <= len <= 16`` are the two most common policies, and services add
composition rules (require a digit, require mixed case, ...).

:class:`PasswordPolicy` captures that definition; it is used by the
registration example, by corpus filtering, and by the synthetic
generator's per-dataset length constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.datasets.corpus import PasswordCorpus
from repro.util.charclasses import PRINTABLE_ASCII

#: Requirement predicates available to policies.
_REQUIREMENT_CHECKS = {
    "lower": lambda pw: any(ch.islower() for ch in pw),
    "upper": lambda pw: any(ch.isupper() for ch in pw),
    "digit": lambda pw: any(ch.isdigit() for ch in pw),
    "symbol": lambda pw: any(not ch.isalnum() for ch in pw),
}


@dataclass(frozen=True)
class PolicyViolation:
    """One reason a password fails a policy."""

    rule: str
    message: str


@dataclass(frozen=True)
class PasswordPolicy:
    """``Gamma`` plus composition requirements.

    Attributes:
        min_length: ``Lmin`` (the paper's survey: 6 is the norm).
        max_length: ``Lmax`` (20 or 16 at most top-50 sites).
        alphabet: allowed characters; defaults to all 95 printable
            ASCII (the paper's cracking-experiment setting).
        required_classes: character classes that must appear, from
            ``{"lower", "upper", "digit", "symbol"}``.

    >>> policy = PasswordPolicy(min_length=6, required_classes=("digit",))
    >>> policy.is_allowed("abc123")
    True
    >>> policy.is_allowed("abcdef")
    False
    """

    min_length: int = 6
    max_length: int = 20
    alphabet: FrozenSet[str] = field(default=PRINTABLE_ASCII)
    required_classes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ValueError("min_length must be positive")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")
        if not self.alphabet:
            raise ValueError("alphabet must be non-empty")
        unknown = set(self.required_classes) - set(_REQUIREMENT_CHECKS)
        if unknown:
            raise ValueError(
                f"unknown required classes: {', '.join(sorted(unknown))}"
            )

    # --- checking -------------------------------------------------------

    def violations(self, password: str) -> List[PolicyViolation]:
        """Every rule the password breaks (empty list = acceptable)."""
        found: List[PolicyViolation] = []
        if len(password) < self.min_length:
            found.append(PolicyViolation(
                "min_length",
                f"shorter than {self.min_length} characters",
            ))
        if len(password) > self.max_length:
            found.append(PolicyViolation(
                "max_length",
                f"longer than {self.max_length} characters",
            ))
        outside = sorted(set(password) - self.alphabet)
        if outside:
            found.append(PolicyViolation(
                "alphabet",
                "characters outside the allowed alphabet: "
                + "".join(outside),
            ))
        for name in self.required_classes:
            if not _REQUIREMENT_CHECKS[name](password):
                found.append(PolicyViolation(
                    f"require_{name}",
                    f"must contain at least one {name} character",
                ))
        return found

    def is_allowed(self, password: str) -> bool:
        """True when the password is in ``Gamma`` and meets every rule."""
        return not self.violations(password)

    # --- corpus-level operations --------------------------------------------

    def filter_corpus(self, corpus: PasswordCorpus,
                      name: Optional[str] = None) -> PasswordCorpus:
        """The sub-corpus of policy-compliant passwords.

        Useful for modelling what a dataset would have looked like
        under a policy (the paper attributes CSDN's length spike at 8
        and Singles.org's cap at 8 to site policies).
        """
        counts = {
            password: count
            for password, count in corpus.items()
            if self.is_allowed(password)
        }
        return PasswordCorpus(
            counts,
            name=name or f"{corpus.name}[{self.describe()}]",
            service=corpus.service,
            location=corpus.location,
            language=corpus.language,
        )

    def compliance_rate(self, corpus: PasswordCorpus) -> float:
        """Weighted fraction of corpus entries the policy accepts."""
        if corpus.total == 0:
            raise ValueError("empty corpus")
        accepted = sum(
            count
            for password, count in corpus.items()
            if self.is_allowed(password)
        )
        return accepted / corpus.total

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``6-20+digit``."""
        text = f"{self.min_length}-{self.max_length}"
        for name in self.required_classes:
            text += f"+{name}"
        return text


#: The two policies the paper's top-50 survey found most common.
COMMON_POLICIES = {
    "6-20": PasswordPolicy(min_length=6, max_length=20),
    "6-16": PasswordPolicy(min_length=6, max_length=16),
    #: The NIST composition-bonus style rule (upper + non-alpha).
    "complex": PasswordPolicy(
        min_length=8, max_length=64,
        required_classes=("upper", "digit"),
    ),
}
