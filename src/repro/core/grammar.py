"""The fuzzy probabilistic context-free grammar (paper Sec. IV-C).

A :class:`FuzzyGrammar` is the learned artefact of the training phase.
It holds four probability tables, mirroring Tables IV-VI of the paper:

* **base structures** — ``S -> B_{n1} B_{n2} ...`` (tuple of segment
  lengths), e.g. ``S -> B8 B1`` for ``p@ssw0rd1``;
* **terminals** — one distribution per segment length ``n`` over the
  strings that filled a ``B_n`` slot in training (basic passwords and
  fallback runs share one table, exactly as in Table IV where ``B1 -> 1``
  and ``B1 -> a`` coexist);
* **capitalization** — a Yes/No distribution for "the first character
  of a base segment was capitalized" (Table V), one factor per segment;
* **leet** — a Yes/No distribution per leet rule ``L1..L6`` (Table VI),
  one factor per stored character that belongs to a leet pair.

The probability of a password is the product of the probabilities of
every rule in its derivation (Fig. 11 of the paper).
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.util.freqdist import FrequencyDistribution
from repro.util.leet import LEET_RULE_NAMES, LEET_BY_LETTER, LEET_BY_SUBSTITUTE

#: A base structure is the tuple of segment lengths, e.g. ``(8, 1)``.
Structure = Tuple[int, ...]

_T = TypeVar("_T", bound=Hashable)


def structure_label(structure: Structure) -> str:
    """Human-readable form of a structure.

    >>> structure_label((8, 1))
    'B8 B1'
    """
    return " ".join(f"B{n}" for n in structure)


def leet_rule_for_char(ch: str) -> Optional[str]:
    """The leet rule (``L1``..``L6``) that ``ch`` participates in, if any.

    Both sides of a pair map to the same rule:

    >>> leet_rule_for_char("o"), leet_rule_for_char("0")
    ('L3', 'L3')
    >>> leet_rule_for_char("x") is None
    True
    """
    if ch in LEET_BY_LETTER:
        letter = ch
    elif ch in LEET_BY_SUBSTITUTE:
        letter = LEET_BY_SUBSTITUTE[ch]
    else:
        return None
    index = "asoiet".index(letter)
    return f"L{index + 1}"


@dataclass(frozen=True)
class DerivedSegment:
    """One ``B_n`` slot of a derivation.

    Attributes:
        base: the stored terminal string filling the slot.
        capitalized: whether the first-letter capitalization rule fired.
        toggled_offsets: offsets into ``base`` where a leet toggle fired.
        reversed_word: whether the reverse rule fired — the paper's
            named future-work transformation ("substring movement and
            reverse are left as future research", Sec. IV-C).  The
            capitalization/leet transformations apply to the base
            first; the resulting string is then reversed.
        all_caps: whether the whole-word capitalization rule fired —
            the paper's limitation #2 extension ("for capitalization,
            it only considers the capitalization of the first
            letter").  Mutually exclusive with ``capitalized``.
    """

    base: str
    capitalized: bool = False
    toggled_offsets: Tuple[int, ...] = ()
    reversed_word: bool = False
    all_caps: bool = False

    @property
    def length(self) -> int:
        return len(self.base)

    def surface(self) -> str:
        """The observable string this segment derives.

        >>> DerivedSegment("p@ssword", True, (5,)).surface()
        'P@ssw0rd'
        >>> DerivedSegment("password", reversed_word=True).surface()
        'drowssap'
        >>> DerivedSegment("pass12", all_caps=True).surface()
        'PASS12'
        """
        if self.capitalized and self.all_caps:
            raise ValueError(
                "capitalized and all_caps are mutually exclusive"
            )
        chars: List[str] = []
        toggled = set(self.toggled_offsets)
        for offset, ch in enumerate(self.base):
            if offset in toggled:
                partner = LEET_BY_LETTER.get(ch) or LEET_BY_SUBSTITUTE.get(ch)
                if partner is None:
                    raise ValueError(
                        f"offset {offset} of {self.base!r} is not leet-able"
                    )
                ch = partner
            if self.all_caps or (offset == 0 and self.capitalized):
                ch = ch.upper()
            chars.append(ch)
        text = "".join(chars)
        return text[::-1] if self.reversed_word else text


@dataclass(frozen=True)
class Derivation:
    """A full derivation ``S -> B_{n1}...B_{nk} -> password``."""

    segments: Tuple[DerivedSegment, ...]

    @property
    def structure(self) -> Structure:
        return tuple(seg.length for seg in self.segments)

    def surface(self) -> str:
        return "".join(seg.surface() for seg in self.segments)


class FuzzyGrammar:
    """Probability tables of the fuzzy PCFG, with incremental updates.

    The grammar is *count-based*: every table stores raw observation
    counts, so the update phase (paper Sec. IV-C) is a constant-time
    increment and probabilities always reflect all data seen so far.
    """

    def __init__(self) -> None:
        #: Mutation counter: bumped by :meth:`observe` and :meth:`merge`
        #: (the two mutation verbs of the training/update lifecycle), so
        #: derived snapshots — the :class:`~repro.core.frozen.FrozenGrammar`
        #: scoring kernel — can detect staleness lazily instead of being
        #: invalidated eagerly on every accepted password.
        self._epoch = 0
        self.structures: FrequencyDistribution[Structure] = FrequencyDistribution()
        self.terminals: Dict[int, FrequencyDistribution[str]] = {}
        self.capitalization: FrequencyDistribution[bool] = FrequencyDistribution()
        self.leet: Dict[str, FrequencyDistribution[bool]] = {
            name: FrequencyDistribution() for name in LEET_RULE_NAMES
        }
        #: Reverse-rule Yes/No counts.  Populated only when a parser
        #: with ``allow_reverse`` trained the grammar; grammars that
        #: never saw the rule treat it as a certainty (factor 1.0) so
        #: the extension is zero-cost when off.
        self.reverse: FrequencyDistribution[bool] = FrequencyDistribution()
        #: All-caps rule Yes/No counts (limitation-#2 extension);
        #: same zero-cost-when-off semantics as ``reverse``.
        self.allcaps: FrequencyDistribution[bool] = FrequencyDistribution()

    # --- observation (training / update) ------------------------------

    @property
    def epoch(self) -> int:
        """Monotone mutation counter (see ``__init__``); snapshots
        taken at epoch ``e`` are exact until the epoch moves past ``e``."""
        return self._epoch

    def observe(self, derivation: Derivation, count: int = 1) -> None:
        """Record one training password's derivation into the tables."""
        self._epoch += 1
        self.structures.add(derivation.structure, count)
        for segment in derivation.segments:
            table = self.terminals.setdefault(
                segment.length, FrequencyDistribution()
            )
            table.add(segment.base, count)
            self.capitalization.add(segment.capitalized, count)
            self.reverse.add(segment.reversed_word, count)
            self.allcaps.add(segment.all_caps, count)
            toggled = set(segment.toggled_offsets)
            for offset, ch in enumerate(segment.base):
                rule = leet_rule_for_char(ch)
                if rule is not None:
                    self.leet[rule].add(offset in toggled, count)

    # --- merging (parallel training) -----------------------------------

    def merge(self, other: "FuzzyGrammar") -> None:
        """Fold another grammar's count tables into this one, in place.

        Because every table stores raw counts and counting commutes,
        ``merge`` is exact: training chunks in parallel and merging the
        per-chunk grammars produces the same grammar as one serial pass
        over the whole corpus.  This is the reduction step of
        ``train_grammar(..., jobs=N)``.
        """
        self._epoch += 1
        self.structures.merge(other.structures)
        for length, table in other.terminals.items():
            own = self.terminals.setdefault(length, FrequencyDistribution())
            own.merge(table)
        self.capitalization.merge(other.capitalization)
        self.reverse.merge(other.reverse)
        self.allcaps.merge(other.allcaps)
        for rule, table in other.leet.items():
            self.leet[rule].merge(table)

    def __eq__(self, other: object) -> bool:
        """True when every count table is identical."""
        if not isinstance(other, FuzzyGrammar):
            return NotImplemented
        return (
            self.structures == other.structures
            and self.terminals == other.terminals
            and self.capitalization == other.capitalization
            and self.reverse == other.reverse
            and self.allcaps == other.allcaps
            and self.leet == other.leet
        )

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # --- probabilities -------------------------------------------------

    def structure_probability(self, structure: Structure) -> float:
        return self.structures.probability(structure)

    def terminal_probability(self, base: str) -> float:
        table = self.terminals.get(len(base))
        if table is None:
            return 0.0
        return table.probability(base)

    def capitalization_probability(self, capitalized: bool) -> float:
        return self.capitalization.probability(capitalized)

    def leet_probability(self, rule: str, fired: bool) -> float:
        if rule not in self.leet:
            raise KeyError(f"unknown leet rule {rule!r}")
        return self.leet[rule].probability(fired)

    def reverse_probability(self, reversed_word: bool) -> float:
        """Reverse-rule factor; a never-trained table is a no-op
        (1.0 for No, 0.0 for Yes) so legacy grammars are unchanged."""
        if self.reverse.total == 0:
            return 0.0 if reversed_word else 1.0
        return self.reverse.probability(reversed_word)

    def allcaps_probability(self, all_caps: bool) -> float:
        """All-caps factor; same no-op semantics for legacy grammars."""
        if self.allcaps.total == 0:
            return 0.0 if all_caps else 1.0
        return self.allcaps.probability(all_caps)

    def segment_probability(self, segment: DerivedSegment) -> float:
        """Terminal x capitalization x reverse x per-char leet factors."""
        probability = self.terminal_probability(segment.base)
        if probability == 0.0:
            return 0.0
        probability *= self.capitalization_probability(segment.capitalized)
        probability *= self.reverse_probability(segment.reversed_word)
        probability *= self.allcaps_probability(segment.all_caps)
        toggled = set(segment.toggled_offsets)
        for offset, ch in enumerate(segment.base):
            rule = leet_rule_for_char(ch)
            if rule is not None:
                probability *= self.leet_probability(rule, offset in toggled)
        return probability

    def derivation_probability(self, derivation: Derivation) -> float:
        """Product of all rule probabilities of the derivation (Fig. 11)."""
        probability = self.structure_probability(derivation.structure)
        for segment in derivation.segments:
            if probability == 0.0:
                return 0.0
            probability *= self.segment_probability(segment)
        return probability

    # --- introspection ---------------------------------------------------

    @property
    def total_passwords(self) -> int:
        """Number of (weighted) training passwords observed."""
        return self.structures.total

    def known_lengths(self) -> List[int]:
        return sorted(self.terminals)

    def rule_table(self) -> List[Tuple[str, str, float]]:
        """Flat ``(lhs, rhs, probability)`` view, as in Tables IV-VI."""
        rows: List[Tuple[str, str, float]] = []
        for structure, count in self.structures.most_common():
            rows.append(
                ("S", structure_label(structure), count / self.structures.total)
            )
        for length in self.known_lengths():
            table = self.terminals[length]
            for base, count in table.most_common():
                rows.append((f"B{length}", base, count / table.total))
        if self.capitalization.total:
            for fired in (True, False):
                rows.append(
                    (
                        "Capitalize",
                        "Yes" if fired else "No",
                        self.capitalization.probability(fired),
                    )
                )
        for rule in LEET_RULE_NAMES:
            table = self.leet[rule]
            if table.total:
                for fired in (True, False):
                    rows.append(
                        (rule, "Yes" if fired else "No", table.probability(fired))
                    )
        # The reverse extension only surfaces when it actually fired,
        # keeping the default tables identical to the paper's IV-VI.
        if self.reverse.count(True):
            for fired in (True, False):
                rows.append(
                    (
                        "Reverse",
                        "Yes" if fired else "No",
                        self.reverse.probability(fired),
                    )
                )
        if self.allcaps.count(True):
            for fired in (True, False):
                rows.append(
                    (
                        "AllCaps",
                        "Yes" if fired else "No",
                        self.allcaps.probability(fired),
                    )
                )
        return rows

    # --- sampling ---------------------------------------------------------

    def sample(self, rng: random.Random) -> Tuple[str, float]:
        """Draw one password from the grammar's distribution.

        Returns ``(password, probability)``; used by the Monte-Carlo
        guess-number estimator (Dell'Amico & Filippone, CCS'15).
        ``rng`` is a :class:`random.Random`.
        """
        derivation, probability = self.sample_derivation(rng)
        return derivation.surface(), probability

    def sample_derivation(
        self, rng: random.Random
    ) -> Tuple[Derivation, float]:
        """Draw one full derivation (not just its surface string).

        Exposing the derivation lets callers check whether the sample is
        *canonical* — i.e. whether the deterministic measuring parse of
        the surface reproduces exactly this derivation — which the
        meter's rejection sampler needs (see :meth:`FuzzyPSM.sample`).
        """
        if self.structures.total == 0:
            raise ValueError("cannot sample from an untrained grammar")
        structure = _sample_freqdist(self.structures, rng)
        segments: List[DerivedSegment] = []
        for length in structure:
            base = _sample_freqdist(self.terminals[length], rng)
            capitalized = (
                rng.random() < self.capitalization_probability(True)
            )
            reversed_word = (
                rng.random() < self.reverse_probability(True)
            )
            all_caps = (
                not capitalized
                and rng.random() < self.allcaps_probability(True)
            )
            toggles: List[int] = []
            for offset, ch in enumerate(base):
                rule = leet_rule_for_char(ch)
                if rule is not None and rng.random() < self.leet_probability(
                    rule, True
                ):
                    toggles.append(offset)
            segments.append(
                DerivedSegment(base, capitalized, tuple(toggles),
                               reversed_word, all_caps)
            )
        derivation = Derivation(tuple(segments))
        return derivation, self.derivation_probability(derivation)

    # --- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of every count table."""
        return {
            "structures": [
                [list(structure), count]
                for structure, count in self.structures.items()
            ],
            "terminals": {
                str(length): dict(table.items())
                for length, table in self.terminals.items()
            },
            "capitalization": {
                "yes": self.capitalization.count(True),
                "no": self.capitalization.count(False),
            },
            "reverse": {
                "yes": self.reverse.count(True),
                "no": self.reverse.count(False),
            },
            "allcaps": {
                "yes": self.allcaps.count(True),
                "no": self.allcaps.count(False),
            },
            "leet": {
                rule: {
                    "yes": table.count(True),
                    "no": table.count(False),
                }
                for rule, table in self.leet.items()
            },
        }

    def to_arrays(self) -> Dict[str, Any]:
        """Flat-column snapshot of every count table.

        The array-backed twin of :meth:`to_dict`, shaped for the binary
        model format in :mod:`repro.persistence`: integer columns are
        ``array('q')`` (written to disk verbatim and mmap-read back
        without parsing), strings are one concatenated blob plus a
        per-word character-length column.  Column order is table
        insertion order, so ``from_arrays(to_arrays())`` reproduces a
        grammar whose :meth:`to_dict` is byte-identical.

        Terminals are emitted grouped by length table; rebuilding via
        ``setdefault(len(word))`` recreates both the length-table
        insertion order and each table's internal order, because a
        table's key *is* its words' shared length.
        """
        structure_symbols = array("q")
        structure_lens = array("q")
        structure_counts = array("q")
        for structure, count in self.structures.items():
            structure_symbols.extend(structure)
            structure_lens.append(len(structure))
            structure_counts.append(count)
        terminal_parts: List[str] = []
        terminal_lens = array("q")
        terminal_counts = array("q")
        for table in self.terminals.values():
            for word, count in table.items():
                terminal_parts.append(word)
                terminal_lens.append(len(word))
                terminal_counts.append(count)
        booleans = array("q", (
            self.capitalization.count(True),
            self.capitalization.count(False),
            self.reverse.count(True),
            self.reverse.count(False),
            self.allcaps.count(True),
            self.allcaps.count(False),
        ))
        leet = array("q")
        for name in LEET_RULE_NAMES:
            table = self.leet[name]
            leet.append(table.count(True))
            leet.append(table.count(False))
        return {
            "structure_symbols": structure_symbols,
            "structure_lens": structure_lens,
            "structure_counts": structure_counts,
            "terminal_blob": "".join(terminal_parts),
            "terminal_lens": terminal_lens,
            "terminal_counts": terminal_counts,
            "booleans": booleans,
            "leet": leet,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, Any]) -> "FuzzyGrammar":
        """Rebuild a grammar from :meth:`to_arrays` columns.

        The fast deserialisation path: tables are bulk-built with
        :meth:`FrequencyDistribution.from_counts` instead of per-item
        :meth:`~FrequencyDistribution.add` calls, which is what makes
        binary model loads of RockYou-scale grammars cheap.
        """
        grammar = cls()
        structure_pairs: List[Tuple[Structure, int]] = []
        offset = 0
        symbols = arrays["structure_symbols"]
        for length, count in zip(
            arrays["structure_lens"], arrays["structure_counts"]
        ):
            structure_pairs.append(
                (tuple(symbols[offset:offset + length]), count)
            )
            offset += length
        grammar.structures = FrequencyDistribution.from_counts(
            structure_pairs
        )
        tables: Dict[int, List[Tuple[str, int]]] = {}
        blob = arrays["terminal_blob"]
        offset = 0
        for length, count in zip(
            arrays["terminal_lens"], arrays["terminal_counts"]
        ):
            word = blob[offset:offset + length]
            offset += length
            tables.setdefault(length, []).append((word, count))
        grammar.terminals = {
            length: FrequencyDistribution.from_counts(pairs)
            for length, pairs in tables.items()
        }
        booleans = arrays["booleans"]
        grammar.capitalization.add(True, booleans[0])
        grammar.capitalization.add(False, booleans[1])
        grammar.reverse.add(True, booleans[2])
        grammar.reverse.add(False, booleans[3])
        grammar.allcaps.add(True, booleans[4])
        grammar.allcaps.add(False, booleans[5])
        leet = arrays["leet"]
        for index, name in enumerate(LEET_RULE_NAMES):
            grammar.leet[name].add(True, leet[2 * index])
            grammar.leet[name].add(False, leet[2 * index + 1])
        return grammar

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzyGrammar":
        grammar = cls()
        for structure, count in data["structures"]:
            grammar.structures.add(tuple(structure), count)
        for length, table in data["terminals"].items():
            dist = grammar.terminals.setdefault(
                int(length), FrequencyDistribution()
            )
            for base, count in table.items():
                dist.add(base, count)
        grammar.capitalization.add(True, data["capitalization"]["yes"])
        grammar.capitalization.add(False, data["capitalization"]["no"])
        # "reverse" is absent from documents written before the
        # reverse-rule extension; an empty table reproduces the old
        # behaviour exactly (see reverse_probability).
        reverse = data.get("reverse", {"yes": 0, "no": 0})
        grammar.reverse.add(True, reverse["yes"])
        grammar.reverse.add(False, reverse["no"])
        allcaps = data.get("allcaps", {"yes": 0, "no": 0})
        grammar.allcaps.add(True, allcaps["yes"])
        grammar.allcaps.add(False, allcaps["no"])
        for rule, counts in data["leet"].items():
            grammar.leet[rule].add(True, counts["yes"])
            grammar.leet[rule].add(False, counts["no"])
        return grammar


def _sample_freqdist(
    dist: "FrequencyDistribution[_T]", rng: random.Random
) -> _T:
    """Draw one item from a frequency distribution by its counts."""
    target = rng.random() * dist.total
    cumulative = 0
    item: Optional[_T] = None
    for item, count in dist.items():
        cumulative += count
        if cumulative > target:
            return item
    if item is None:
        raise ValueError("cannot sample from an empty distribution")
    return item  # numeric edge: fall through to the last item
