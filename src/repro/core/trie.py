"""Prefix trie over the base dictionary, with fuzzy longest-prefix match.

fuzzyPSM lower-cases every password from the base dictionary ``B``,
drops entries shorter than three characters and inserts the rest into a
trie (paper Sec. IV-C).  Training passwords are then parsed against the
trie by *longest prefix match*, where a password character may match a
stored character either

* exactly,
* through **capitalization** of the first character of the segment
  (``P`` matches stored ``p`` at segment offset 0), or
* through one of the six **leet** toggles of Table VI, applied
  per-character in either direction (``0`` matches stored ``o``;
  ``o`` matches stored ``0``).

The per-character, bidirectional toggle semantics reproduce the worked
derivation of ``p@ssw0rd1`` in the paper (Fig. 11), where every stored
character that belongs to a leet pair contributes one Yes/No factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.leet import LEET_BY_LETTER, LEET_BY_SUBSTITUTE

#: Map from an *observed* character to the (rule-relevant) stored
#: character it may have been toggled from, e.g. ``"0" -> "o"`` and
#: ``"o" -> "0"``.  Both directions exist because base passwords may
#: themselves contain substitute characters (``p@ssword`` in Table IV).
_TOGGLE: Dict[str, str] = {}
_TOGGLE.update(LEET_BY_LETTER)        # letter observed -> substitute stored
_TOGGLE.update(LEET_BY_SUBSTITUTE)    # substitute observed -> letter stored


def toggle_partner(ch: str) -> Optional[str]:
    """The other side of ``ch``'s leet pair, or ``None``.

    >>> toggle_partner("o")
    '0'
    >>> toggle_partner("0")
    'o'
    >>> toggle_partner("x") is None
    True
    """
    return _TOGGLE.get(ch)


@dataclass(frozen=True)
class FuzzyMatch:
    """One way a password prefix matches a stored base password.

    Attributes:
        base: the stored (dictionary) form that was matched.
        length: number of password characters consumed (== ``len(base)``).
        capitalized: True when the first character matched through the
            capitalization rule.
        toggled_offsets: offsets (into ``base``) where a leet toggle
            fired, i.e. the observed character is the leet partner of
            the stored character.
        transformations: total number of transformation operations.
    """

    base: str
    length: int
    capitalized: bool
    toggled_offsets: Tuple[int, ...]

    @property
    def transformations(self) -> int:
        return int(self.capitalized) + len(self.toggled_offsets)


class _Node:
    """A trie node; ``terminal`` marks the end of a stored word."""

    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: Dict[str, _Node] = {}
        self.terminal = False


class PrefixTrie:
    """Stores base-dictionary words and answers fuzzy prefix queries.

    >>> trie = PrefixTrie(["password", "p@ssword", "123qwe"])
    >>> "password" in trie
    True
    >>> match = trie.longest_fuzzy_match("P@ssw0rd123")
    >>> match.base, match.capitalized
    ('p@ssword', True)
    """

    def __init__(self, words: Optional[List[str]] = None,
                 min_length: int = 3) -> None:
        if min_length < 1:
            raise ValueError("min_length must be positive")
        self._root = _Node()
        self._min_length = min_length
        self._size = 0
        if words:
            for word in words:
                self.insert(word)

    @property
    def min_length(self) -> int:
        return self._min_length

    def __len__(self) -> int:
        """Number of stored words."""
        return self._size

    def insert(self, word: str) -> bool:
        """Insert a word verbatim; returns False if too short or present.

        Callers are expected to lower-case base passwords before
        insertion (see :func:`repro.core.training.build_base_trie`).
        """
        if len(word) < self._min_length:
            return False
        node = self._root
        for ch in word:
            node = node.children.setdefault(ch, _Node())
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        return True

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, str):
            return False
        node = self._find(word)
        return node is not None and node.terminal

    def _find(self, word: str) -> Optional[_Node]:
        node = self._root
        for ch in word:
            node = node.children.get(ch)
            if node is None:
                return None
        return node

    def iter_words(self) -> Iterator[str]:
        """Yield every stored word in lexicographic order."""

        def walk(node: _Node, prefix: str) -> Iterator[str]:
            if node.terminal:
                yield prefix
            for ch in sorted(node.children):
                yield from walk(node.children[ch], prefix + ch)

        yield from walk(self._root, "")

    def compile(self) -> "CompiledTrie":
        """Freeze this trie into a :class:`CompiledTrie`.

        The compiled form answers the same queries from contiguous
        arrays (no per-node Python objects) and is what the parser's
        hot path uses.  It is a snapshot: words inserted afterwards do
        not appear in it.

        Compilation cost lands in the ``trie.compile.seconds``
        telemetry histogram (one observation per snapshot), so a
        profile can separate matcher build time from parse time.
        """
        from repro import obs
        from repro.core.compiled_trie import CompiledTrie

        with obs.get().timer("trie.compile.seconds"):
            return CompiledTrie(self._root, self._min_length, self._size)

    # --- exact prefix matching ---------------------------------------

    def longest_exact_prefix(self, text: str) -> Optional[str]:
        """Longest stored word that is a verbatim prefix of ``text``."""
        node = self._root
        best: Optional[str] = None
        for i, ch in enumerate(text):
            node = node.children.get(ch)
            if node is None:
                break
            if node.terminal:
                best = text[: i + 1]
        return best

    # --- fuzzy prefix matching ----------------------------------------

    def fuzzy_matches(self, text: str, allow_capitalization: bool = True,
                      allow_leet: bool = True) -> List[FuzzyMatch]:
        """All stored words matching a prefix of ``text`` under the rules.

        The search explores every per-character alternative (exact,
        capitalization at offset 0, leet toggle), so all candidate
        matches are found; branching is bounded by 2 per character.
        """
        matches: List[FuzzyMatch] = []
        # Depth-first over (node, offset, base-so-far, cap, toggles).
        stack: List[Tuple[_Node, int, str, bool, Tuple[int, ...]]] = [
            (self._root, 0, "", False, ())
        ]
        while stack:
            node, offset, base, capitalized, toggles = stack.pop()
            if node.terminal:
                matches.append(
                    FuzzyMatch(base, offset, capitalized, toggles)
                )
            if offset >= len(text):
                continue
            observed = text[offset]
            # Exact character match.
            child = node.children.get(observed)
            if child is not None:
                stack.append(
                    (child, offset + 1, base + observed, capitalized, toggles)
                )
            # Capitalization of the first character of the segment.
            if allow_capitalization and offset == 0 and observed.isupper():
                lowered = observed.lower()
                child = node.children.get(lowered)
                if child is not None:
                    stack.append(
                        (child, offset + 1, base + lowered, True, toggles)
                    )
            # Leet toggle: observed char is the partner of the stored one.
            if allow_leet:
                partner = toggle_partner(observed)
                if partner is not None:
                    child = node.children.get(partner)
                    if child is not None:
                        stack.append(
                            (
                                child,
                                offset + 1,
                                base + partner,
                                capitalized,
                                toggles + (offset,),
                            )
                        )
        return matches

    def longest_fuzzy_match(self, text: str,
                            allow_capitalization: bool = True,
                            allow_leet: bool = True) -> Optional[FuzzyMatch]:
        """The preferred match: longest, then fewest transformations.

        Ties after both criteria are broken lexicographically on the
        base word so that parsing is fully deterministic.
        """
        matches = self.fuzzy_matches(
            text,
            allow_capitalization=allow_capitalization,
            allow_leet=allow_leet,
        )
        if not matches:
            return None
        return min(
            matches, key=lambda m: (-m.length, m.transformations, m.base)
        )
