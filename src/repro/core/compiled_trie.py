"""Array-backed compiled form of the base-dictionary trie.

:class:`~repro.core.trie.PrefixTrie` stores one Python object per trie
node (a dict of children plus a terminal flag).  That layout is ideal
for incremental construction but costly to hold and query at scale:
every node is a heap object with its own hash table, and the fuzzy
search pushes per-branch state through an explicit DFS stack.

:class:`CompiledTrie` freezes a finished trie into flat buffers
(a CSR-style sorted-edge-span layout):

* ``edge_starts[i] .. edge_starts[i+1]`` — the edge span of node ``i``
  (an ``array('l')`` of span boundaries);
* ``edge_chars`` — one ``str`` holding every edge character, grouped
  per node and sorted within each span;
* ``edge_children`` — an ``array('l')`` of child node ids, parallel to
  ``edge_chars``;
* ``parents`` / ``parent_chars`` — for each node, its parent id and
  the character on the incoming edge, so a matched node's stored word
  is reconstructed in one upward walk instead of being accumulated
  (and reallocated) on every live search state;
* ``terminal`` — a ``bytes`` flagging end-of-word nodes;
* ``transitions`` — one flat hash index mapping the packed integer
  ``(node << _CHAR_BITS) | ord(char)`` to the child node id, derived
  from the CSR arrays.  This single dict replaces the per-node child
  dicts of the pointer trie in the matching hot path.

Nodes are numbered in breadth-first order with children sorted by edge
character, which makes the layout deterministic for a given word set.
There are **no per-node Python objects**: a million-word dictionary
compiles to a handful of flat buffers plus one shared index, which
also makes the compiled trie cheap to pickle into ``multiprocessing``
workers.

``longest_fuzzy_match`` is non-recursive: it sweeps the password left
to right, carrying a frontier of live trie states.  Each observed
character expands a state into at most three successors (exact match,
first-letter capitalization, leet toggle), exactly mirroring the
pointer trie's branching rules, and terminal states are harvested per
level so the preference order (longest, then fewest transformations,
then lexicographic base) is identical to
:meth:`PrefixTrie.longest_fuzzy_match`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.trie import FuzzyMatch, _Node, _TOGGLE

#: Upper bound on bits reserved for the character ordinal in a packed
#: transition key; 21 bits cover the full Unicode range (max code point
#: 0x10FFFF).  The actual shift is sized to the trie's edge alphabet at
#: compile time: an ASCII dictionary needs only 7 bits, which keeps the
#: packed keys below CPython's 30-bit "single digit" integer threshold
#: even for multi-million-node tries, so hot-path key arithmetic never
#: allocates big ints.
_MAX_CHAR_BITS = 21

#: Observed character -> ordinal of the stored character its leet
#: toggle may have come from (both directions, like ``_TOGGLE``).
_TOGGLE_ORD: Dict[str, int] = {ch: ord(p) for ch, p in _TOGGLE.items()}


class CompiledTrie:
    """Immutable, flat-array trie answering the same queries as
    :class:`~repro.core.trie.PrefixTrie`.

    Build one with :meth:`PrefixTrie.compile`:

    >>> from repro.core.trie import PrefixTrie
    >>> compiled = PrefixTrie(["password", "p@ssword", "123qwe"]).compile()
    >>> "password" in compiled
    True
    >>> match = compiled.longest_fuzzy_match("P@ssw0rd123")
    >>> match.base, match.capitalized
    ('p@ssword', True)
    """

    __slots__ = (
        "_edge_starts", "_edge_chars", "_edge_children", "_parents",
        "_parent_chars", "_terminal", "_transitions", "_shift",
        "_ord_bound", "_toggle_ord", "_min_length", "_size",
    )

    # Flat buffers are ``array``s when compiled in-process and zero-copy
    # ``memoryview`` casts when attached from a shared-memory segment
    # (:meth:`from_arrays`); every consumer indexes them, so the common
    # ``Sequence`` surface is all that is relied on.
    _edge_starts: Sequence[int]
    _edge_chars: str
    _edge_children: Sequence[int]
    _parents: Sequence[int]
    _parent_chars: str
    _terminal: Sequence[int]
    _transitions: Dict[int, int]
    _shift: int
    _ord_bound: int
    _toggle_ord: Dict[str, int]
    _min_length: int
    _size: int

    def __init__(self, root: _Node, min_length: int, size: int) -> None:
        """Flatten a pointer-trie ``root`` (a ``trie._Node``).

        Prefer :meth:`PrefixTrie.compile` over calling this directly.
        """
        edge_starts = array("l", [0])
        edge_chars: List[str] = []
        edge_children = array("l")
        parents = array("l", [0])
        parent_chars: List[str] = ["\0"]  # placeholder for the root
        terminal = bytearray()
        # Breadth-first numbering: node i's edges are appended while
        # processing position i of ``nodes``, so spans are contiguous.
        nodes = [root]
        index = 0
        while index < len(nodes):
            node = nodes[index]
            terminal.append(1 if node.terminal else 0)
            for ch in sorted(node.children):
                edge_chars.append(ch)
                edge_children.append(len(nodes))
                parents.append(index)
                parent_chars.append(ch)
                nodes.append(node.children[ch])
            edge_starts.append(len(edge_children))
            index += 1
        # Size the shift to the edge alphabet (see _MAX_CHAR_BITS); any
        # observed character with ordinal >= _ord_bound cannot label an
        # edge, and callers must treat it as a miss *before* packing a
        # key, because smaller shifts make out-of-range ordinals alias
        # other nodes' keys.
        max_ord = max(map(ord, edge_chars), default=0)
        shift = min(max(max_ord.bit_length(), 1), _MAX_CHAR_BITS)
        transitions: Dict[int, int] = {}
        for parent, ch, child in zip(parents[1:], edge_chars,
                                     edge_children):
            transitions[(parent << shift) | ord(ch)] = child
        self._edge_starts = edge_starts
        self._edge_chars = "".join(edge_chars)
        self._edge_children = edge_children
        self._parents = parents
        self._parent_chars = "".join(parent_chars)
        self._terminal = bytes(terminal)
        self._transitions = transitions
        self._shift = shift
        self._ord_bound = 1 << shift
        # Toggle partners whose ordinal fits the packed layout; others
        # cannot label an edge, so dropping them here lets the matcher
        # skip per-state bound checks on the leet branch.
        self._toggle_ord = {
            ch: code for ch, code in _TOGGLE_ORD.items()
            if code < self._ord_bound
        }
        self._min_length = min_length
        self._size = size
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("trie.compiled")
            telemetry.observe("trie.compiled.nodes", float(len(terminal)))

    # --- flat-column export / attach ----------------------------------

    def to_arrays(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """``(meta, sections)`` flat columns for the snapshot plane.

        Every buffer becomes a section the shared-memory segment
        (:mod:`repro.core.shm`) can store behind its directory: the CSR
        arrays and the packed transition index as ``int64`` columns
        (keys and values in insertion order, so ``dict(zip(...))``
        rebuilds the identical dict), the character tables as UTF-8
        blobs, and the terminal flags as raw bytes.  ``meta`` carries
        the scalars (``shift``, ``min_length``, ``size``).
        """
        transitions = self._transitions
        sections: Dict[str, Any] = {
            "edge_starts": array("q", self._edge_starts),
            "edge_chars": self._edge_chars,
            "edge_children": array("q", self._edge_children),
            "parents": array("q", self._parents),
            "parent_chars": self._parent_chars,
            "terminal": bytes(self._terminal),
            "transition_keys": array("q", transitions.keys()),
            "transition_values": array("q", transitions.values()),
        }
        meta = {
            "shift": self._shift,
            "min_length": self._min_length,
            "size": self._size,
        }
        return meta, sections

    @classmethod
    def from_arrays(
        cls, meta: Dict[str, Any], sections: Dict[str, Any]
    ) -> "CompiledTrie":
        """Rebuild a compiled trie from :meth:`to_arrays` columns.

        The attach half of the snapshot plane: numeric columns are
        adopted by reference (typically zero-copy ``memoryview('q')``
        casts into a shared segment), so no per-node Python objects are
        ever built.  The only per-entry work is ``dict(zip(...))`` over
        the stored transition columns — C-speed, and the dict it builds
        is identical (same pairs, same insertion order) to the one
        :meth:`__init__` derives, so matching behaviour is bit-for-bit
        the same.
        """
        self = cls.__new__(cls)
        self._edge_starts = sections["edge_starts"]
        self._edge_chars = sections["edge_chars"]
        self._edge_children = sections["edge_children"]
        self._parents = sections["parents"]
        self._parent_chars = sections["parent_chars"]
        self._terminal = sections["terminal"]
        self._transitions = dict(
            zip(sections["transition_keys"], sections["transition_values"])
        )
        shift = int(meta["shift"])
        self._shift = shift
        self._ord_bound = 1 << shift
        self._toggle_ord = {
            ch: code for ch, code in _TOGGLE_ORD.items()
            if code < self._ord_bound
        }
        self._min_length = int(meta["min_length"])
        self._size = int(meta["size"])
        telemetry = obs.get()
        if telemetry.enabled:
            telemetry.incr("trie.attached")
        return self

    # --- basic queries ------------------------------------------------

    @property
    def min_length(self) -> int:
        return self._min_length

    @property
    def node_count(self) -> int:
        """Number of trie nodes in the compiled layout."""
        return len(self._terminal)

    def __len__(self) -> int:
        """Number of stored words."""
        return self._size

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, str):
            return False
        transitions = self._transitions
        shift = self._shift
        bound = self._ord_bound
        node = 0
        for ch in word:
            code = ord(ch)
            if code >= bound:
                return False
            node = transitions.get((node << shift) | code)
            if node is None:
                return False
        return bool(self._terminal[node])

    def word_at(self, node: int) -> str:
        """The stored string spelled by the path from the root to
        ``node`` (the word itself when ``node`` is terminal)."""
        parents = self._parents
        chars = self._parent_chars
        pieces: List[str] = []
        while node:
            pieces.append(chars[node])
            node = parents[node]
        pieces.reverse()
        return "".join(pieces)

    def iter_words(self) -> Iterator[str]:
        """Yield every stored word in lexicographic order."""
        starts, chars, children = (
            self._edge_starts, self._edge_chars, self._edge_children,
        )
        # Explicit-stack DFS; edges are sorted within each span, so
        # pushing a span in reverse yields lexicographic order.
        stack: List[Tuple[int, str]] = [(0, "")]
        while stack:
            node, prefix = stack.pop()
            if self._terminal[node]:
                yield prefix
            for index in range(starts[node + 1] - 1, starts[node] - 1, -1):
                stack.append((children[index], prefix + chars[index]))

    # --- exact prefix matching ----------------------------------------

    def longest_exact_prefix(self, text: str) -> Optional[str]:
        """Longest stored word that is a verbatim prefix of ``text``."""
        transitions = self._transitions
        terminal = self._terminal
        shift = self._shift
        bound = self._ord_bound
        node = 0
        best: Optional[str] = None
        for i, ch in enumerate(text):
            code = ord(ch)
            if code >= bound:
                break
            node = transitions.get((node << shift) | code)
            if node is None:
                break
            if terminal[node]:
                best = text[: i + 1]
        return best

    # --- fuzzy prefix matching ----------------------------------------

    def fuzzy_matches(self, text: str, allow_capitalization: bool = True,
                      allow_leet: bool = True) -> List[FuzzyMatch]:
        """All stored words matching a prefix of ``text`` under the rules.

        Same match set as :meth:`PrefixTrie.fuzzy_matches`; the order of
        the returned list is unspecified (the pointer trie emits DFS
        order, this sweep emits level order).
        """
        matches: List[FuzzyMatch] = []
        # State: (node, capitalized, toggles).
        frontier: List[Tuple[int, bool, Tuple[int, ...]]] = [(0, False, ())]
        terminal = self._terminal
        get = self._transitions.get
        shift = self._shift
        bound = self._ord_bound
        for offset in range(len(text)):
            if not frontier:
                break
            observed = text[offset]
            observed_ord = ord(observed)
            if observed_ord >= bound:
                observed_ord = -1
            partner_ord = _TOGGLE_ORD.get(observed, -1) if allow_leet else -1
            if partner_ord >= bound:
                partner_ord = -1
            lowered_ord = (
                ord(observed.lower())
                if allow_capitalization and offset == 0 and observed.isupper()
                else -1
            )
            if lowered_ord >= bound:
                lowered_ord = -1
            next_frontier = []
            for node, capitalized, toggles in frontier:
                packed_base = node << shift
                if observed_ord >= 0:
                    child = get(packed_base | observed_ord)
                    if child is not None:
                        next_frontier.append((child, capitalized, toggles))
                if lowered_ord >= 0:
                    child = get(packed_base | lowered_ord)
                    if child is not None:
                        next_frontier.append((child, True, toggles))
                if partner_ord >= 0:
                    child = get(packed_base | partner_ord)
                    if child is not None:
                        next_frontier.append(
                            (child, capitalized, toggles + (offset,))
                        )
            frontier = next_frontier
            for node, capitalized, toggles in frontier:
                if terminal[node]:
                    matches.append(
                        FuzzyMatch(self.word_at(node), offset + 1,
                                   capitalized, toggles)
                    )
        return matches

    def longest_fuzzy_match(self, text: str,
                            allow_capitalization: bool = True,
                            allow_leet: bool = True,
                            start: int = 0) -> Optional[FuzzyMatch]:
        """The preferred match: longest, then fewest transformations,
        then lexicographically smallest base — bit-for-bit the same
        result as :meth:`PrefixTrie.longest_fuzzy_match` on
        ``text[start:]``.

        ``start`` lets the parser match mid-password without slicing a
        fresh remainder string per position.  This is the scoring hot
        path: an iterative DFS over the packed transition index whose
        states carry only ``(node, position, capitalized, toggles,
        transformations)``.  The best match is tracked inline by the
        ``(longest, fewest transformations, lexicographic base)`` key;
        the base string is reconstructed from the parent arrays lazily,
        and only when both earlier criteria tie.
        """
        length = len(text)
        if start >= length:
            return None
        # Root level handled inline: node 0 packs to 0, so root edges
        # are keyed by the bare ordinal, and since capitalization only
        # ever applies at offset 0 the DFS loop below does not need a
        # capitalization branch at all.  Words are at least one
        # character long, so the root is never terminal and a miss
        # here means no match: the common case (most positions of a
        # password match nothing) returns before any further setup.
        get = self._transitions.get
        bound = self._ord_bound
        observed = text[start]
        observed_ord = ord(observed)
        # State: (node, position, capitalized, toggles, transformations).
        stack = []
        if observed_ord < bound:
            child = get(observed_ord)
            if child is not None:
                stack.append((child, start + 1, False, (), 0))
        if allow_capitalization and observed.isupper():
            lowered_ord = ord(observed.lower())
            if lowered_ord < bound:
                child = get(lowered_ord)
                if child is not None:
                    stack.append((child, start + 1, True, (), 1))
        if allow_leet:
            partner_ord = self._toggle_ord.get(observed)
            if partner_ord is not None:
                child = get(partner_ord)
                if child is not None:
                    stack.append((child, start + 1, False, (0,), 1))
        if not stack:
            return None
        terminal = self._terminal
        shift = self._shift
        # In-alphabet toggle partners only, so no bound check is
        # needed on the leet branch inside the loop.
        toggle_ord = self._toggle_ord
        push = stack.append
        pop = stack.pop
        best_length = -1
        best_cost = 0
        best_state = None
        while stack:
            state = pop()
            node, position, capitalized, toggles, cost = state
            if terminal[node]:
                matched = position - start
                if matched > best_length:
                    best_length, best_cost, best_state = matched, cost, state
                elif matched == best_length and (
                    cost < best_cost
                    or (cost == best_cost
                        and self.word_at(node)
                        < self.word_at(best_state[0]))
                ):
                    best_cost, best_state = cost, state
            if position >= length:
                continue
            packed_base = node << shift
            observed = text[position]
            observed_ord = ord(observed)
            if observed_ord < bound:
                child = get(packed_base | observed_ord)
                if child is not None:
                    push((child, position + 1, capitalized, toggles, cost))
            if allow_leet:
                partner_ord = toggle_ord.get(observed)
                if partner_ord is not None:
                    child = get(packed_base | partner_ord)
                    if child is not None:
                        push((
                            child, position + 1, capitalized,
                            toggles + (position - start,), cost + 1,
                        ))
        if best_state is None:
            return None
        base = self.word_at(best_state[0])
        return FuzzyMatch(base, len(base), best_state[2], best_state[3])
