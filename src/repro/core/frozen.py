"""The frozen scoring kernel: a :class:`FuzzyGrammar` compiled flat.

:meth:`FuzzyGrammar.derivation_probability` walks dict-of-
:class:`~repro.util.freqdist.FrequencyDistribution` tables: every
factor of the product (Fig. 11 of the paper) pays a method call, a
dict probe and a division, and every leet factor additionally re-derives
its rule name from the character (two dict probes plus an f-string).
That layout is right for *training* — tables mutate on every observed
password — but evaluation sweeps score millions of passwords against a
grammar that does not change between updates.

:class:`FrozenGrammar` is the read-only snapshot for that regime.  At
freeze time every table is compiled once:

* **structures** — one ``structure -> probability`` map (the division
  is paid per distinct structure, not per score);
* **terminals** — per segment length, an interned index
  (``base -> i``) plus a flat ``array('d')`` of probabilities and, per
  interned terminal, the precomputed ``(offset, leet-rule)`` run so
  scoring never re-derives which rule a character belongs to;
* **capitalization / reverse / allcaps** — two-entry ``(No, Yes)``
  tuples indexed directly by the derivation's booleans, with the
  legacy-grammar sentinel semantics of
  :meth:`FuzzyGrammar.reverse_probability` baked in;
* **leet** — six ``(No, Yes)`` pairs indexed by rule number.

Scoring a parsed derivation is then pure indexing — but the
*multiplication order* of :meth:`FuzzyGrammar.derivation_probability`
is preserved factor for factor, so frozen scores are bit-identical to
the dict path (asserted by ``tests/test_scoring_parallel.py``).  This
makes :meth:`FrozenGrammar.derivation_probability` a blessed FPM002
product kernel: like the dict path it short-circuits on exact zero, so
the underflow window stays bounded by one password's factor count.

A snapshot records the grammar's :attr:`~FuzzyGrammar.epoch` at build
time.  The update phase (``FuzzyPSM.update`` → ``observe``) bumps the
epoch, so holders compare ``frozen.epoch != grammar.epoch`` and lazily
rebuild — the paper's adaptive update loop stays correct without
eagerly recompiling on every accepted password.

The snapshot holds only dicts, tuples and flat arrays, so it pickles
cheaply into ``multiprocessing`` workers — the broadcast half of the
parallel scoring engine (DESIGN.md §11).
"""

from __future__ import annotations

from array import array
from itertools import islice
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple,
    TypeVar, Union, overload,
)

from repro.core.grammar import Derivation, FuzzyGrammar, Structure
from repro.util.freqdist import FrequencyDistribution
from repro.util.leet import LEET_RULE_INDEX, LEET_RULE_NAMES

_T = TypeVar("_T")

#: Backwards-compatible alias; the index now lives in
#: :mod:`repro.util.leet` so the training delta builder shares it.
_LEET_RULE_INDEX: Dict[str, int] = LEET_RULE_INDEX

#: One ``(No, Yes)`` probability pair, indexed by a rule's fired flag.
_Pair = Tuple[float, float]

#: The precomputed leet run of one terminal: ``(offset, rule)`` for
#: every stored character that belongs to a leet pair, in offset order.
_LeetRun = Tuple[Tuple[int, int], ...]

#: One length's compiled terminal entry: the interned ``base -> i``
#: index, the flat probability column (an ``array('d')`` when frozen
#: in-process, a zero-copy ``memoryview('d')`` when attached from a
#: shared segment — every consumer only indexes it), and the
#: per-terminal leet runs.
_TerminalEntry = Tuple[Dict[str, int], Sequence[float], Tuple[_LeetRun, ...]]


class _LazyTerminalTables(Dict[int, _TerminalEntry]):
    """Per-length terminal tables materialised on first access.

    An attached snapshot (:meth:`FrozenGrammar.from_tables`) must not
    decode every interned terminal eagerly: a 1M-corpus model holds
    hundreds of thousands of them, and rebuilding all the intern dicts
    costs ~0.3 s — far beyond the millisecond attach budget of the
    snapshot plane.  Scoring a password only ever touches the handful
    of lengths its segments have, so each length's
    ``(index, probabilities, runs)`` entry is built by a stored thunk
    the first time that length is looked up and cached in the dict
    proper afterwards.

    Only the access surface :class:`FrozenGrammar` uses is lazy-aware:
    ``get`` / ``[]`` / ``in`` / ``iter`` / ``len``.  Plain ``dict``
    views (``values()``/``items()``) would see only the built entries —
    call :meth:`build_all` first (as :meth:`FrozenGrammar.to_tables`
    does) when the full mapping is required.
    """

    __slots__ = ("_pending",)

    def __init__(
        self, pending: Dict[int, Callable[[], _TerminalEntry]]
    ) -> None:
        super().__init__()
        self._pending = pending

    def _materialise(self, length: int) -> _TerminalEntry:
        entry = self._pending.pop(length)()
        dict.__setitem__(self, length, entry)
        return entry

    def build_all(self) -> None:
        """Force every pending length (for whole-table consumers)."""
        for length in list(self._pending):
            self._materialise(length)

    @overload
    def get(self, key: int) -> Optional[_TerminalEntry]: ...

    @overload
    def get(self, key: int, default: _T) -> Union[_TerminalEntry, _T]: ...

    def get(self, key: int, default: Any = None) -> Any:  # type: ignore[override]
        entry: Optional[_TerminalEntry] = dict.get(self, key)
        if entry is not None:
            return entry
        if key in self._pending:
            return self._materialise(key)
        return default

    def __getitem__(self, key: int) -> _TerminalEntry:
        entry: Optional[_TerminalEntry] = dict.get(self, key)
        if entry is not None:
            return entry
        if key in self._pending:
            return self._materialise(key)
        raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return dict.__contains__(self, key) or key in self._pending

    def __iter__(self) -> Iterator[int]:
        # Snapshot both key sets: consumers may materialise entries
        # (moving keys from pending to built) while iterating.
        return iter([*dict.__iter__(self), *self._pending])

    def __len__(self) -> int:
        return dict.__len__(self) + len(self._pending)


def _lazy_terminal_builder(
    length: int,
    count: int,
    blob: str,
    blob_start: int,
    probabilities: Sequence[float],
    run_counts: Sequence[int],
    run_offsets: Sequence[int],
    run_rules: Sequence[int],
) -> Callable[[], _TerminalEntry]:
    """Thunk rebuilding one length's terminal entry from flat columns.

    ``blob`` is the full decoded terminal blob; this length's bases
    occupy ``count`` fixed-width (``length`` code points) slots starting
    at ``blob_start``.  The probability column is adopted by reference
    (zero-copy when it is a segment ``memoryview``), so attached scores
    read the exact bits the freeze wrote.
    """

    def build() -> _TerminalEntry:
        index = {
            blob[blob_start + i * length:blob_start + (i + 1) * length]: i
            for i in range(count)
        }
        pairs = zip(run_offsets, run_rules)
        runs = tuple(
            tuple(islice(pairs, entries)) for entries in run_counts
        )
        return (index, probabilities, runs)

    return build


def _pair(dist: "FrequencyDistribution[bool]") -> _Pair:
    """``(P(No), P(Yes))`` with plain maximum-likelihood semantics."""
    return (dist.probability(False), dist.probability(True))


def _sentinel_pair(dist: "FrequencyDistribution[bool]") -> _Pair:
    """``(P(No), P(Yes))`` with the never-trained no-op sentinel.

    Matches :meth:`FuzzyGrammar.reverse_probability` /
    ``allcaps_probability``: an empty table is a certainty factor.
    """
    if dist.total == 0:
        return (1.0, 0.0)
    return _pair(dist)


class FrozenGrammar:
    """Immutable flat-table snapshot of a :class:`FuzzyGrammar`.

    >>> from repro.core.grammar import DerivedSegment
    >>> grammar = FuzzyGrammar()
    >>> derivation = Derivation((DerivedSegment("password"),))
    >>> grammar.observe(derivation)
    >>> frozen = FrozenGrammar(grammar)
    >>> frozen.derivation_probability(derivation) == \
            grammar.derivation_probability(derivation)
    True
    >>> frozen.epoch == grammar.epoch
    True
    """

    __slots__ = (
        "epoch", "_structures", "_terminals", "_capitalization",
        "_reverse", "_allcaps", "_leet",
    )

    def __init__(self, grammar: FuzzyGrammar) -> None:
        self.epoch: int = grammar.epoch
        structure_total = grammar.structures.total
        self._structures: Dict[Structure, float] = (
            {
                structure: count / structure_total
                for structure, count in grammar.structures.items()
            }
            if structure_total
            else {}
        )
        self._terminals: Dict[int, _TerminalEntry] = {}
        for length, table in grammar.terminals.items():
            total = table.total
            index: Dict[str, int] = {}
            probabilities = array("d")
            runs: List[_LeetRun] = []
            for base, count in table.items():
                index[base] = len(probabilities)
                probabilities.append(count / total)
                runs.append(
                    tuple(
                        (offset, _LEET_RULE_INDEX[ch])
                        for offset, ch in enumerate(base)
                        if ch in _LEET_RULE_INDEX
                    )
                )
            self._terminals[length] = (index, probabilities, tuple(runs))
        self._capitalization: _Pair = _pair(grammar.capitalization)
        self._reverse: _Pair = _sentinel_pair(grammar.reverse)
        self._allcaps: _Pair = _sentinel_pair(grammar.allcaps)
        self._leet: Tuple[_Pair, ...] = tuple(
            _pair(grammar.leet[name]) for name in LEET_RULE_NAMES
        )

    # --- scoring -------------------------------------------------------

    def structure_probability(self, structure: Structure) -> float:
        """Same value as :meth:`FuzzyGrammar.structure_probability`."""
        return self._structures.get(structure, 0.0)

    def terminal_probability(self, base: str) -> float:
        """Same value as :meth:`FuzzyGrammar.terminal_probability`."""
        entry = self._terminals.get(len(base))
        if entry is None:
            return 0.0
        index = entry[0].get(base)
        if index is None:
            return 0.0
        return entry[1][index]

    def derivation_probability(self, derivation: Derivation) -> float:
        """Bit-identical fast path of the Fig.-11 product.

        Every multiplication of
        :meth:`FuzzyGrammar.derivation_probability` (via
        ``segment_probability``) happens here with the same factor
        values, in the same order, into the same accumulators — only
        the table lookups are compiled away.
        """
        probability = self._structures.get(derivation.structure, 0.0)
        terminals = self._terminals
        capitalization = self._capitalization
        reverse = self._reverse
        allcaps = self._allcaps
        leet = self._leet
        for segment in derivation.segments:
            if probability == 0.0:
                return 0.0
            base = segment.base
            entry = terminals.get(len(base))
            index = entry[0].get(base) if entry is not None else None
            if entry is None or index is None:
                # The dict path's zero terminal factor, multiplied in.
                probability *= 0.0
                continue
            seg_probability = entry[1][index]
            seg_probability *= capitalization[segment.capitalized]
            seg_probability *= reverse[segment.reversed_word]
            seg_probability *= allcaps[segment.all_caps]
            toggled = segment.toggled_offsets
            if toggled:
                toggled_set = set(toggled)
                for offset, rule in entry[2][index]:
                    seg_probability *= leet[rule][offset in toggled_set]
            else:
                for _offset, rule in entry[2][index]:
                    seg_probability *= leet[rule][0]
            probability *= seg_probability
        return probability

    # --- compiled-table access (attack engine) -------------------------

    def structure_table(self) -> Dict[Structure, float]:
        """The compiled ``structure -> probability`` map, by reference.

        Read-only by contract: the attack engine
        (:mod:`repro.attacks.engine`) iterates it to seed guess
        enumeration without re-deriving probabilities from counts.
        """
        return self._structures

    def terminal_lengths(self) -> List[int]:
        """Sorted segment lengths that have a compiled terminal table."""
        return sorted(self._terminals)

    def terminal_table(self, length: int) -> Optional[_TerminalEntry]:
        """One length's compiled ``(intern index, probabilities, leet runs)``.

        The flat layout documented in the module docstring, exposed so
        the attack engine enumerates interned terminals directly
        instead of walking count tables.  ``None`` when no terminal of
        that length was observed.
        """
        return self._terminals.get(length)

    @property
    def capitalization_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the capitalization rule."""
        return self._capitalization

    @property
    def reverse_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the reverse rule (sentinel baked in)."""
        return self._reverse

    @property
    def allcaps_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the all-caps rule (sentinel baked in)."""
        return self._allcaps

    @property
    def leet_pairs(self) -> Tuple[_Pair, ...]:
        """Six ``(P(No), P(Yes))`` pairs, indexed by leet rule number."""
        return self._leet

    # --- flat-column export / attach -----------------------------------

    def to_tables(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """``(meta, sections)`` flat columns for the snapshot plane.

        Everything the snapshot holds becomes one of the section dtypes
        the directory codec (:mod:`repro.util.sections`) knows:

        * structures as a ragged ``int64`` encoding — per-structure
          segment counts (``structure_lens``), the flattened segment
          lengths (``structure_flat``) and the probability column;
        * terminals grouped by length in sorted-length order — per
          length its value and terminal count, then one fixed-width
          UTF-8 blob of every interned base, the flat probability
          column, and the leet runs as ragged ``(offset, rule)``
          columns with per-terminal entry counts and per-length totals
          (``term_run_totals``) so the attach side slices each length's
          run span without summing;
        * the five rule tables flattened into one 18-float
          ``rule_probs`` column (capitalization, reverse, all-caps,
          then the six leet pairs, each as ``No, Yes``).

        ``meta`` carries the snapshot :attr:`epoch`.
        """
        terminals = self._terminals
        if isinstance(terminals, _LazyTerminalTables):
            terminals.build_all()
        structure_lens = array("q")
        structure_flat = array("q")
        structure_probs = array("d")
        for structure, probability in self._structures.items():
            structure_lens.append(len(structure))
            structure_flat.extend(structure)
            structure_probs.append(probability)
        term_lengths = array("q")
        term_counts = array("q")
        term_probs = array("d")
        term_run_counts = array("q")
        term_run_offsets = array("q")
        term_run_rules = array("q")
        term_run_totals = array("q")
        blob_pieces: List[str] = []
        for length in sorted(terminals):
            index, probabilities, runs = terminals[length]
            term_lengths.append(length)
            term_counts.append(len(index))
            # Interning appends bases in index order, so iterating the
            # index dict yields terminal ``i`` at blob slot ``i``.
            blob_pieces.extend(index)
            term_probs.extend(probabilities)
            total = 0
            for run in runs:
                term_run_counts.append(len(run))
                total += len(run)
                for offset, rule in run:
                    term_run_offsets.append(offset)
                    term_run_rules.append(rule)
            term_run_totals.append(total)
        rule_probs = array("d", self._capitalization)
        rule_probs.extend(self._reverse)
        rule_probs.extend(self._allcaps)
        for pair in self._leet:
            rule_probs.extend(pair)
        sections: Dict[str, Any] = {
            "structure_lens": structure_lens,
            "structure_flat": structure_flat,
            "structure_probs": structure_probs,
            "term_lengths": term_lengths,
            "term_counts": term_counts,
            "term_blob": "".join(blob_pieces),
            "term_probs": term_probs,
            "term_run_counts": term_run_counts,
            "term_run_offsets": term_run_offsets,
            "term_run_rules": term_run_rules,
            "term_run_totals": term_run_totals,
            "rule_probs": rule_probs,
        }
        meta = {"epoch": self.epoch}
        return meta, sections

    @classmethod
    def from_tables(
        cls, meta: Dict[str, Any], sections: Dict[str, Any]
    ) -> "FrozenGrammar":
        """Rebuild a snapshot from :meth:`to_tables` columns.

        The attach half of the snapshot plane, built for a millisecond
        budget: structures and the 18 rule probabilities are decoded
        eagerly (cheap — thousands of small tuples at most), while the
        terminal tables — the bulk of a large model — become a
        :class:`_LazyTerminalTables` whose per-length entries
        materialise on first use.  Probability values are read straight
        out of the (typically shared-memory) ``float64`` columns, so
        attached scores are bit-identical to the freeze that wrote
        them.
        """
        self = cls.__new__(cls)
        self.epoch = int(meta["epoch"])
        structures: Dict[Structure, float] = {}
        lens = sections["structure_lens"]
        flat = sections["structure_flat"]
        probs = sections["structure_probs"]
        position = 0
        for i in range(len(lens)):
            width = lens[i]
            structures[tuple(flat[position:position + width])] = probs[i]
            position += width
        self._structures = structures
        blob = sections["term_blob"]
        term_probs = sections["term_probs"]
        run_counts = sections["term_run_counts"]
        run_offsets = sections["term_run_offsets"]
        run_rules = sections["term_run_rules"]
        lengths = sections["term_lengths"]
        counts = sections["term_counts"]
        totals = sections["term_run_totals"]
        pending: Dict[int, Callable[[], _TerminalEntry]] = {}
        blob_position = 0
        prob_position = 0
        run_position = 0
        pair_position = 0
        for i in range(len(lengths)):
            length = int(lengths[i])
            count = int(counts[i])
            total = int(totals[i])
            pending[length] = _lazy_terminal_builder(
                length, count, blob, blob_position,
                term_probs[prob_position:prob_position + count],
                run_counts[run_position:run_position + count],
                run_offsets[pair_position:pair_position + total],
                run_rules[pair_position:pair_position + total],
            )
            blob_position += length * count
            prob_position += count
            run_position += count
            pair_position += total
        self._terminals = _LazyTerminalTables(pending)
        rules = sections["rule_probs"]
        self._capitalization = (rules[0], rules[1])
        self._reverse = (rules[2], rules[3])
        self._allcaps = (rules[4], rules[5])
        self._leet = tuple(
            (rules[6 + 2 * i], rules[7 + 2 * i])
            for i in range(len(LEET_RULE_NAMES))
        )
        return self

    # --- introspection -------------------------------------------------

    @property
    def structure_count(self) -> int:
        """Number of distinct base structures in the snapshot."""
        return len(self._structures)

    @property
    def terminal_count(self) -> int:
        """Number of interned terminals across every length table."""
        # Keyed access (not ``.values()``) so lazy attached tables
        # materialise the lengths they are asked for.
        return sum(
            len(self._terminals[length][0]) for length in self._terminals
        )

    def is_current(self, grammar: FuzzyGrammar) -> bool:
        """True while the snapshot still reflects ``grammar`` exactly."""
        return self.epoch == grammar.epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenGrammar(epoch={self.epoch}, "
            f"structures={self.structure_count}, "
            f"terminals={self.terminal_count})"
        )


def freeze(grammar: FuzzyGrammar,
           stale: Optional[FrozenGrammar] = None) -> FrozenGrammar:
    """Snapshot ``grammar``, reusing ``stale`` when still current.

    The lazy-invalidation helper: callers hold one snapshot and call
    ``freeze(grammar, snapshot)`` before scoring; a snapshot taken at
    the grammar's current epoch is returned as-is, anything else is
    rebuilt.
    """
    if stale is not None and stale.is_current(grammar):
        return stale
    return FrozenGrammar(grammar)
