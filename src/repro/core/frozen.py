"""The frozen scoring kernel: a :class:`FuzzyGrammar` compiled flat.

:meth:`FuzzyGrammar.derivation_probability` walks dict-of-
:class:`~repro.util.freqdist.FrequencyDistribution` tables: every
factor of the product (Fig. 11 of the paper) pays a method call, a
dict probe and a division, and every leet factor additionally re-derives
its rule name from the character (two dict probes plus an f-string).
That layout is right for *training* — tables mutate on every observed
password — but evaluation sweeps score millions of passwords against a
grammar that does not change between updates.

:class:`FrozenGrammar` is the read-only snapshot for that regime.  At
freeze time every table is compiled once:

* **structures** — one ``structure -> probability`` map (the division
  is paid per distinct structure, not per score);
* **terminals** — per segment length, an interned index
  (``base -> i``) plus a flat ``array('d')`` of probabilities and, per
  interned terminal, the precomputed ``(offset, leet-rule)`` run so
  scoring never re-derives which rule a character belongs to;
* **capitalization / reverse / allcaps** — two-entry ``(No, Yes)``
  tuples indexed directly by the derivation's booleans, with the
  legacy-grammar sentinel semantics of
  :meth:`FuzzyGrammar.reverse_probability` baked in;
* **leet** — six ``(No, Yes)`` pairs indexed by rule number.

Scoring a parsed derivation is then pure indexing — but the
*multiplication order* of :meth:`FuzzyGrammar.derivation_probability`
is preserved factor for factor, so frozen scores are bit-identical to
the dict path (asserted by ``tests/test_scoring_parallel.py``).  This
makes :meth:`FrozenGrammar.derivation_probability` a blessed FPM002
product kernel: like the dict path it short-circuits on exact zero, so
the underflow window stays bounded by one password's factor count.

A snapshot records the grammar's :attr:`~FuzzyGrammar.epoch` at build
time.  The update phase (``FuzzyPSM.update`` → ``observe``) bumps the
epoch, so holders compare ``frozen.epoch != grammar.epoch`` and lazily
rebuild — the paper's adaptive update loop stays correct without
eagerly recompiling on every accepted password.

The snapshot holds only dicts, tuples and flat arrays, so it pickles
cheaply into ``multiprocessing`` workers — the broadcast half of the
parallel scoring engine (DESIGN.md §11).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.core.grammar import Derivation, FuzzyGrammar, Structure
from repro.util.freqdist import FrequencyDistribution
from repro.util.leet import LEET_RULE_INDEX, LEET_RULE_NAMES

#: Backwards-compatible alias; the index now lives in
#: :mod:`repro.util.leet` so the training delta builder shares it.
_LEET_RULE_INDEX: Dict[str, int] = LEET_RULE_INDEX

#: One ``(No, Yes)`` probability pair, indexed by a rule's fired flag.
_Pair = Tuple[float, float]

#: The precomputed leet run of one terminal: ``(offset, rule)`` for
#: every stored character that belongs to a leet pair, in offset order.
_LeetRun = Tuple[Tuple[int, int], ...]


def _pair(dist: "FrequencyDistribution[bool]") -> _Pair:
    """``(P(No), P(Yes))`` with plain maximum-likelihood semantics."""
    return (dist.probability(False), dist.probability(True))


def _sentinel_pair(dist: "FrequencyDistribution[bool]") -> _Pair:
    """``(P(No), P(Yes))`` with the never-trained no-op sentinel.

    Matches :meth:`FuzzyGrammar.reverse_probability` /
    ``allcaps_probability``: an empty table is a certainty factor.
    """
    if dist.total == 0:
        return (1.0, 0.0)
    return _pair(dist)


class FrozenGrammar:
    """Immutable flat-table snapshot of a :class:`FuzzyGrammar`.

    >>> from repro.core.grammar import DerivedSegment
    >>> grammar = FuzzyGrammar()
    >>> derivation = Derivation((DerivedSegment("password"),))
    >>> grammar.observe(derivation)
    >>> frozen = FrozenGrammar(grammar)
    >>> frozen.derivation_probability(derivation) == \
            grammar.derivation_probability(derivation)
    True
    >>> frozen.epoch == grammar.epoch
    True
    """

    __slots__ = (
        "epoch", "_structures", "_terminals", "_capitalization",
        "_reverse", "_allcaps", "_leet",
    )

    def __init__(self, grammar: FuzzyGrammar) -> None:
        self.epoch: int = grammar.epoch
        structure_total = grammar.structures.total
        self._structures: Dict[Structure, float] = (
            {
                structure: count / structure_total
                for structure, count in grammar.structures.items()
            }
            if structure_total
            else {}
        )
        self._terminals: Dict[
            int,
            Tuple[Dict[str, int], "array[float]", Tuple[_LeetRun, ...]],
        ] = {}
        for length, table in grammar.terminals.items():
            total = table.total
            index: Dict[str, int] = {}
            probabilities = array("d")
            runs: List[_LeetRun] = []
            for base, count in table.items():
                index[base] = len(probabilities)
                probabilities.append(count / total)
                runs.append(
                    tuple(
                        (offset, _LEET_RULE_INDEX[ch])
                        for offset, ch in enumerate(base)
                        if ch in _LEET_RULE_INDEX
                    )
                )
            self._terminals[length] = (index, probabilities, tuple(runs))
        self._capitalization: _Pair = _pair(grammar.capitalization)
        self._reverse: _Pair = _sentinel_pair(grammar.reverse)
        self._allcaps: _Pair = _sentinel_pair(grammar.allcaps)
        self._leet: Tuple[_Pair, ...] = tuple(
            _pair(grammar.leet[name]) for name in LEET_RULE_NAMES
        )

    # --- scoring -------------------------------------------------------

    def structure_probability(self, structure: Structure) -> float:
        """Same value as :meth:`FuzzyGrammar.structure_probability`."""
        return self._structures.get(structure, 0.0)

    def terminal_probability(self, base: str) -> float:
        """Same value as :meth:`FuzzyGrammar.terminal_probability`."""
        entry = self._terminals.get(len(base))
        if entry is None:
            return 0.0
        index = entry[0].get(base)
        if index is None:
            return 0.0
        return entry[1][index]

    def derivation_probability(self, derivation: Derivation) -> float:
        """Bit-identical fast path of the Fig.-11 product.

        Every multiplication of
        :meth:`FuzzyGrammar.derivation_probability` (via
        ``segment_probability``) happens here with the same factor
        values, in the same order, into the same accumulators — only
        the table lookups are compiled away.
        """
        probability = self._structures.get(derivation.structure, 0.0)
        terminals = self._terminals
        capitalization = self._capitalization
        reverse = self._reverse
        allcaps = self._allcaps
        leet = self._leet
        for segment in derivation.segments:
            if probability == 0.0:
                return 0.0
            base = segment.base
            entry = terminals.get(len(base))
            index = entry[0].get(base) if entry is not None else None
            if entry is None or index is None:
                # The dict path's zero terminal factor, multiplied in.
                probability *= 0.0
                continue
            seg_probability = entry[1][index]
            seg_probability *= capitalization[segment.capitalized]
            seg_probability *= reverse[segment.reversed_word]
            seg_probability *= allcaps[segment.all_caps]
            toggled = segment.toggled_offsets
            if toggled:
                toggled_set = set(toggled)
                for offset, rule in entry[2][index]:
                    seg_probability *= leet[rule][offset in toggled_set]
            else:
                for _offset, rule in entry[2][index]:
                    seg_probability *= leet[rule][0]
            probability *= seg_probability
        return probability

    # --- compiled-table access (attack engine) -------------------------

    def structure_table(self) -> Dict[Structure, float]:
        """The compiled ``structure -> probability`` map, by reference.

        Read-only by contract: the attack engine
        (:mod:`repro.attacks.engine`) iterates it to seed guess
        enumeration without re-deriving probabilities from counts.
        """
        return self._structures

    def terminal_lengths(self) -> List[int]:
        """Sorted segment lengths that have a compiled terminal table."""
        return sorted(self._terminals)

    def terminal_table(
        self, length: int
    ) -> Optional[Tuple[Dict[str, int], "array[float]", Tuple[_LeetRun, ...]]]:
        """One length's compiled ``(intern index, probabilities, leet runs)``.

        The flat layout documented in the module docstring, exposed so
        the attack engine enumerates interned terminals directly
        instead of walking count tables.  ``None`` when no terminal of
        that length was observed.
        """
        return self._terminals.get(length)

    @property
    def capitalization_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the capitalization rule."""
        return self._capitalization

    @property
    def reverse_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the reverse rule (sentinel baked in)."""
        return self._reverse

    @property
    def allcaps_pair(self) -> _Pair:
        """``(P(No), P(Yes))`` of the all-caps rule (sentinel baked in)."""
        return self._allcaps

    @property
    def leet_pairs(self) -> Tuple[_Pair, ...]:
        """Six ``(P(No), P(Yes))`` pairs, indexed by leet rule number."""
        return self._leet

    # --- introspection -------------------------------------------------

    @property
    def structure_count(self) -> int:
        """Number of distinct base structures in the snapshot."""
        return len(self._structures)

    @property
    def terminal_count(self) -> int:
        """Number of interned terminals across every length table."""
        return sum(len(entry[0]) for entry in self._terminals.values())

    def is_current(self, grammar: FuzzyGrammar) -> bool:
        """True while the snapshot still reflects ``grammar`` exactly."""
        return self.epoch == grammar.epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenGrammar(epoch={self.epoch}, "
            f"structures={self.structure_count}, "
            f"terminals={self.terminal_count})"
        )


def freeze(grammar: FuzzyGrammar,
           stale: Optional[FrozenGrammar] = None) -> FrozenGrammar:
    """Snapshot ``grammar``, reusing ``stale`` when still current.

    The lazy-invalidation helper: callers hold one snapshot and call
    ``freeze(grammar, snapshot)`` before scoring; a snapshot taken at
    the grammar's current epoch is returned as-is, anything else is
    rebuilt.
    """
    if stale is not None and stale.is_current(grammar):
        return stale
    return FrozenGrammar(grammar)
