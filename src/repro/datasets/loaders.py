"""Reading and writing password corpora.

Two on-disk formats are supported, covering how leaked lists circulate:

* **plain** — one password per line, duplicates repeated;
* **counted** — ``<count> <password>`` per line (the output of
  ``sort | uniq -c``), password may contain spaces after the first gap.

If you have the real Rockyou/Tianya/... lists, load them with these
functions and every experiment runs on the genuine data instead of the
synthetic stand-ins.

Two access regimes share the same line-level semantics:

* :func:`load_corpus` materialises a whole file into a
  :class:`~repro.datasets.corpus.PasswordCorpus` (deduplicated counts)
  — right for evaluation sets and anything that fits in memory;
* :func:`iter_password_entries` / :func:`stream_corpus_chunks` stream
  ``(password, count)`` entries off disk without materialising the
  corpus — the out-of-core feed for
  :func:`repro.core.training.train_grammar_streaming`, where corpora
  are RockYou-scale and memory must stay flat.

Both regimes apply identical filtering (empty lines, malformed counted
lines, over-length passwords) in identical order, so a streamed pass
sees exactly the entries a ``load_corpus(...).expand()`` pass would.
"""

from __future__ import annotations

import itertools
import os
import resource
from typing import Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.obs.core import now as _now
from repro.datasets.corpus import PasswordCorpus

#: Lines inspected by the ``auto`` format sniffer (both regimes).
_SNIFF_LINES = 100

#: Default streaming batch size: large enough to amortise per-chunk
#: messaging in the parallel trainer, small enough that a few in-flight
#: chunks of 64-char-max passwords stay well under typical RSS budgets.
DEFAULT_STREAM_CHUNK = 50_000


def _iter_lines(path: str, encoding: str,
                errors: str) -> Iterator[str]:
    """Yield lines with trailing newlines stripped, one at a time."""
    with open(path, encoding=encoding, errors=errors) as handle:
        for line in handle:
            yield line.rstrip("\r\n")


def _parse_line(line: str, fmt: str,
                max_length: int) -> Optional[Tuple[str, int]]:
    """One line's ``(password, count)``, or None when filtered out."""
    if not line:
        return None
    if fmt == "counted":
        head, _, password = line.strip().partition(" ")
        if not head.isdigit() or not password:
            return None
        count = int(head)
    else:
        password, count = line, 1
    if len(password) > max_length:
        return None
    return password, count


def iter_password_entries(
    path: str, fmt: str = "auto", encoding: str = "utf-8",
    errors: str = "replace", max_length: int = 64,
) -> Iterator[Tuple[str, int]]:
    """Stream ``(password, count)`` entries from a corpus file.

    The out-of-core reader: one line is held at a time (plus the small
    sniff buffer when ``fmt="auto"``), so RockYou-scale files stream in
    constant memory.  Filtering matches :func:`load_corpus` exactly;
    duplicates are **not** merged — a plain file with ``password`` on
    three lines yields three entries, like ``PasswordCorpus.expand``.
    """
    if fmt not in ("plain", "counted", "auto"):
        raise ValueError(f"unknown format {fmt!r}")
    lines = _iter_lines(path, encoding, errors)
    head: List[str] = []
    if fmt == "auto":
        for line in lines:
            head.append(line)
            if len(head) >= _SNIFF_LINES:
                break
        fmt = _sniff_format(head)
    # Replay the sniff buffer, then continue with the live handle.
    for line in itertools.chain(head, lines):
        entry = _parse_line(line, fmt, max_length)
        if entry is not None:
            yield entry


def stream_corpus_chunks(
    path: str, chunk_size: int = DEFAULT_STREAM_CHUNK,
    fmt: str = "auto", encoding: str = "utf-8",
    errors: str = "replace", max_length: int = 64,
) -> Iterator[List[Tuple[str, int]]]:
    """Stream a corpus file as bounded ``(password, count)`` batches.

    The feed for ``train_grammar_streaming`` and ``repro train
    --stream-chunk``: each yielded list holds at most ``chunk_size``
    entries, so downstream memory is governed by the chunk size, never
    the corpus.  Telemetry (when enabled) records per-chunk read
    latency (``stream.chunk.seconds``), chunk and entry counters
    (``stream.chunks`` / ``stream.entries``) and the process RSS
    high-water mark after each chunk (``stream.rss_kib`` — the
    flat-memory evidence the training bench asserts on).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    telemetry = obs.get()
    entries = iter_password_entries(
        path, fmt=fmt, encoding=encoding, errors=errors,
        max_length=max_length,
    )
    while True:
        start = _now()
        chunk: List[Tuple[str, int]] = []
        for entry in entries:
            chunk.append(entry)
            if len(chunk) >= chunk_size:
                break
        if not chunk:
            return
        if telemetry.enabled:
            telemetry.observe("stream.chunk.seconds", _now() - start)
            telemetry.incr("stream.chunks")
            telemetry.incr("stream.entries", len(chunk))
            telemetry.observe(
                "stream.rss_kib",
                float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
            )
        yield chunk


def load_corpus(path: str, fmt: str = "auto", name: Optional[str] = None,
                encoding: str = "utf-8", errors: str = "replace",
                max_length: int = 64) -> PasswordCorpus:
    """Load a corpus from disk.

    Args:
        path: file to read.
        fmt: ``plain``, ``counted`` or ``auto`` (sniff the first lines).
        name: corpus name (defaults to the file stem).
        max_length: lines longer than this are dropped (leak files
            contain binary junk; the paper caps Lmax around 20-30).
    """
    name = name or os.path.splitext(os.path.basename(path))[0]
    counts = {}
    for password, count in iter_password_entries(
        path, fmt=fmt, encoding=encoding, errors=errors,
        max_length=max_length,
    ):
        counts[password] = counts.get(password, 0) + count
    return PasswordCorpus(counts, name=name)


def save_corpus(corpus: PasswordCorpus, path: str,
                fmt: str = "counted", encoding: str = "utf-8") -> None:
    """Write a corpus; ``counted`` is compact, ``plain`` is exact."""
    if fmt not in ("plain", "counted"):
        raise ValueError(f"unknown format {fmt!r}")
    with open(path, "w", encoding=encoding) as handle:
        if fmt == "counted":
            for password, count in corpus.most_common():
                handle.write(f"{count} {password}\n")
        else:
            for password in corpus.expand():
                handle.write(password + "\n")


def _sniff_format(lines: Iterable[str]) -> str:
    """Guess ``counted`` when the leading token of most lines is a count."""
    sample = [line for line in list(lines)[:_SNIFF_LINES] if line.strip()]
    if not sample:
        return "plain"
    counted = 0
    for line in sample:
        head, _, rest = line.strip().partition(" ")
        if head.isdigit() and rest:
            counted += 1
    return "counted" if counted >= 0.9 * len(sample) else "plain"
