"""Reading and writing password corpora.

Two on-disk formats are supported, covering how leaked lists circulate:

* **plain** — one password per line, duplicates repeated;
* **counted** — ``<count> <password>`` per line (the output of
  ``sort | uniq -c``), password may contain spaces after the first gap.

If you have the real Rockyou/Tianya/... lists, load them with these
functions and every experiment runs on the genuine data instead of the
synthetic stand-ins.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.datasets.corpus import PasswordCorpus


def load_corpus(path: str, fmt: str = "auto", name: Optional[str] = None,
                encoding: str = "utf-8", errors: str = "replace",
                max_length: int = 64) -> PasswordCorpus:
    """Load a corpus from disk.

    Args:
        path: file to read.
        fmt: ``plain``, ``counted`` or ``auto`` (sniff the first lines).
        name: corpus name (defaults to the file stem).
        max_length: lines longer than this are dropped (leak files
            contain binary junk; the paper caps Lmax around 20-30).
    """
    if fmt not in ("plain", "counted", "auto"):
        raise ValueError(f"unknown format {fmt!r}")
    name = name or os.path.splitext(os.path.basename(path))[0]
    with open(path, encoding=encoding, errors=errors) as handle:
        lines = [line.rstrip("\r\n") for line in handle]
    if fmt == "auto":
        fmt = _sniff_format(lines)
    counts = {}
    for line in lines:
        if not line:
            continue
        if fmt == "counted":
            head, _, password = line.strip().partition(" ")
            if not head.isdigit() or not password:
                continue
            count = int(head)
        else:
            password, count = line, 1
        if len(password) > max_length:
            continue
        counts[password] = counts.get(password, 0) + count
    return PasswordCorpus(counts, name=name)


def save_corpus(corpus: PasswordCorpus, path: str,
                fmt: str = "counted", encoding: str = "utf-8") -> None:
    """Write a corpus; ``counted`` is compact, ``plain`` is exact."""
    if fmt not in ("plain", "counted"):
        raise ValueError(f"unknown format {fmt!r}")
    with open(path, "w", encoding=encoding) as handle:
        if fmt == "counted":
            for password, count in corpus.most_common():
                handle.write(f"{count} {password}\n")
        else:
            for password in corpus.expand():
                handle.write(password + "\n")


def _sniff_format(lines) -> str:
    """Guess ``counted`` when the leading token of most lines is a count."""
    sample = [line for line in lines[:100] if line.strip()]
    if not sample:
        return "plain"
    counted = 0
    for line in sample:
        head, _, rest = line.strip().partition(" ")
        if head.isdigit() and rest:
            counted += 1
    return "counted" if counted >= 0.9 * len(sample) else "plain"
