"""The password corpus container.

A corpus is a multiset of passwords (a leaked list has many duplicate
entries — that is the signal the ideal meter and all trained models
feed on) plus service metadata mirroring Table VII's columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.util.freqdist import FrequencyDistribution


class PasswordCorpus:
    """A multiset of passwords with metadata.

    >>> corpus = PasswordCorpus(["123456", "123456", "password"], name="demo")
    >>> corpus.total, corpus.unique
    (3, 2)
    >>> corpus.count("123456")
    2
    """

    def __init__(self, passwords: Union[Iterable[str], Mapping[str, int]],
                 name: str = "unnamed",
                 service: str = "",
                 location: str = "",
                 language: str = "") -> None:
        self.name = name
        self.service = service
        self.location = location
        self.language = language
        self._distribution: FrequencyDistribution[str] = FrequencyDistribution()
        if isinstance(passwords, Mapping):
            for password, count in passwords.items():
                self._distribution.add(password, count)
        else:
            self._distribution.update(passwords)

    # --- basic queries -----------------------------------------------

    @property
    def total(self) -> int:
        """Total entries, duplicates included (Table VII 'Total PWs')."""
        return self._distribution.total

    @property
    def unique(self) -> int:
        """Distinct passwords (Table VII 'Unique PWs')."""
        return self._distribution.support_size

    def count(self, password: str) -> int:
        return self._distribution.count(password)

    def frequency(self, password: str) -> float:
        return self._distribution.probability(password)

    def __contains__(self, password: object) -> bool:
        return password in self._distribution

    def __len__(self) -> int:
        return self._distribution.support_size

    def __iter__(self) -> Iterator[str]:
        """Iterate distinct passwords."""
        return iter(self._distribution)

    def items(self) -> Iterator[Tuple[str, int]]:
        """(password, count) pairs."""
        return self._distribution.items()

    def most_common(self, n: Optional[int] = None) -> List[Tuple[str, int]]:
        return self._distribution.most_common(n)

    def counts(self) -> Dict[str, int]:
        """A fresh ``password -> count`` dict."""
        return dict(self._distribution.items())

    def unique_passwords(self) -> List[str]:
        return list(self._distribution)

    def expand(self) -> Iterator[str]:
        """Iterate entries with multiplicity (memory-light)."""
        for password, count in self._distribution.items():
            for _ in range(count):
                yield password

    def iter_chunks(
        self, chunk_size: int
    ) -> Iterator[List[Tuple[str, int]]]:
        """Yield ``(password, count)`` batches of at most ``chunk_size``.

        The in-memory twin of
        :func:`repro.datasets.loaders.stream_corpus_chunks`, so an
        already-loaded corpus can feed
        :func:`repro.core.training.train_grammar_streaming` through the
        same chunked interface as an on-disk file.
        """
        if chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        chunk: List[Tuple[str, int]] = []
        for entry in self._distribution.items():
            chunk.append(entry)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    # --- derived corpora ------------------------------------------------

    def split(self, fractions: Sequence[float],
              rng: Optional[random.Random] = None
              ) -> List["PasswordCorpus"]:
        """Randomly partition entries (with multiplicity) by fractions.

        The paper's methodology splits a dataset "into equally four
        parts" and trains on one quarter while testing on another;
        ``corpus.split([0.25, 0.25, 0.25, 0.25])`` reproduces that.

        >>> corpus = PasswordCorpus(["a"] * 50 + ["b"] * 50, name="even")
        >>> parts = corpus.split([0.5, 0.5], random.Random(7))
        >>> [part.total for part in parts]
        [50, 50]
        """
        if not fractions:
            raise ValueError("need at least one fraction")
        if any(f <= 0 for f in fractions):
            raise ValueError("fractions must be positive")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1")
        rng = rng or random.Random(0)
        entries = list(self.expand())
        rng.shuffle(entries)
        parts: List[PasswordCorpus] = []
        start = 0
        cumulative = 0.0
        for index, fraction in enumerate(fractions):
            cumulative += fraction
            end = (
                len(entries)
                if index == len(fractions) - 1
                else int(round(cumulative * len(entries)))
            )
            parts.append(
                PasswordCorpus(
                    entries[start:end],
                    name=f"{self.name}[part{index + 1}]",
                    service=self.service,
                    location=self.location,
                    language=self.language,
                )
            )
            start = end
        return parts

    def merged_with(self, other: "PasswordCorpus",
                    name: Optional[str] = None) -> "PasswordCorpus":
        """Union with multiplicities (training-set composition)."""
        counts = self.counts()
        for password, count in other.items():
            counts[password] = counts.get(password, 0) + count
        return PasswordCorpus(
            counts,
            name=name or f"{self.name}+{other.name}",
            service=self.service,
            location=self.location,
            language=self.language,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PasswordCorpus(name={self.name!r}, unique={self.unique}, "
            f"total={self.total})"
        )
