"""Corpus statistics reproducing Tables VIII-X and Fig. 12.

All functions take a :class:`~repro.datasets.corpus.PasswordCorpus`
and return plain dict/list structures that the benchmark harness
formats next to the paper's published numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.profiles import LENGTH_BUCKETS, length_bucket
from repro.util.charclasses import COMPOSITION_PATTERNS


def top_k_table(corpus: PasswordCorpus, k: int = 10
                ) -> Tuple[List[Tuple[str, int]], float]:
    """Top-k passwords and their aggregate share (Table VIII).

    >>> corpus = PasswordCorpus(["a", "a", "a", "b", "c"])
    >>> table, share = top_k_table(corpus, k=1)
    >>> table, round(share, 2)
    ([('a', 3)], 0.6)
    """
    table = corpus.most_common(k)
    share = sum(count for _, count in table) / corpus.total
    return table, share


def composition_table(corpus: PasswordCorpus) -> Dict[str, float]:
    """Fraction of entries in each Table-IX composition class.

    Counts are weighted by multiplicity, as the paper's percentages
    are over all (non-unique) passwords.
    """
    totals = {name: 0 for name in COMPOSITION_PATTERNS}
    for password, count in corpus.items():
        for name, pattern in COMPOSITION_PATTERNS.items():
            if pattern.search(password):
                totals[name] += count
    return {
        name: totals[name] / corpus.total for name in COMPOSITION_PATTERNS
    }


def length_table(corpus: PasswordCorpus) -> Dict[str, float]:
    """Fraction of entries per Table-X length bucket."""
    totals = {bucket: 0 for bucket in LENGTH_BUCKETS}
    for password, count in corpus.items():
        totals[length_bucket(len(password))] += count
    return {
        bucket: totals[bucket] / corpus.total for bucket in LENGTH_BUCKETS
    }


def overlap_fraction(first: PasswordCorpus, second: PasswordCorpus,
                     k: int = 0) -> float:
    """Fraction of ``first``'s passwords also present in ``second``.

    With ``k > 0`` the comparison is restricted to each corpus's top-k
    lists (Fig. 12 plots the overlap at varied thresholds); with
    ``k == 0`` all unique passwords are compared.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k:
        ours = {password for password, _ in first.most_common(k)}
        theirs = {password for password, _ in second.most_common(k)}
    else:
        ours = set(first.unique_passwords())
        theirs = set(second.unique_passwords())
    if not ours:
        return 0.0
    return len(ours & theirs) / len(ours)


def overlap_curve(first: PasswordCorpus, second: PasswordCorpus,
                  thresholds: Sequence[int]) -> List[Tuple[int, float]]:
    """Overlap fraction at each top-k threshold (one Fig. 12 series)."""
    return [(k, overlap_fraction(first, second, k=k)) for k in thresholds]


def summary_row(corpus: PasswordCorpus) -> Dict[str, object]:
    """One Table-VII-style row for a corpus."""
    return {
        "dataset": corpus.name,
        "service": corpus.service,
        "location": corpus.location,
        "language": corpus.language,
        "unique": corpus.unique,
        "total": corpus.total,
    }
