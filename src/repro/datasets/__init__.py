"""Password corpora: containers, loaders, profiles and synthesis.

* :mod:`~repro.datasets.corpus` — :class:`PasswordCorpus`, the
  multiset container with splits (the paper's 1/4-1/4 methodology).
* :mod:`~repro.datasets.loaders` — plain and ``count password`` file
  formats, so real leaked lists can be dropped in when available.
* :mod:`~repro.datasets.profiles` — the published statistics of the 11
  corpora (Tables VII-X), used both to calibrate synthesis and as the
  paper-side numbers in benchmark output.
* :mod:`~repro.datasets.synthetic` — the survey-grounded generator
  that replaces the (offline-unavailable) leaked lists; see DESIGN.md
  §4 for the substitution argument.
* :mod:`~repro.datasets.stats` — top-k, composition, length and
  overlap statistics (Tables VIII-X, Fig. 12).
* :mod:`~repro.datasets.zipf` — frequency-distribution analysis:
  Zipf fits, counts-of-counts, and the ideal meter's ``f_pw >= 4``
  coverage bound (Sec. II-B / V-D).
"""

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.loaders import load_corpus, save_corpus
from repro.datasets.profiles import DatasetProfile, PROFILES, profile
from repro.datasets.synthetic import SyntheticEcosystem, generate_corpus
from repro.datasets.stats import (
    top_k_table,
    composition_table,
    length_table,
    overlap_fraction,
    overlap_curve,
)
from repro.datasets.zipf import (
    ZipfFit,
    fit_zipf,
    frequency_spectrum,
    ideal_meter_coverage,
)

__all__ = [
    "ZipfFit",
    "fit_zipf",
    "frequency_spectrum",
    "ideal_meter_coverage",
    "PasswordCorpus",
    "load_corpus",
    "save_corpus",
    "DatasetProfile",
    "PROFILES",
    "profile",
    "SyntheticEcosystem",
    "generate_corpus",
    "top_k_table",
    "composition_table",
    "length_table",
    "overlap_fraction",
    "overlap_curve",
]
