"""Published statistics of the 11 password datasets (Tables VII-X).

Every number here is transcribed from the paper:

* Table VII — service, location, language, unique/total counts;
* Table VIII — the top-10 most popular passwords and the share of the
  dataset they cover;
* Table IX — character-composition fractions (14 regex classes);
* Table X — length distribution (buckets 1-5, 6, ..., 14, 15+).

Profiles serve two roles: they calibrate the synthetic corpus
generator, and they are the paper-side columns that benchmark output
prints next to the measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

#: Table IX column order (regex keys match
#: :data:`repro.util.charclasses.COMPOSITION_PATTERNS`).
COMPOSITION_COLUMNS: Sequence[str] = (
    "^[a-z]+$", "[a-z]", "^[A-Z]+$", "[A-Z]", "^[A-Za-z]+$", "[a-zA-Z]",
    "^[0-9]+$", "[0-9]", "symbol only", "^[a-zA-Z0-9]+$",
    "^[0-9]+[a-z]+$", "^[a-zA-Z]+[0-9]+$", "^[0-9]+[a-zA-Z]+$", "^[a-z]+1$",
)

#: Table X bucket order.
LENGTH_BUCKETS: Sequence[str] = (
    "1-5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15+",
)


@dataclass(frozen=True)
class DatasetProfile:
    """One dataset's published statistics."""

    name: str
    service: str
    location: str
    language: str
    unique_passwords: int
    total_passwords: int
    top10: Tuple[str, ...]
    top10_share: float
    composition: Dict[str, float]          # Table IX, fractions
    length_distribution: Dict[str, float]  # Table X, fractions
    #: Paper notes on password policy (affects synthesis constraints).
    min_length: int = 1
    max_length: int = 64

    @property
    def duplication_factor(self) -> float:
        """Average copies per distinct password."""
        return self.total_passwords / self.unique_passwords


def _composition(values: Sequence[float]) -> Dict[str, float]:
    if len(values) != len(COMPOSITION_COLUMNS):
        raise ValueError("composition row has wrong arity")
    return {
        column: value / 100.0
        for column, value in zip(COMPOSITION_COLUMNS, values)
    }


def _lengths(values: Sequence[float]) -> Dict[str, float]:
    if len(values) != len(LENGTH_BUCKETS):
        raise ValueError("length row has wrong arity")
    return {
        bucket: value / 100.0
        for bucket, value in zip(LENGTH_BUCKETS, values)
    }


PROFILES: Dict[str, DatasetProfile] = {
    "tianya": DatasetProfile(
        name="tianya", service="Social forum", location="China",
        language="Chinese",
        unique_passwords=12_898_437, total_passwords=30_901_241,
        top10=("123456", "111111", "000000", "123456789", "123123",
               "123321", "5201314", "12345678", "666666", "111222tianya"),
        top10_share=0.0743,
        composition=_composition((9.91, 34.63, 0.18, 2.96, 10.24, 35.66,
                                  63.77, 89.49, 0.03, 98.08, 4.12, 15.73,
                                  4.39, 0.12)),
        length_distribution=_lengths((1.79, 33.62, 13.95, 18.08, 9.68,
                                      10.28, 5.59, 2.90, 1.45, 1.33, 1.34)),
    ),
    "dodonew": DatasetProfile(
        name="dodonew", service="Gaming&E-commerce", location="China",
        language="Chinese",
        unique_passwords=10_135_260, total_passwords=16_258_891,
        top10=("123456", "a123456", "123456789", "111111", "5201314",
               "123123", "a321654", "12345", "000000", "123456a"),
        top10_share=0.0328,
        composition=_composition((10.30, 66.32, 0.30, 3.67, 10.92, 69.05,
                                  30.76, 88.52, 0.02, 98.33, 7.55, 45.74,
                                  7.93, 1.40)),
        length_distribution=_lengths((2.46, 12.31, 15.87, 20.86, 22.89,
                                      16.37, 5.21, 1.76, 0.89, 0.56, 0.83)),
    ),
    "csdn": DatasetProfile(
        name="csdn", service="Programmer forum", location="China",
        language="Chinese",
        unique_passwords=4_037_605, total_passwords=6_428_277,
        top10=("123456789", "12345678", "11111111", "dearbook", "00000000",
               "123123123", "1234567890", "88888888", "111111111",
               "147258369"),
        top10_share=0.1044,
        composition=_composition((11.64, 51.39, 0.47, 4.57, 12.35, 54.33,
                                  45.01, 87.10, 0.03, 96.31, 5.88, 28.45,
                                  6.46, 0.24)),
        length_distribution=_lengths((0.63, 1.29, 0.26, 36.38, 24.15,
                                      14.48, 9.78, 5.75, 2.61, 2.41, 2.26)),
        min_length=8,  # the paper notes CSDN's length >= 8 policy
    ),
    "zhenai": DatasetProfile(
        name="zhenai", service="Dating site", location="China",
        language="Chinese",
        unique_passwords=3_521_764, total_passwords=5_260_229,
        top10=("123456", "123456789", "111111", "000000", "5201314",
               "123123", "1314520", "123321", "666666", "1234567890"),
        top10_share=0.0746,
        composition=_composition((6.41, 37.33, 0.24, 3.40, 6.74, 39.54,
                                  59.52, 92.87, 0.02, 95.79, 5.24, 21.09,
                                  5.69, 0.08)),
        length_distribution=_lengths((0.02, 23.84, 11.97, 13.51, 13.76,
                                      9.13, 12.46, 4.96, 3.06, 2.95, 4.36)),
        min_length=6,
    ),
    "weibo": DatasetProfile(
        name="weibo", service="Social forum", location="China",
        language="Chinese",
        unique_passwords=2_828_618, total_passwords=4_730_662,
        top10=("123456", "123456789", "111111", "0", "123123", "5201314",
               "12345", "12345678", "123", "123321"),
        top10_share=0.0717,
        composition=_composition((19.07, 44.77, 0.64, 3.66, 20.55, 46.71,
                                  53.04, 78.78, 0.06, 97.79, 2.80, 18.74,
                                  2.91, 1.24)),
        length_distribution=_lengths((6.64, 25.36, 18.18, 20.24, 12.05,
                                      7.37, 6.80, 1.44, 0.75, 0.49, 0.67)),
    ),
    "rockyou": DatasetProfile(
        name="rockyou", service="Social forum", location="USA",
        language="English",
        unique_passwords=14_326_970, total_passwords=32_581_870,
        top10=("123456", "12345", "123456789", "password", "iloveyou",
               "princess", "1234567", "rockyou", "12345678", "abc123"),
        top10_share=0.0205,
        composition=_composition((41.71, 80.58, 1.50, 5.94, 44.07, 83.89,
                                  15.94, 54.04, 0.02, 96.25, 2.54, 30.18,
                                  2.75, 4.55)),
        length_distribution=_lengths((4.31, 26.05, 19.29, 19.98, 12.12,
                                      9.06, 3.57, 2.10, 1.32, 0.86, 1.33)),
    ),
    "battlefield": DatasetProfile(
        name="battlefield", service="Game site", location="USA",
        language="English",
        unique_passwords=417_453, total_passwords=542_386,
        top10=("123456", "password", "qwerty", "123456789", "starwars",
               "killer", "12345678", "dragon", "battlefield", "123123"),
        top10_share=0.0114,
        composition=_composition((32.11, 89.71, 0.29, 9.60, 34.01, 90.69,
                                  9.23, 65.49, 0.01, 98.06, 3.05, 39.58,
                                  3.39, 5.08)),
        length_distribution=_lengths((0.00, 20.29, 14.67, 28.75, 14.91,
                                      10.25, 5.02, 3.12, 1.40, 0.79, 0.79)),
        min_length=6,
    ),
    "yahoo": DatasetProfile(
        name="yahoo", service="Web portal", location="USA",
        language="English",
        unique_passwords=342_510, total_passwords=442_834,
        top10=("123456", "password", "welcome", "ninja", "abc123",
               "123456789", "12345678", "sunshine", "princess", "qwerty"),
        top10_share=0.0101,
        composition=_composition((33.09, 92.83, 0.40, 8.51, 34.64, 94.06,
                                  5.89, 64.74, 0.00, 97.15, 5.31, 41.85,
                                  5.64, 4.80)),
        length_distribution=_lengths((1.93, 17.98, 14.82, 26.90, 14.90,
                                      12.37, 4.79, 4.91, 0.60, 0.34, 0.47)),
    ),
    "phpbb": DatasetProfile(
        name="phpbb", service="Programmer forum", location="USA",
        language="English",
        unique_passwords=184_341, total_passwords=255_373,
        top10=("123456", "password", "phpbb", "qwerty", "12345",
               "12345678", "letmein", "111111", "1234", "123456789"),
        top10_share=0.0279,
        composition=_composition((50.18, 86.18, 0.74, 7.70, 53.07, 87.83,
                                  12.06, 46.14, 0.03, 98.34, 2.03, 20.94,
                                  2.35, 2.33)),
        length_distribution=_lengths((9.56, 27.22, 17.69, 27.20, 9.09,
                                      5.29, 2.08, 1.05, 0.43, 0.21, 0.18)),
    ),
    "singles": DatasetProfile(
        name="singles", service="Christian dating", location="USA",
        language="English",
        unique_passwords=12_233, total_passwords=16_248,
        top10=("123456", "jesus", "password", "12345678", "christ", "love",
               "princess", "jesus1", "sunshine", "1234567"),
        top10_share=0.0340,
        composition=_composition((60.21, 87.84, 1.92, 8.14, 65.82, 90.42,
                                  9.58, 34.06, 0.00, 99.79, 1.77, 19.68,
                                  1.92, 2.73)),
        length_distribution=_lengths((13.10, 32.05, 23.20, 31.65, 0.0,
                                      0.0, 0.0, 0.0, 0.0, 0.0, 0.0)),
        max_length=8,  # the site rejects passwords of length >= 9
    ),
    "faithwriters": DatasetProfile(
        name="faithwriters", service="Christian writing", location="USA",
        language="English",
        unique_passwords=8_346, total_passwords=9_708,
        top10=("123456", "writer", "jesus1", "christ", "blessed", "john316",
               "jesuschrist", "password", "heaven", "faithwriters"),
        top10_share=0.0217,
        composition=_composition((54.37, 91.74, 1.16, 8.84, 58.98, 93.64,
                                  6.36, 40.88, 0.00, 99.52, 2.37, 25.45,
                                  2.73, 4.13)),
        length_distribution=_lengths((1.17, 31.97, 20.95, 22.71, 10.35,
                                      5.98, 3.24, 1.87, 0.83, 0.32, 0.58)),
    ),
}

#: Table VII row order.
DATASET_ORDER: Sequence[str] = (
    "tianya", "dodonew", "csdn", "zhenai", "weibo", "rockyou",
    "battlefield", "yahoo", "phpbb", "singles", "faithwriters",
)


def profile(name: str) -> DatasetProfile:
    """Look up a profile by (case-insensitive) dataset name.

    >>> profile("CSDN").min_length
    8
    """
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_ORDER)}"
        )
    return PROFILES[key]


def length_bucket(length: int) -> str:
    """Table X bucket for a password length.

    >>> length_bucket(3), length_bucket(9), length_bucket(20)
    ('1-5', '9', '15+')
    """
    if length <= 5:
        return "1-5"
    if length >= 15:
        return "15+"
    return str(length)
