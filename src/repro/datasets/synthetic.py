"""Survey-grounded synthetic password corpora.

The real leaked lists are unavailable offline, so experiments run on
synthetic stand-ins built from the paper's *own* behavioural findings
(DESIGN.md §4 records the substitution argument):

* A shared :class:`SyntheticEcosystem` holds one deterministic **user
  population per language**.  Every user owns a handful of base
  passwords (a memorable word, a digit string, combinations).
* Per service registration, the generator samples the user's *action*
  — reuse / modify / create-new — with the survey's probabilities
  (:class:`repro.survey.data.BehaviorModel`), and for modifications a
  transformation rule (concatenate, capitalize, leet, ...) with the
  survey's rule weights.  Password **reuse across services is
  therefore the generating mechanism**, exactly the phenomenon
  fuzzyPSM models.
* Each corpus is calibrated to its :class:`DatasetProfile`: the top-10
  list with its published share, the character-composition mix of
  Table IX, the length distribution of Table X and the unique/total
  duplication factor of Table VII.

Everything is seeded and deterministic: the same ecosystem seed yields
byte-identical corpora.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datasets.corpus import PasswordCorpus
from repro.datasets.profiles import DatasetProfile, PROFILES, profile as get_profile
from repro.survey.data import BehaviorModel
from repro.util.leet import LEET_BY_LETTER

# --- language material ------------------------------------------------------

_ENGLISH_WORDS: Sequence[str] = (
    "password", "iloveyou", "princess", "sunshine", "shadow", "monkey",
    "dragon", "butterfly", "superman", "batman", "soccer", "football",
    "baseball", "jordan", "hunter", "ranger", "summer", "winter",
    "flower", "angel", "lovely", "chocolate", "cookie", "babygirl",
    "jessica", "michael", "ashley", "daniel", "charlie", "thomas",
    "jasmine", "michelle", "anthony", "matthew", "andrew", "joshua",
    "amanda", "nicole", "hannah", "taylor", "tigger", "pepper",
    "ginger", "cheese", "banana", "orange", "purple", "silver",
    "golden", "master", "killer", "welcome", "freedom", "forever",
    "whatever", "secret", "magic", "mustang", "camaro", "harley",
    "yankees", "cowboys", "steelers", "lakers", "arsenal", "chelsea",
    "liverpool", "jesus", "christ", "blessed", "heaven", "grace",
    "faith", "peace", "trinity", "genesis", "writer", "united",
    "scooter", "buster", "bailey", "maggie", "molly", "sophie",
    "chicken", "monster", "rockstar", "skater", "gamer", "ninja",
    "pokemon", "naruto", "starwars", "matrix", "qwerty", "computer",
    "internet", "samsung", "nintendo", "google", "hotmail",
)

_ENGLISH_SUFFIX_WORDS: Sequence[str] = (
    "boy", "girl", "man", "dog", "cat", "one", "star", "baby", "love",
)

#: Pinyin names and words — the letter material of Chinese passwords.
_CHINESE_WORDS: Sequence[str] = (
    "wanglei", "zhangwei", "liyang", "liuyang", "chenjing", "yangyang",
    "zhaolei", "wujing", "zhouyan", "xuming", "sunli", "mayun",
    "zhuhai", "huge", "guojing", "linfeng", "hejun", "gaofei",
    "liangchen", "zhengshuang", "xiaoming", "xiaolong", "xiaofang",
    "meimei", "lili", "nana", "feifei", "yangguang", "woaini",
    "wangyu", "zhanghua", "lijun", "liwei", "wangfang", "lina",
    "zhangmin", "liuwei", "wangjing", "zhangjie", "yangliu",
    "haoren", "tiantian", "beibei", "doudou", "maomao", "xixi",
    "longlong", "pengyou", "laopo", "laogong", "baobao", "baobei",
    "shuaige", "meinv", "caishen", "facai", "gongxi", "zhongguo",
    "beijing", "shanghai", "tianya", "taobao", "wangba", "diannao",
)

#: Digit motifs that dominate Chinese datasets (Table VIII): love codes
#: (520 = "I love you", 1314 = "forever"), repeats, ladders.
_CHINESE_DIGIT_MOTIFS: Sequence[str] = (
    "520", "1314", "5201314", "1314520", "521", "888", "666", "168",
)

_COMMON_SYMBOLS = "!@#.*_-"


# --- the user population -------------------------------------------------------


#: Pinyin syllables for composing full names (surname + given name),
#: giving the word distribution a realistic heavy tail: a small head of
#: very common words plus thousands of rarer compositions.
_PINYIN_SURNAMES: Sequence[str] = (
    "wang", "li", "zhang", "liu", "chen", "yang", "huang", "zhao",
    "wu", "zhou", "xu", "sun", "ma", "zhu", "hu", "guo", "lin", "he",
    "gao", "liang", "zheng", "luo", "song", "xie", "tang", "han",
    "cao", "deng", "feng", "peng",
)

_PINYIN_GIVEN: Sequence[str] = (
    "wei", "fang", "min", "jing", "li", "qiang", "lei", "jun", "yang",
    "yong", "yan", "jie", "juan", "tao", "ming", "chao", "xia", "ping",
    "gang", "hui", "hua", "long", "bin", "bo", "fei", "hao", "kai",
    "mei", "na", "ting",
)

_ENGLISH_FIRST: Sequence[str] = (
    "mike", "john", "dave", "chris", "alex", "sam", "tom", "ben",
    "jake", "luke", "matt", "nick", "ryan", "adam", "joe", "dan",
    "anna", "emma", "lily", "kate", "lucy", "sara", "beth", "jane",
    "amy", "zoe", "mia", "ella", "rose", "ruby",
)


def _compose_word(rng: random.Random, language: str) -> str:
    """A user's memorable word: common head or composed long tail."""
    if language == "Chinese":
        if rng.random() < 0.30:
            return _CHINESE_WORDS[rng.randrange(len(_CHINESE_WORDS))]
        name = _PINYIN_SURNAMES[rng.randrange(len(_PINYIN_SURNAMES))]
        name += _PINYIN_GIVEN[rng.randrange(len(_PINYIN_GIVEN))]
        if rng.random() < 0.4:
            name += _PINYIN_GIVEN[rng.randrange(len(_PINYIN_GIVEN))]
        return name
    if rng.random() < 0.35:
        return _ENGLISH_WORDS[rng.randrange(len(_ENGLISH_WORDS))]
    first = _ENGLISH_FIRST[rng.randrange(len(_ENGLISH_FIRST))]
    if rng.random() < 0.5:
        return first + _ENGLISH_SUFFIX_WORDS[
            rng.randrange(len(_ENGLISH_SUFFIX_WORDS))
        ]
    return first + _ENGLISH_WORDS[rng.randrange(len(_ENGLISH_WORDS))]


class SyntheticUser:
    """One user's reusable password material (deterministic per index)."""

    __slots__ = (
        "word", "second_word", "digits", "short_digits", "symbol",
        "caps_tendency", "leet_tendency",
    )

    def __init__(self, index: int, language: str, seed: int) -> None:
        rng = random.Random(f"{seed}:{language}:{index}")
        self.word = _compose_word(rng, language)
        self.second_word = _ENGLISH_SUFFIX_WORDS[
            rng.randrange(len(_ENGLISH_SUFFIX_WORDS))
        ]
        self.digits = _make_digit_string(rng, language)
        self.short_digits = str(rng.randrange(0, 100)).zfill(
            rng.choice((1, 2))
        )
        self.symbol = _COMMON_SYMBOLS[rng.randrange(len(_COMMON_SYMBOLS))]
        self.caps_tendency = rng.random() < 0.25
        self.leet_tendency = rng.random() < 0.10

    # The user's "existing password" for a composition class.
    def base_password(self, password_class: str) -> str:
        if password_class == "digits":
            return self.digits
        if password_class == "lower":
            return self.word
        if password_class == "letters_digits":
            return self.word + self.short_digits
        if password_class == "digits_letters":
            return self.short_digits + self.word
        if password_class == "symbol":
            return self.word + self.symbol + self.short_digits
        raise ValueError(f"unknown class {password_class!r}")


def _make_digit_string(rng: random.Random, language: str) -> str:
    """A memorable digit string: date, repeat, ladder or love-code."""
    style = rng.random()
    if style < 0.35:  # birth date
        year = rng.randrange(1960, 2005)
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 29)
        form = rng.random()
        if form < 0.4:
            return f"{year}{month:02d}{day:02d}"
        if form < 0.7:
            return f"{month:02d}{day:02d}{year}"
        return f"{year % 100:02d}{month:02d}{day:02d}"
    if style < 0.55:  # repeated digit
        digit = str(rng.randrange(10))
        return digit * rng.choice((6, 6, 7, 8))
    if style < 0.7:  # ladder
        ladders = ("123456", "123456789", "12345678", "654321",
                   "112233", "121212", "123123", "147258369")
        return ladders[rng.randrange(len(ladders))]
    if language == "Chinese" and style < 0.85:  # love code + filler
        motif = _CHINESE_DIGIT_MOTIFS[
            rng.randrange(len(_CHINESE_DIGIT_MOTIFS))
        ]
        filler = str(rng.randrange(10, 100))
        return motif + filler if rng.random() < 0.5 else filler + motif
    # phone/QQ-like
    length = rng.choice((8, 9, 10)) if language == "Chinese" else 7
    return "".join(str(rng.randrange(10)) for _ in range(length))


# --- the ecosystem ----------------------------------------------------------------


class SyntheticEcosystem:
    """A shared user population; corpora generated from it overlap.

    Args:
        seed: master seed; everything derives deterministically.
        population: number of users per language.  Services draw from a
            *prefix* of the population sized by their duplication
            factor, so the same heavy users appear on every service —
            the source of cross-service password reuse (Fig. 12).
    """

    def __init__(self, seed: int = 0, population: int = 100_000) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        self.seed = seed
        self.population = population
        self._users: Dict[Tuple[str, int], SyntheticUser] = {}
        self._behavior = BehaviorModel()

    def user(self, language: str, index: int) -> SyntheticUser:
        key = (language, index)
        if key not in self._users:
            self._users[key] = SyntheticUser(index, language, self.seed)
        return self._users[key]

    # --- corpus generation ------------------------------------------------

    def generate(self, dataset: Union[str, DatasetProfile],
                 total: int = 20_000,
                 seed: Optional[int] = None) -> PasswordCorpus:
        """Generate a corpus calibrated to a dataset profile.

        Args:
            dataset: profile name (``"csdn"``) or a profile object.
            total: number of password entries (with duplicates).
            seed: per-service seed (defaults to a hash of the name).
        """
        profile = (
            dataset if isinstance(dataset, DatasetProfile)
            else get_profile(dataset)
        )
        if total < 1:
            raise ValueError("total must be positive")
        rng = random.Random(
            f"{self.seed}:{profile.name}:{seed if seed is not None else 0}"
        )
        # Active users on this service: sized so that the expected
        # copies-per-user match the dataset's duplication factor.
        active_users = max(
            1, min(self.population, int(total / profile.duplication_factor))
        )
        class_weights = _class_weights(profile)
        counts: Dict[str, int] = {}
        top10 = profile.top10
        # Zipf-ish weights over the top-10 list.
        top10_weights = [1.0 / (rank ** 0.9) for rank in range(1, 11)]
        top10_total = sum(top10_weights)
        for _ in range(total):
            if rng.random() < profile.top10_share:
                password = _weighted_choice(top10, top10_weights,
                                            top10_total, rng)
            else:
                password = self._generate_one(
                    profile, rng, active_users, class_weights
                )
            counts[password] = counts.get(password, 0) + 1
        return PasswordCorpus(
            counts,
            name=profile.name,
            service=profile.service,
            location=profile.location,
            language=profile.language,
        )

    def _generate_one(self, profile: DatasetProfile, rng: random.Random,
                      active_users: int,
                      class_weights: List[Tuple[str, float]]) -> str:
        password_class = _weighted_class(class_weights, rng)
        user = self.user(profile.language, rng.randrange(active_users))
        action = self._behavior.choose_action(rng)
        if action == "new":
            # A brand-new password: material from a random other user,
            # which keeps the marginal distribution but breaks the link
            # to this user's existing passwords.
            donor = self.user(
                profile.language, rng.randrange(self.population)
            )
            password = donor.base_password(password_class)
        else:
            password = user.base_password(password_class)
            if action == "modify":
                password = self._modify(password, password_class, user, rng)
        password = _fit_length(password, password_class, profile, rng)
        return password

    def _modify(self, password: str, password_class: str,
                user: SyntheticUser, rng: random.Random) -> str:
        """Apply one survey-weighted transformation rule."""
        rule = self._behavior.choose_rule(rng)
        if rule == "concatenate_digits":
            extra = user.short_digits if rng.random() < 0.5 else str(
                rng.randrange(10)
            )
            placement = self._behavior.choose_placement(rng)
            if password_class in ("digits", "lower"):
                # Keep the composition class: digits get digits, and
                # lower-only passwords extend with letters instead.
                extra = (
                    str(rng.randrange(10))
                    if password_class == "digits"
                    else user.second_word
                )
            return _place(password, extra, placement)
        if rule == "concatenate_symbol":
            if password_class != "symbol":
                # Symbols would leave the target class; double the tail
                # instead (a common minimal tweak).
                return password + password[-1]
            return _place(password, user.symbol,
                          self._behavior.choose_placement(rng))
        if rule == "capitalize":
            if password[:1].islower() and password_class != "digits":
                return password[:1].upper() + password[1:]
            return password + password[-1]
        if rule == "leet":
            if password_class in ("digits",):
                return password + password[-1]
            return _apply_one_leet(password, rng)
        if rule == "reverse":
            return password[::-1]
        # site_info: a short service tag, kept alphanumeric.
        return password + "1"

    def behavior(self) -> BehaviorModel:
        return self._behavior


# --- helpers ------------------------------------------------------------------


def _class_weights(profile: DatasetProfile) -> List[Tuple[str, float]]:
    """Exclusive composition-class weights derived from Table IX."""
    comp = profile.composition
    digits = comp["^[0-9]+$"]
    lower = comp["^[a-z]+$"]
    letters_digits = comp["^[a-zA-Z]+[0-9]+$"]
    digits_letters = comp["^[0-9]+[a-zA-Z]+$"]
    symbol = max(1.0 - comp["^[a-zA-Z0-9]+$"], 0.005)
    weights = [
        ("digits", digits),
        ("lower", lower),
        ("letters_digits", letters_digits),
        ("digits_letters", digits_letters),
        ("symbol", symbol),
    ]
    covered = sum(weight for _, weight in weights)
    remainder = max(1.0 - covered, 0.0)
    # Spread the remainder (interleaved/uppercase forms) over the two
    # dominant mixed classes.
    return [
        ("digits", digits + remainder * 0.2),
        ("lower", lower + remainder * 0.2),
        ("letters_digits", letters_digits + remainder * 0.4),
        ("digits_letters", digits_letters + remainder * 0.2),
        ("symbol", symbol),
    ]


def _weighted_class(weights: List[Tuple[str, float]],
                    rng: random.Random) -> str:
    total = sum(weight for _, weight in weights)
    roll = rng.random() * total
    cumulative = 0.0
    for name, weight in weights:
        cumulative += weight
        if roll < cumulative:
            return name
    return weights[-1][0]


def _weighted_choice(items: Sequence[str], weights: Sequence[float],
                     total: float, rng: random.Random) -> str:
    roll = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if roll < cumulative:
            return item
    return items[-1]


def _place(password: str, extra: str, placement: str) -> str:
    if placement == "beginning":
        return extra + password
    if placement == "middle":
        middle = len(password) // 2
        return password[:middle] + extra + password[middle:]
    return password + extra


def _apply_one_leet(password: str, rng: random.Random) -> str:
    candidates = [
        (offset, LEET_BY_LETTER[ch])
        for offset, ch in enumerate(password)
        if ch in LEET_BY_LETTER
    ]
    if not candidates:
        return password + "1"
    offset, substitute = candidates[rng.randrange(len(candidates))]
    return password[:offset] + substitute + password[offset + 1:]


def _sample_length(profile: DatasetProfile, rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for bucket, fraction in profile.length_distribution.items():
        cumulative += fraction
        if roll < cumulative:
            return _bucket_to_length(bucket, rng)
    return 8


def _bucket_to_length(bucket: str, rng: random.Random) -> int:
    if bucket == "1-5":
        return rng.choice((4, 5, 5))
    if bucket == "15+":
        return rng.choice((15, 16, 17, 18))
    return int(bucket)


def _fit_length(password: str, password_class: str,
                profile: DatasetProfile, rng: random.Random) -> str:
    """Nudge the password towards the profile's length distribution.

    Digit strings are made to match the sampled target exactly (they
    pad/truncate naturally); word-based passwords are only padded up to
    the policy minimum, preserving their linguistic shape.
    """
    target = _sample_length(profile, rng)
    target = max(target, profile.min_length)
    if profile.max_length < 64:
        target = min(target, profile.max_length)
        password = password[:profile.max_length]
    if password_class == "digits":
        while len(password) < target:
            password += password[-1] if rng.random() < 0.5 else str(
                rng.randrange(10)
            )
        if len(password) > target and target >= profile.min_length:
            password = password[:target]
        return password
    while len(password) < profile.min_length:
        if password_class == "lower":
            # Preserve the letters-only class: extend with letters.
            filler = _ENGLISH_SUFFIX_WORDS[
                rng.randrange(len(_ENGLISH_SUFFIX_WORDS))
            ]
            password += filler
        else:
            password += str(rng.randrange(10))
    return password


def generate_corpus(dataset: Union[str, DatasetProfile],
                    total: int = 20_000, seed: int = 0,
                    ecosystem: Optional[SyntheticEcosystem] = None
                    ) -> PasswordCorpus:
    """Convenience one-shot generation with a private ecosystem.

    For cross-service experiments (overlap, real-world training
    scenarios) share one :class:`SyntheticEcosystem` across calls
    instead, so the corpora are correlated.
    """
    ecosystem = ecosystem or SyntheticEcosystem(seed=seed)
    return ecosystem.generate(dataset, total=total, seed=seed)
