"""Zipf-law analysis of password frequency distributions.

The paper's characterisation tables (VIII-X) skip the frequency
distribution "due to space constraints", but the machinery depends on
it throughout: the ideal meter's reliability bound (``f_pw >= 4``,
Sec. II-B), the top-10 shares of Table VIII, and the synthetic
generator's calibration all assume the familiar Zipf-like decay of
password popularity (Bonneau S&P'12; Wang et al.'s PDF-Zipf model).

This module provides:

* :func:`frequency_spectrum` — how many distinct passwords occur
  exactly ``f`` times (the "counts of counts" view);
* :func:`fit_zipf` — a least-squares fit of ``log f_r = log C - s log r``
  on the rank-frequency curve, returning the exponent ``s`` and fit
  quality;
* :func:`ideal_meter_coverage` — the fraction of corpus mass the
  practically ideal meter can reliably rank (``f_pw >= threshold``),
  quantifying the Sec. V-D evaluation cutoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.corpus import PasswordCorpus


def frequency_spectrum(corpus: PasswordCorpus) -> Dict[int, int]:
    """``frequency -> number of distinct passwords with it``.

    >>> corpus = PasswordCorpus(["a", "a", "a", "b", "b", "c"])
    >>> frequency_spectrum(corpus)
    {1: 1, 2: 1, 3: 1}
    """
    spectrum: Dict[int, int] = {}
    for _, count in corpus.items():
        spectrum[count] = spectrum.get(count, 0) + 1
    return dict(sorted(spectrum.items()))


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of the rank-frequency curve."""

    exponent: float       # s in f_r ~ C / r^s
    intercept: float      # log10(C)
    r_squared: float      # goodness of fit in log-log space
    ranks_used: int

    def predicted_frequency(self, rank: int) -> float:
        """Model frequency at a rank (count units)."""
        if rank < 1:
            raise ValueError("rank must be positive")
        return 10.0 ** (self.intercept - self.exponent * math.log10(rank))


def fit_zipf(corpus: PasswordCorpus, min_frequency: int = 2,
             max_ranks: int = 10_000) -> ZipfFit:
    """Fit ``log10 f_r = intercept - s * log10 r`` by least squares.

    Ranks whose frequency falls below ``min_frequency`` are excluded —
    the singleton tail is sampling noise, the same reason the paper
    restricts ideal-meter comparisons to ``f_pw >= 4``.

    >>> corpus = PasswordCorpus({f"pw{r}": max(1, 1000 // r)
    ...                          for r in range(1, 200)})
    >>> fit = fit_zipf(corpus)
    >>> 0.8 < fit.exponent < 1.2
    True
    >>> fit.r_squared > 0.99
    True
    """
    points: List[Tuple[float, float]] = []
    for rank, (_, count) in enumerate(corpus.most_common(max_ranks),
                                      start=1):
        if count < min_frequency:
            break
        points.append((math.log10(rank), math.log10(count)))
    if len(points) < 3:
        raise ValueError(
            "need at least three ranks with frequency >= "
            f"{min_frequency} to fit"
        )
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    ss_xx = sum((x - mean_x) ** 2 for x, _ in points)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    ss_yy = sum((y - mean_y) ** 2 for _, y in points)
    if ss_xx == 0:
        raise ValueError("degenerate rank axis")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    if ss_yy == 0:
        r_squared = 1.0
    else:
        r_squared = (ss_xy * ss_xy) / (ss_xx * ss_yy)
    return ZipfFit(
        exponent=-slope,
        intercept=intercept,
        r_squared=r_squared,
        ranks_used=n,
    )


def ideal_meter_coverage(corpus: PasswordCorpus,
                         threshold: int = 4) -> Tuple[float, float]:
    """(mass fraction, unique fraction) with ``f_pw >= threshold``.

    The practically ideal meter's empirical probabilities carry a
    relative standard error of about ``1 / sqrt(f_pw)`` (Sec. II-B),
    so the paper only trusts comparisons on passwords at or above the
    threshold.  This reports how much of a corpus that covers.

    >>> corpus = PasswordCorpus(["a"] * 8 + ["b"] * 4 + ["c", "d"])
    >>> ideal_meter_coverage(corpus, threshold=4)
    (0.8571428571428571, 0.5)
    """
    if threshold < 1:
        raise ValueError("threshold must be positive")
    if corpus.total == 0:
        raise ValueError("empty corpus")
    mass = 0
    unique = 0
    for _, count in corpus.items():
        if count >= threshold:
            mass += count
            unique += 1
    return mass / corpus.total, unique / corpus.unique
