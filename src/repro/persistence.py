"""Saving and loading trained meters: JSON and binary model files.

Trained meters are artefacts a deployment builds once and ships; this
module gives every registered :class:`Persistable` meter a common
on-disk format::

    from repro import FuzzyPSM
    from repro.persistence import save_meter, load_meter

    meter = FuzzyPSM.train(base, training)
    save_meter(meter, "fuzzy.json")
    meter = load_meter("fuzzy.json")   # type restored automatically

Files carry a ``kind`` tag, the meter's capability list and a format
version, so loading dispatches through the meter registry
(:mod:`repro.meters.registry`) and future format changes stay
detectable.  Registering a new ``Persistable`` meter is all it takes
to make it saveable and loadable — there is no per-kind table here.

Output is deterministic: keys are sorted, so saving the same model
twice produces byte-identical files (required for artefact diffing
and content-addressed caches).

Meters that additionally declare ``binary-persistable``
(``to_buffers``/``from_buffers``) support a second, array-backed
format — ``save_meter(meter, path, fmt="binary")``.  A RockYou-scale
JSON model spends its load time inside the JSON parser building
per-key Python objects; the binary format instead stores every count
table as a flat ``int64`` column and every string table as one UTF-8
blob plus a length column, memory-maps the file and reads the columns
zero-copy.  The layout::

    magic "FPSMBIN1" | uint64 header length | header JSON | pad
    | section payloads (each 8-byte aligned)

The header is the versioned envelope (binary format version, the JSON
envelope's ``format_version``, ``kind``, capability list, byte order,
meter metadata and the section directory).  :func:`load_meter` sniffs
the magic, so both formats load through the same call.
"""

from __future__ import annotations

import json
import mmap
import sys
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # runtime import stays local (attacks imports this module)
    from repro.attacks.masks import MaskSet

from repro.meters import registry
from repro.meters.base import Meter
from repro.meters.registry import Capability, MeterSpec
from repro.util.sections import SectionError, decode_sections, read_header
from repro.util.sections import pack as pack_sections

FORMAT_VERSION = 1

#: Leading bytes of a binary model file; the trailing digit is bumped
#: together with :data:`BINARY_FORMAT_VERSION` on layout changes, so a
#: stale reader fails on the magic before trusting any offset.
BINARY_MAGIC = b"FPSMBIN1"

#: Version of the binary layout recorded in (and checked against) the
#: header envelope.
BINARY_FORMAT_VERSION = 1

#: Backwards-compatible alias: any registered meter can be persisted
#: as long as its registry entry declares :data:`Capability.PERSISTABLE`.
TrainedMeter = Meter


def _persistable_spec(meter: Meter) -> MeterSpec:
    """The registry spec for a meter, verified persistable.

    Raises:
        TypeError: the meter is unregistered or not ``Persistable``
            (kept a ``TypeError`` — the caller passed a wrong *type*
            of object, unlike on-disk data errors which are
            ``ValueError``).
    """
    spec = registry.spec_for(meter)
    if spec is None or not spec.has(Capability.PERSISTABLE):
        supported = ", ".join(registry.kinds_with(Capability.PERSISTABLE))
        raise TypeError(
            f"cannot serialise meter of type {type(meter).__name__}; "
            f"supported: {supported}"
        )
    return spec


def meter_to_dict(meter: Meter) -> Dict[str, Any]:
    """The JSON-ready document for a trained meter."""
    spec = _persistable_spec(meter)
    return {
        "format_version": FORMAT_VERSION,
        "kind": spec.kind,
        "capabilities": spec.capability_names(),
        "model": meter.to_dict(),
    }


def meter_from_dict(document: Dict[str, Any]) -> Meter:
    """Rebuild a meter from :func:`meter_to_dict` output.

    Raises:
        ValueError: unsupported format version, unknown ``kind``, or a
            ``kind`` whose registry entry is not ``Persistable``.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = document.get("kind")
    known = ", ".join(registry.kinds_with(Capability.PERSISTABLE))
    if not isinstance(kind, str):
        raise ValueError(f"unknown meter kind {kind!r}; known: {known}")
    try:
        spec = registry.get_spec(kind)
    except ValueError:
        raise ValueError(
            f"unknown meter kind {kind!r}; known: {known}"
        ) from None
    if not spec.has(Capability.PERSISTABLE):
        raise ValueError(
            f"meter kind {spec.kind!r} is registered without the "
            f"persistable capability; loadable kinds: {known}"
        )
    return spec.cls.from_dict(document["model"])


def save_meter(meter: Meter, path: str, fmt: str = "json") -> None:
    """Write a trained meter to disk (deterministic bytes).

    Args:
        meter: a registered persistable meter.
        path: output file.
        fmt: ``json`` (the portable envelope) or ``binary`` (the
            array-backed mmap-fast format; requires the meter's
            registry entry to declare ``binary-persistable``).
    """
    if fmt == "json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(meter_to_dict(meter), handle, sort_keys=True)
            handle.write("\n")
    elif fmt == "binary":
        _save_meter_binary(meter, path)
    else:
        raise ValueError(f"unknown model format {fmt!r}")


# --- binary model format ----------------------------------------------------


def _binary_spec(meter: Meter) -> MeterSpec:
    """The registry spec for a meter, verified binary-persistable."""
    spec = _persistable_spec(meter)
    if not spec.has(Capability.BINARY_PERSISTABLE):
        supported = ", ".join(
            registry.kinds_with(Capability.BINARY_PERSISTABLE)
        )
        raise TypeError(
            f"meter kind {spec.kind!r} has no binary format; "
            f"supported: {supported}"
        )
    return spec


def _save_meter_binary(meter: Meter, path: str) -> None:
    """Write the magic/header/aligned-sections binary layout.

    The framing itself lives in :mod:`repro.util.sections` (shared
    with the shared-memory snapshot plane); this function only
    supplies the meter-file envelope fields.  Output bytes are
    identical to the pre-extraction writer.
    """
    spec = _binary_spec(meter)
    meta, sections = meter.to_buffers()
    image = pack_sections(
        BINARY_MAGIC,
        {
            "binary_format_version": BINARY_FORMAT_VERSION,
            "format_version": FORMAT_VERSION,
            "kind": spec.kind,
            "capabilities": spec.capability_names(),
            "byteorder": sys.byteorder,
            "meta": meta,
        },
        sections,
    )
    with open(path, "wb") as handle:
        handle.write(image)


def _binary_error(path: str, reason: str) -> ValueError:
    return ValueError(f"{path} is not a valid binary meter file: {reason}")


def _load_meter_binary(path: str) -> Meter:
    """Map a binary model file and rebuild its meter.

    Integer columns are read zero-copy (``memoryview.cast``) out of the
    mapping; the meter's ``from_buffers`` materialises its own tables,
    after which the mapping is closed.
    """
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as error:  # empty file cannot be mapped
            raise _binary_error(path, str(error)) from error
    meter = _parse_binary_mapping(path, mapped)
    # All zero-copy views live in the parser frame, which has returned;
    # the error paths leave the mapping to the garbage collector
    # instead (closing with exported views would raise BufferError and
    # mask the real diagnostic).
    mapped.close()
    return meter


def _parse_binary_mapping(path: str, mapped: mmap.mmap) -> Meter:
    """Validate the header and rebuild the meter from a live mapping."""
    view = memoryview(mapped)
    try:
        header = read_header(view, BINARY_MAGIC)
    except SectionError as error:
        raise _binary_error(path, str(error)) from error
    version = header.get("binary_format_version")
    if version != BINARY_FORMAT_VERSION:
        raise _binary_error(
            path,
            f"unsupported binary format version {version!r} "
            f"(this build reads version {BINARY_FORMAT_VERSION})",
        )
    kind = header.get("kind")
    known = ", ".join(
        registry.kinds_with(Capability.BINARY_PERSISTABLE)
    )
    if not isinstance(kind, str):
        raise _binary_error(
            path, f"unknown meter kind {kind!r}; known: {known}"
        )
    try:
        spec = registry.get_spec(kind)
    except ValueError:
        raise _binary_error(
            path, f"unknown meter kind {kind!r}; known: {known}"
        ) from None
    if not spec.has(Capability.BINARY_PERSISTABLE):
        raise _binary_error(
            path,
            f"meter kind {spec.kind!r} has no binary format; "
            f"loadable kinds: {known}",
        )
    try:
        sections = decode_sections(header, view)
    except SectionError as error:
        raise _binary_error(path, str(error)) from error
    meta = header.get("meta", {})
    try:
        return spec.cls.from_buffers(meta, sections)
    except (KeyError, IndexError, TypeError) as error:
        raise _binary_error(
            path, f"corrupt section data: {error}"
        ) from error


# --- telemetry snapshots ----------------------------------------------------

#: On-disk format version for telemetry reports (``repro profile`` and
#: the experiments runner persist these next to their results).
TELEMETRY_FORMAT_VERSION = 1


def save_telemetry_report(report: dict, path: str) -> None:
    """Write a telemetry report (:func:`repro.obs.build_report`) to JSON.

    The document is wrapped with a ``kind`` tag and a format version —
    the same envelope discipline as trained-meter files — so tooling
    that ingests both can dispatch on ``kind``.
    """
    document = {
        "format_version": TELEMETRY_FORMAT_VERSION,
        "kind": "telemetry",
        "report": report,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_telemetry_report(path: str) -> dict:
    """Read back a report written by :func:`save_telemetry_report`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != TELEMETRY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported telemetry format version {version!r} "
            f"(this build reads version {TELEMETRY_FORMAT_VERSION})"
        )
    if document.get("kind") != "telemetry":
        raise ValueError(
            f"not a telemetry report: kind={document.get('kind')!r}"
        )
    report = document["report"]
    if not isinstance(report, dict):
        raise ValueError("telemetry report body must be an object")
    return report


# --- compiled mask sets -----------------------------------------------------

#: On-disk format version for compiled mask sets (``repro attack masks``
#: persists these so crossover extrapolation can run without re-training).
MASKSET_FORMAT_VERSION = 1


def save_mask_set(mask_set: "MaskSet", path: str) -> None:
    """Write a compiled :class:`repro.attacks.masks.MaskSet` to JSON.

    Same envelope discipline as trained-meter and telemetry files: a
    ``kind`` tag plus a format version, with sorted keys so identical
    mask sets produce byte-identical files.
    """
    document = {
        "format_version": MASKSET_FORMAT_VERSION,
        "kind": "maskset",
        "maskset": mask_set.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")


def load_mask_set(path: str) -> "MaskSet":
    """Read back a mask set written by :func:`save_mask_set`."""
    from repro.attacks.masks import MaskSet

    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path} is not a valid mask-set file: {error}"
            ) from error
    if not isinstance(document, dict):
        raise ValueError(
            f"{path} is not a valid mask-set file: expected a JSON object"
        )
    version = document.get("format_version")
    if version != MASKSET_FORMAT_VERSION:
        raise ValueError(
            f"unsupported mask-set format version {version!r} "
            f"(this build reads version {MASKSET_FORMAT_VERSION})"
        )
    if document.get("kind") != "maskset":
        raise ValueError(
            f"not a mask-set file: kind={document.get('kind')!r}"
        )
    body = document.get("maskset")
    if not isinstance(body, dict):
        raise ValueError("mask-set body must be an object")
    return MaskSet.from_dict(body)


def load_meter(path: str) -> Meter:
    """Read a trained meter back; the concrete class is restored.

    Both on-disk formats load through this call: the leading bytes are
    sniffed, files starting with :data:`BINARY_MAGIC` take the
    memory-mapped binary path and anything else is parsed as the JSON
    envelope.

    Raises:
        ValueError: the file is not a supported meter document in
            either format (see :func:`meter_from_dict`).
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        return _load_meter_binary(path)
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path} is not a valid meter file: {error}"
            ) from error
    if not isinstance(document, dict):
        raise ValueError(
            f"{path} is not a valid meter file: expected a JSON object"
        )
    return meter_from_dict(document)
