"""Saving and loading trained meters as JSON files.

Trained meters are artefacts a deployment builds once and ships; this
module gives every registered :class:`Persistable` meter a common
on-disk format::

    from repro import FuzzyPSM
    from repro.persistence import save_meter, load_meter

    meter = FuzzyPSM.train(base, training)
    save_meter(meter, "fuzzy.json")
    meter = load_meter("fuzzy.json")   # type restored automatically

Files carry a ``kind`` tag, the meter's capability list and a format
version, so loading dispatches through the meter registry
(:mod:`repro.meters.registry`) and future format changes stay
detectable.  Registering a new ``Persistable`` meter is all it takes
to make it saveable and loadable — there is no per-kind table here.

Output is deterministic: keys are sorted, so saving the same model
twice produces byte-identical files (required for artefact diffing
and content-addressed caches).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.meters import registry
from repro.meters.base import Meter
from repro.meters.registry import Capability, MeterSpec

FORMAT_VERSION = 1

#: Backwards-compatible alias: any registered meter can be persisted
#: as long as its registry entry declares :data:`Capability.PERSISTABLE`.
TrainedMeter = Meter


def _persistable_spec(meter: Meter) -> MeterSpec:
    """The registry spec for a meter, verified persistable.

    Raises:
        TypeError: the meter is unregistered or not ``Persistable``
            (kept a ``TypeError`` — the caller passed a wrong *type*
            of object, unlike on-disk data errors which are
            ``ValueError``).
    """
    spec = registry.spec_for(meter)
    if spec is None or not spec.has(Capability.PERSISTABLE):
        supported = ", ".join(registry.kinds_with(Capability.PERSISTABLE))
        raise TypeError(
            f"cannot serialise meter of type {type(meter).__name__}; "
            f"supported: {supported}"
        )
    return spec


def meter_to_dict(meter: Meter) -> Dict[str, Any]:
    """The JSON-ready document for a trained meter."""
    spec = _persistable_spec(meter)
    return {
        "format_version": FORMAT_VERSION,
        "kind": spec.kind,
        "capabilities": spec.capability_names(),
        "model": meter.to_dict(),
    }


def meter_from_dict(document: Dict[str, Any]) -> Meter:
    """Rebuild a meter from :func:`meter_to_dict` output.

    Raises:
        ValueError: unsupported format version, unknown ``kind``, or a
            ``kind`` whose registry entry is not ``Persistable``.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = document.get("kind")
    known = ", ".join(registry.kinds_with(Capability.PERSISTABLE))
    if not isinstance(kind, str):
        raise ValueError(f"unknown meter kind {kind!r}; known: {known}")
    try:
        spec = registry.get_spec(kind)
    except ValueError:
        raise ValueError(
            f"unknown meter kind {kind!r}; known: {known}"
        ) from None
    if not spec.has(Capability.PERSISTABLE):
        raise ValueError(
            f"meter kind {spec.kind!r} is registered without the "
            f"persistable capability; loadable kinds: {known}"
        )
    return spec.cls.from_dict(document["model"])


def save_meter(meter: Meter, path: str) -> None:
    """Write a trained meter to a JSON file (deterministic bytes)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(meter_to_dict(meter), handle, sort_keys=True)
        handle.write("\n")


# --- telemetry snapshots ----------------------------------------------------

#: On-disk format version for telemetry reports (``repro profile`` and
#: the experiments runner persist these next to their results).
TELEMETRY_FORMAT_VERSION = 1


def save_telemetry_report(report: dict, path: str) -> None:
    """Write a telemetry report (:func:`repro.obs.build_report`) to JSON.

    The document is wrapped with a ``kind`` tag and a format version —
    the same envelope discipline as trained-meter files — so tooling
    that ingests both can dispatch on ``kind``.
    """
    document = {
        "format_version": TELEMETRY_FORMAT_VERSION,
        "kind": "telemetry",
        "report": report,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_telemetry_report(path: str) -> dict:
    """Read back a report written by :func:`save_telemetry_report`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != TELEMETRY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported telemetry format version {version!r} "
            f"(this build reads version {TELEMETRY_FORMAT_VERSION})"
        )
    if document.get("kind") != "telemetry":
        raise ValueError(
            f"not a telemetry report: kind={document.get('kind')!r}"
        )
    report = document["report"]
    if not isinstance(report, dict):
        raise ValueError("telemetry report body must be an object")
    return report


def load_meter(path: str) -> Meter:
    """Read a trained meter back; the concrete class is restored.

    Raises:
        ValueError: the file is not valid JSON or is not a supported
            meter document (see :func:`meter_from_dict`).
    """
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path} is not a valid meter file: {error}"
            ) from error
    if not isinstance(document, dict):
        raise ValueError(
            f"{path} is not a valid meter file: expected a JSON object"
        )
    return meter_from_dict(document)
