"""Saving and loading trained meters as JSON files.

The three machine-learning meters (fuzzyPSM, PCFG, Markov) are trained
artefacts a deployment would build once and ship; this module gives
them a common on-disk format::

    from repro import FuzzyPSM
    from repro.persistence import save_meter, load_meter

    meter = FuzzyPSM.train(base, training)
    save_meter(meter, "fuzzy.json")
    meter = load_meter("fuzzy.json")   # type restored automatically

Files carry a ``kind`` tag and a format version, so loading dispatches
to the right class and future format changes stay detectable.
"""

from __future__ import annotations

import json
from typing import Dict, Type, Union

from repro.core.meter import FuzzyPSM
from repro.meters.markov import MarkovMeter
from repro.meters.pcfg import PCFGMeter

FORMAT_VERSION = 1

TrainedMeter = Union[FuzzyPSM, PCFGMeter, MarkovMeter]

_KINDS: Dict[str, Type] = {
    "fuzzypsm": FuzzyPSM,
    "pcfg": PCFGMeter,
    "markov": MarkovMeter,
}


def _kind_of(meter: TrainedMeter) -> str:
    for kind, klass in _KINDS.items():
        if isinstance(meter, klass):
            return kind
    raise TypeError(
        f"cannot serialise meter of type {type(meter).__name__}; "
        f"supported: {', '.join(sorted(_KINDS))}"
    )


def meter_to_dict(meter: TrainedMeter) -> dict:
    """The JSON-ready document for a trained meter."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": _kind_of(meter),
        "model": meter.to_dict(),
    }


def meter_from_dict(document: dict) -> TrainedMeter:
    """Rebuild a meter from :func:`meter_to_dict` output."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = document.get("kind")
    if kind not in _KINDS:
        raise ValueError(
            f"unknown meter kind {kind!r}; known: {', '.join(sorted(_KINDS))}"
        )
    return _KINDS[kind].from_dict(document["model"])


def save_meter(meter: TrainedMeter, path: str) -> None:
    """Write a trained meter to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(meter_to_dict(meter), handle)


# --- telemetry snapshots ----------------------------------------------------

#: On-disk format version for telemetry reports (``repro profile`` and
#: the experiments runner persist these next to their results).
TELEMETRY_FORMAT_VERSION = 1


def save_telemetry_report(report: dict, path: str) -> None:
    """Write a telemetry report (:func:`repro.obs.build_report`) to JSON.

    The document is wrapped with a ``kind`` tag and a format version —
    the same envelope discipline as trained-meter files — so tooling
    that ingests both can dispatch on ``kind``.
    """
    document = {
        "format_version": TELEMETRY_FORMAT_VERSION,
        "kind": "telemetry",
        "report": report,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_telemetry_report(path: str) -> dict:
    """Read back a report written by :func:`save_telemetry_report`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != TELEMETRY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported telemetry format version {version!r} "
            f"(this build reads version {TELEMETRY_FORMAT_VERSION})"
        )
    if document.get("kind") != "telemetry":
        raise ValueError(
            f"not a telemetry report: kind={document.get('kind')!r}"
        )
    report = document["report"]
    if not isinstance(report, dict):
        raise ValueError("telemetry report body must be an object")
    return report


def load_meter(path: str) -> TrainedMeter:
    """Read a trained meter back; the concrete class is restored."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return meter_from_dict(document)
