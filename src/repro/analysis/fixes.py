"""The ``repro lint --fix`` autofix engine (mechanical rules only).

Two rules have fixes that are provably behavior-preserving from the
AST alone, and only those are automated:

* **FPM007 mutable defaults** — replace the default with ``None`` and
  insert an ``if <arg> is None: <arg> = <original>`` guard after the
  docstring, the standard idiom.  Skipped when the parameter carries
  an annotation that does not already admit ``None`` (rewriting the
  annotation is a typing decision, not a mechanical one).
* **FPM008 missing return annotation** — append ``-> None``, but only
  when the function provably never produces a value: no ``return
  <expr>`` and no ``yield`` anywhere in its own body (nested
  functions excluded).  Missing *parameter* annotations are never
  guessed.

Everything else the linter reports needs a human.  Fixes are computed
as character-offset splices against the original text and applied in
reverse document order so earlier edits cannot shift later spans; the
result is re-parsed before it is accepted, so a fix can never replace
a lintable file with a syntax error.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.rules.hygiene import MutableDefaultRule

#: One splice: replace ``source[start:end]`` with ``text``.
_Edit = Tuple[int, int, str]

_FunctionNode = "ast.FunctionDef | ast.AsyncFunctionDef"


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _offset(offsets: List[int], lineno: int, column: int) -> int:
    return offsets[lineno - 1] + column


def _annotation_admits_none(annotation: Optional[ast.expr]) -> bool:
    """May this parameter hold ``None`` without an annotation edit?"""
    if annotation is None:
        return True
    text = ast.dump(annotation)
    return "Optional" in text or "None" in text or "Any" in text


def _returns_value(node: ast.AST) -> bool:
    """Does the function produce a value (return expr / any yield)?

    Walks the function's own body only — nested functions and lambdas
    have their own return semantics.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, ast.Return) and child.value is not None:
            return True
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _returns_value(child):
            return True
    return False


def _is_public_api(node: ast.AST, parents: Sequence[ast.AST]) -> bool:
    """Mirror of FPM008's scope: public top-level defs and public
    methods of public top-level classes."""
    name = getattr(node, "name", "_")
    if name.startswith("_"):
        return False
    if not parents:
        return True
    return (
        len(parents) == 1
        and isinstance(parents[0], ast.ClassDef)
        and not parents[0].name.startswith("_")
    )


def _signature_colon(source: str, offsets: List[int], node: ast.AST) -> Optional[int]:
    """Offset of the ``:`` closing the def signature, or ``None``."""
    start = _offset(offsets, node.lineno, node.col_offset)
    open_paren = source.find("(", start)
    if open_paren < 0:
        return None
    depth = 0
    position = open_paren
    limit = len(source)
    while position < limit:
        char = source[position]
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth == 0:
                break
        elif char in "\"'":
            # A default value containing a string: skip the literal.
            quote = char
            position += 1
            while position < limit and source[position] != quote:
                position += 2 if source[position] == "\\" else 1
        position += 1
    else:
        return None
    rest = position + 1
    while rest < len(source) and source[rest] in " \t\r\n\\":
        rest += 1
    if rest < len(source) and source[rest] == ":":
        return rest
    return None


def _guard_insertion_point(
    node: "ast.FunctionDef | ast.AsyncFunctionDef", offsets: List[int]
) -> Tuple[int, str]:
    """(offset, indent) where ``is None`` guards slot in: after the
    docstring, at the first real statement's indentation."""
    body = node.body
    anchor = body[0]
    if (
        isinstance(anchor, ast.Expr)
        and isinstance(anchor.value, ast.Constant)
        and isinstance(anchor.value.value, str)
        and len(body) > 1
    ):
        anchor = body[1]
    indent = " " * anchor.col_offset
    return _offset(offsets, anchor.lineno, 0), indent


class _FixCollector(ast.NodeVisitor):
    def __init__(self, source: str, select: frozenset) -> None:
        self.source = source
        self.offsets = _line_offsets(source)
        self.select = select
        self.edits: List[_Edit] = []
        self.count = 0
        self._parents: List[ast.AST] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._parents.append(node)
        self.generic_visit(node)
        self._parents.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fix_function(node)
        self._parents.append(node)
        self.generic_visit(node)
        self._parents.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._fix_function(node)
        self._parents.append(node)
        self.generic_visit(node)
        self._parents.pop()

    def _fix_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        if "FPM007" in self.select:
            self._fix_mutable_defaults(node)
        if "FPM008" in self.select:
            self._fix_return_annotation(node)

    # --- FPM007 --------------------------------------------------------

    def _fix_mutable_defaults(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        pairs = list(
            zip(positional[len(positional) - len(args.defaults):], args.defaults)
        ) + [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        guards: List[Tuple[str, str]] = []
        for arg, default in pairs:
            if not MutableDefaultRule._is_mutable(default):
                continue
            if not _annotation_admits_none(arg.annotation):
                continue  # would need a typing decision, not mechanical
            original = ast.get_source_segment(self.source, default)
            if original is None or "\n" in original:
                continue  # multi-line default: leave it to a human
            start = _offset(self.offsets, default.lineno, default.col_offset)
            end = _offset(
                self.offsets, default.end_lineno, default.end_col_offset
            )
            self.edits.append((start, end, "None"))
            guards.append((arg.arg, original))
            self.count += 1
        if guards:
            insert_at, indent = _guard_insertion_point(node, self.offsets)
            text = "".join(
                f"{indent}if {name} is None:\n"
                f"{indent}    {name} = {original}\n"
                for name, original in guards
            )
            self.edits.append((insert_at, insert_at, text))

    # --- FPM008 --------------------------------------------------------

    def _fix_return_annotation(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        if node.returns is not None:
            return
        if not _is_public_api(node, self._parents):
            return
        if isinstance(node, ast.AsyncFunctionDef) or _returns_value(node):
            return
        colon = _signature_colon(self.source, self.offsets, node)
        if colon is None:
            return
        self.edits.append((colon, colon, " -> None"))
        self.count += 1


def fix_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> Tuple[str, int]:
    """Apply the mechanical fixes to one module's text.

    Returns ``(new_source, fix_count)``; the input comes back
    unchanged when nothing is fixable or when the spliced result
    fails to re-parse (defensive — it should never happen).
    """
    chosen = frozenset(select) if select is not None else frozenset(
        {"FPM007", "FPM008"}
    )
    chosen = chosen & {"FPM007", "FPM008"}
    if not chosen:
        return source, 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    collector = _FixCollector(source, chosen)
    collector.visit(tree)
    if not collector.edits:
        return source, 0
    fixed = source
    for start, end, text in sorted(collector.edits, reverse=True):
        fixed = fixed[:start] + text + fixed[end:]
    try:
        ast.parse(fixed, filename=path)
    except SyntaxError:  # pragma: no cover - the splices are position-exact
        return source, 0
    return fixed, collector.count
