"""Pass 1 of the two-pass analyzer: the whole-program ``ProjectIndex``.

The per-file rules (FPM001..FPM011) can only see one module at a time,
but the invariants that actually break production — fork-time global
writes, stale :class:`~repro.core.frozen.FrozenGrammar` snapshots,
capability declarations with no backing method — span modules and
process boundaries.  :func:`build_project_index` walks every file once
and distils what the cross-module rules (:class:`ProjectRule`
subclasses) need:

* a module/symbol table and import graph (``ModuleInfo.imports`` maps
  each local name to the qualified symbol it denotes);
* an approximate call graph (``FunctionInfo.calls`` records call
  targets as written; :meth:`ProjectIndex.resolve_call` qualifies
  them);
* the multiprocessing surface: worker task entrypoints discovered
  from ``pool.imap``/``apply_async``/``Process(target=...)`` call
  sites, pool ``initializer=`` functions, and the transitive
  worker-reachable closure over the call graph;
* every ``@register_meter`` declaration with its capability list and
  the static class hierarchy behind it;
* every ``obs.register_namespace("...")`` literal (the telemetry
  probe-name authority for FPM014);
* which classes are *epoch guarded* — their ``__init__`` assigns both
  ``_epoch`` and at least one grammar count table, so mutations must
  bump the epoch (FPM013).

Everything stored here is built from plain tuples/dicts so the index
pickles cleanly into the parallel file pass and hashes stably into the
incremental cache key.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Grammar count-table attributes (paper Table round-up: base structure
#: counts plus the five fuzzing rule families).  Shared by FPM011
#: (reach-through reads) and FPM013 (epoch discipline on writes).
GRAMMAR_TABLE_ATTRIBUTES = frozenset(
    {"structures", "terminals", "capitalization", "leet", "reverse", "allcaps"}
)

#: Pool/executor methods whose first argument runs in a worker process.
POOL_TASK_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "map_async",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: Constructors that spawn worker processes.
POOL_CONSTRUCTORS = frozenset({"Pool", "Process", "ProcessPoolExecutor"})

#: Function-name prefix that blesses a fork-time initializer even when
#: the ``initializer=`` call site is in another module.
WORKER_INIT_PREFIX = "_worker_init"

#: Function-name prefix for the shared-memory attach helpers
#: (``repro.core.shm``): the per-process attach cache they maintain is
#: broadcast-once state exactly like an initializer's globals, so they
#: are blessed the same way.
WORKER_ATTACH_PREFIX = "_worker_attach"

#: Top-level directories that map straight to module prefixes when the
#: file is not under ``src/``.
_BARE_PACKAGE_ROOTS = frozenset({"tests", "benchmarks", "tools", "examples"})


def module_name_for_path(path: str) -> str:
    """Infer a dotted module name from a repository-relative path.

    ``src/repro/core/grammar.py`` → ``repro.core.grammar``;
    ``tests/test_meter.py`` → ``tests.test_meter``; anything else
    falls back to the stem so synthetic paths still get unique names.
    """
    normalized = path.replace(os.sep, "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        for index, part in enumerate(parts):
            if part in _BARE_PACKAGE_ROOTS:
                parts = parts[index:]
                break
        else:
            parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _annotation_text(node: Optional[ast.AST]) -> Optional[str]:
    """The dotted core of an annotation (``Optional[X]`` → ``X``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1].strip()
        return text.strip("\"'") or None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head in ("Optional", "typing.Optional"):
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover - py3.8
                inner = inner.value  # type: ignore[attr-defined]
            return _annotation_text(inner)
    return None


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method as seen by the static pass."""

    qualname: str  #: ``outer.inner`` / ``Class.method`` within the module
    name: str
    lineno: int
    params: Tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    #: ``(param, dotted annotation)`` pairs, stripped of ``Optional``.
    annotations: Tuple[Tuple[str, str], ...]
    #: Names declared ``global`` inside the body, with the statement line.
    global_names: Tuple[str, ...]
    global_lineno: int
    #: Call targets as written (``foo``, ``self.bar``, ``mod.fn``).
    calls: Tuple[str, ...]
    owner_class: Optional[str]  #: simple class name when this is a method
    is_nested: bool


@dataclass(frozen=True)
class MeterRegistration:
    """One ``@register_meter(...)`` decoration."""

    kind: Optional[str]
    capabilities: Tuple[str, ...]  #: ``Capability`` member names, as written
    lineno: int


@dataclass(frozen=True)
class ClassInfo:
    """One class with its static surface."""

    name: str
    lineno: int
    bases: Tuple[str, ...]  #: as written (``ProbabilisticMeter``, ``abc.ABC``)
    methods: Tuple[str, ...]  #: direct method names
    init_attrs: Tuple[str, ...]  #: ``self.X`` assigned in ``__init__``
    meter_registration: Optional[MeterRegistration]


@dataclass(frozen=True)
class WorkerUse:
    """One call site handing a function to another process."""

    role: str  #: ``task`` or ``initializer``
    target: Optional[str]  #: dotted expression, ``None`` for a lambda
    lineno: int
    column: int


@dataclass(frozen=True)
class ModuleInfo:
    """Everything the cross-module rules need from one file."""

    module: str
    path: str
    imports: Tuple[Tuple[str, str], ...]  #: local name → qualified symbol
    functions: Tuple[FunctionInfo, ...]
    classes: Tuple[ClassInfo, ...]
    module_globals: Tuple[str, ...]
    worker_uses: Tuple[WorkerUse, ...]
    namespaces: Tuple[str, ...]  #: ``register_namespace`` literals

    def import_map(self) -> Dict[str, str]:
        return dict(self.imports)

    def function_map(self) -> Dict[str, FunctionInfo]:
        return {info.qualname: info for info in self.functions}

    def class_map(self) -> Dict[str, ClassInfo]:
        return {info.name: info for info in self.classes}


class _ModuleScanner(ast.NodeVisitor):
    """Single-walk collector feeding one :class:`ModuleInfo`."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.imports: Dict[str, str] = {}
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassInfo] = []
        self.module_globals: List[str] = []
        self.worker_uses: List[WorkerUse] = []
        self.namespaces: List[str] = []
        self._scope: List[str] = []
        self._class_stack: List[str] = []

    # --- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            qualified = alias.name if alias.asname else local
            self.imports[local] = qualified

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        package = self.module.split(".")
        if node.level:
            # Relative import: peel ``level`` components off this module.
            package = package[: max(len(package) - node.level, 0)]
            base = ".".join(package + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # --- module globals ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_globals.append(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope and isinstance(node.target, ast.Name):
            self.module_globals.append(node.target.id)
        self.generic_visit(node)

    # --- classes and functions -----------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        registration = self._meter_registration(node)
        methods = tuple(
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        init_attrs: List[str] = []
        for child in node.body:
            if isinstance(child, ast.FunctionDef) and child.name == "__init__":
                for stmt in ast.walk(child):
                    targets: List[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        targets = list(stmt.targets)
                    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                        targets = [stmt.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            init_attrs.append(target.attr)
        bases = tuple(
            dotted for dotted in (_dotted(base) for base in node.bases)
            if dotted is not None
        )
        self.classes.append(
            ClassInfo(
                name=node.name,
                lineno=node.lineno,
                bases=bases,
                methods=methods,
                init_attrs=tuple(dict.fromkeys(init_attrs)),
                meter_registration=registration,
            )
        )
        self._scope.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()

    def _meter_registration(
        self, node: ast.ClassDef
    ) -> Optional[MeterRegistration]:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _dotted(decorator.func) not in (
                "register_meter",
                "registry.register_meter",
            ):
                continue
            kind: Optional[str] = None
            if decorator.args and isinstance(decorator.args[0], ast.Constant):
                value = decorator.args[0].value
                kind = value if isinstance(value, str) else None
            capabilities: List[str] = []
            for keyword in decorator.keywords:
                if keyword.arg == "kind" and isinstance(
                    keyword.value, ast.Constant
                ):
                    kind = keyword.value.value
                if keyword.arg != "capabilities":
                    continue
                for element in ast.walk(keyword.value):
                    dotted = (
                        _dotted(element)
                        if isinstance(element, ast.Attribute)
                        else None
                    )
                    if dotted and dotted.split(".")[-2:-1] == ["Capability"]:
                        capabilities.append(dotted.split(".")[-1])
            return MeterRegistration(
                kind=kind,
                capabilities=tuple(dict.fromkeys(capabilities)),
                lineno=node.lineno,
            )
        return None

    def _visit_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qualname = ".".join(self._scope + [node.name])
        owner = self._class_stack[-1] if (
            self._class_stack and self._scope
            and self._scope[-1] == self._class_stack[-1]
        ) else None
        args = node.args
        ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        params = tuple(arg.arg for arg in ordered)
        annotations = tuple(
            (arg.arg, text)
            for arg in ordered
            for text in [_annotation_text(arg.annotation)]
            if text is not None
        )
        global_names: List[str] = []
        global_lineno = node.lineno
        calls: List[str] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                if not global_names:
                    global_lineno = child.lineno
                global_names.extend(child.names)
            elif isinstance(child, ast.Call):
                dotted = _dotted(child.func)
                if dotted is not None:
                    calls.append(dotted)
        is_nested = bool(self._scope) and owner is None
        self.functions.append(
            FunctionInfo(
                qualname=qualname,
                name=node.name,
                lineno=node.lineno,
                params=params,
                has_vararg=args.vararg is not None,
                has_kwarg=args.kwarg is not None,
                annotations=annotations,
                global_names=tuple(dict.fromkeys(global_names)),
                global_lineno=global_lineno,
                calls=tuple(dict.fromkeys(calls)),
                owner_class=owner,
                is_nested=is_nested,
            )
        )
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # --- worker pools and namespaces -----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted is not None and dotted.split(".")[-1] == "register_namespace":
            if node.args and isinstance(node.args[0], ast.Constant):
                value = node.args[0].value
                if isinstance(value, str):
                    self.namespaces.append(value)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in POOL_TASK_METHODS
            and node.args
        ):
            self._record_worker(node.args[0], "task")
        if dotted is not None and dotted.split(".")[-1] in POOL_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._record_worker(keyword.value, "initializer")
                if keyword.arg == "target":
                    self._record_worker(keyword.value, "task")
        self.generic_visit(node)

    def _record_worker(self, target: ast.expr, role: str) -> None:
        # A literal first argument is data, not a callable: the call
        # is some other .submit()/.map() (an async batcher, a bound
        # collection), not a process-pool dispatch.
        if isinstance(target, ast.Constant):
            return
        self.worker_uses.append(
            WorkerUse(
                role=role,
                target=_dotted(target),
                lineno=target.lineno,
                column=target.col_offset + 1,
            )
        )


def scan_module(module: str, path: str, tree: ast.Module) -> ModuleInfo:
    """Build one :class:`ModuleInfo` from a parsed file."""
    scanner = _ModuleScanner(module)
    scanner.visit(tree)
    return ModuleInfo(
        module=module,
        path=path,
        imports=tuple(sorted(scanner.imports.items())),
        functions=tuple(scanner.functions),
        classes=tuple(scanner.classes),
        module_globals=tuple(dict.fromkeys(scanner.module_globals)),
        worker_uses=tuple(scanner.worker_uses),
        namespaces=tuple(dict.fromkeys(scanner.namespaces)),
    )


#: Base classes treated as method-free terminals during static MRO
#: walks (their abstract surface is enforced at runtime by ``abc``).
_EXTERNAL_TERMINAL_BASES = frozenset(
    {"abc.ABC", "ABC", "object", "Protocol", "Generic", "Enum", "enum.Enum"}
)


@dataclass
class ProjectIndex:
    """The pass-1 output handed to every :class:`ProjectRule`.

    ``modules`` is keyed by dotted module name; ``by_path`` maps the
    exact path string a file was linted under back to its module so a
    rule can find "its own" entry from ``LintContext.path``.
    """

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    by_path: Dict[str, str] = field(default_factory=dict)

    # Derived (finalize() fills these in).
    worker_entrypoints: FrozenSet[str] = frozenset()
    blessed_initializers: FrozenSet[str] = frozenset()
    worker_reachable: FrozenSet[str] = frozenset()
    epoch_guarded_classes: FrozenSet[str] = frozenset()
    registered_namespaces: FrozenSet[str] = frozenset()
    digest: str = ""

    # --- lookups -------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        name = self.by_path.get(path)
        return self.modules.get(name) if name else None

    def resolve_symbol(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Qualify a dotted name as written inside ``module``.

        Local definitions shadow imports, matching Python scoping for
        module-level names.  Returns ``None`` for names that cannot be
        resolved statically (locals, attribute chains on instances).
        """
        head, _, rest = name.partition(".")
        imports = module.import_map()
        local_functions = {
            info.name for info in module.functions if "." not in info.qualname
        }
        local_classes = {info.name for info in module.classes}
        if head in local_functions or head in local_classes:
            qualified = f"{module.module}.{head}"
        elif head in imports:
            qualified = imports[head]
        else:
            return None
        return f"{qualified}.{rest}" if rest else qualified

    def find_function(self, qualified: str) -> Optional[FunctionInfo]:
        """Look up ``package.module.func`` / ``...Class.method``."""
        for split in range(qualified.count(".") or 1, 0, -1):
            parts = qualified.split(".")
            module_name = ".".join(parts[:split])
            info = self.modules.get(module_name)
            if info is None:
                continue
            qualname = ".".join(parts[split:])
            found = info.function_map().get(qualname)
            if found is not None:
                return found
        return None

    def find_class(self, qualified: str) -> Optional[Tuple[ModuleInfo, ClassInfo]]:
        module_name, _, class_name = qualified.rpartition(".")
        info = self.modules.get(module_name)
        if info is None:
            return None
        cls = info.class_map().get(class_name)
        return (info, cls) if cls is not None else None

    def resolve_class(self, module: ModuleInfo, name: str) -> Optional[str]:
        qualified = self.resolve_symbol(module, name)
        if qualified is not None and self.find_class(qualified) is not None:
            return qualified
        return None

    def class_mro(
        self, qualified: str
    ) -> Tuple[List[Tuple[ModuleInfo, ClassInfo]], bool]:
        """Static linearisation ``(chain, complete)``.

        ``complete`` is ``False`` when some base could not be resolved
        to an indexed class (and is not a known external terminal), in
        which case callers should be lenient about "missing" methods.
        """
        chain: List[Tuple[ModuleInfo, ClassInfo]] = []
        complete = True
        seen = set()
        stack = [qualified]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.find_class(current)
            if found is None:
                complete = False
                continue
            module, cls = found
            chain.append((module, cls))
            for base in cls.bases:
                if base in _EXTERNAL_TERMINAL_BASES:
                    continue
                resolved = self.resolve_symbol(module, base)
                if resolved is None:
                    complete = False
                else:
                    stack.append(resolved)
        return chain, complete

    def find_method(
        self, qualified_class: str, method: str
    ) -> Tuple[Optional[FunctionInfo], bool]:
        """First definition of ``method`` along the static MRO."""
        chain, complete = self.class_mro(qualified_class)
        for module, cls in chain:
            info = module.function_map().get(f"{cls.name}.{method}")
            if info is not None:
                return info, complete
        return None, complete

    def meter_registrations(
        self,
    ) -> List[Tuple[ModuleInfo, ClassInfo, MeterRegistration]]:
        found = []
        for module in self.modules.values():
            for cls in module.classes:
                if cls.meter_registration is not None:
                    found.append((module, cls, cls.meter_registration))
        return found

    # --- call-graph resolution -----------------------------------------

    def resolve_call(
        self, module: ModuleInfo, caller: FunctionInfo, target: str
    ) -> Optional[str]:
        """Qualify one recorded call target, or ``None`` if opaque."""
        head, _, rest = target.partition(".")
        if head in ("self", "cls") and caller.owner_class and rest:
            method = rest.split(".", 1)[0]
            owner = f"{module.module}.{caller.owner_class}"
            chain, _ = self.class_mro(owner)
            for base_module, base_cls in chain:
                if method in base_cls.methods:
                    return f"{base_module.module}.{base_cls.name}.{method}"
            return None
        return self.resolve_symbol(module, target)

    def _finalize(self) -> None:
        entrypoints = set()
        blessed = set()
        unresolved_tasks = []
        for module in self.modules.values():
            for use in module.worker_uses:
                if use.target is None:
                    unresolved_tasks.append((module, use))
                    continue
                qualified = self.resolve_symbol(module, use.target)
                if qualified is None:
                    continue
                if use.role == "initializer":
                    blessed.add(qualified)
                else:
                    entrypoints.add(qualified)
            for info in module.functions:
                if info.name.startswith(
                    (WORKER_INIT_PREFIX, WORKER_ATTACH_PREFIX)
                ):
                    blessed.add(f"{module.module}.{info.qualname}")
        self.worker_entrypoints = frozenset(entrypoints)
        self.blessed_initializers = frozenset(blessed)

        # Transitive closure over the approximate call graph.  Blessed
        # initializers seed it too: what an initializer calls also runs
        # inside the worker process.
        reachable = set()
        frontier = list(entrypoints | blessed)
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            info = self.find_function(current)
            if info is None:
                continue
            owner_module_name = current[: -(len(info.qualname) + 1)]
            owner_module = self.modules.get(owner_module_name)
            if owner_module is None:
                continue
            for call in info.calls:
                resolved = self.resolve_call(owner_module, info, call)
                if resolved is not None and resolved not in reachable:
                    frontier.append(resolved)
        self.worker_reachable = frozenset(reachable)

        guarded = set()
        for module in self.modules.values():
            for cls in module.classes:
                attrs = set(cls.init_attrs)
                if "_epoch" in attrs and attrs & GRAMMAR_TABLE_ATTRIBUTES:
                    guarded.add(f"{module.module}.{cls.name}")
        self.epoch_guarded_classes = frozenset(guarded)

        namespaces = set()
        for module in self.modules.values():
            namespaces.update(module.namespaces)
        self.registered_namespaces = frozenset(namespaces)

        hasher = hashlib.sha256()
        for name in sorted(self.modules):
            hasher.update(repr(self.modules[name]).encode("utf-8"))
        self.digest = hasher.hexdigest()


def build_project_index(
    files: Sequence[Tuple[str, str]],
    trees: Optional[Dict[str, ast.Module]] = None,
) -> ProjectIndex:
    """Pass 1: scan ``(path, source)`` pairs into a finalized index.

    Files that do not parse are skipped here — the per-file pass
    reports them as FPM900, and a module the parser rejects cannot
    contribute symbols anyway.  ``trees`` lets the runner share parsed
    ASTs between the two passes.
    """
    index = ProjectIndex()
    for path, source in files:
        tree = trees.get(path) if trees else None
        if tree is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            if trees is not None:
                trees[path] = tree
        module = module_name_for_path(path)
        info = scan_module(module, path, tree)
        index.modules[module] = info
        index.by_path[path] = module
    index._finalize()
    return index
