"""Content-hash-keyed incremental cache for ``repro lint``.

At fifteen rules plus a whole-program pass, a cold lint of the repo
parses every file twice (index + rules).  The cache makes the common
case — re-linting a tree where little or nothing changed — nearly
free, without ever trading soundness for speed:

* Every entry is keyed by the triple the ISSUE names: the **file
  digest** (SHA-256 of the bytes), the **rule key** (analyzer version
  + selected rule ids + profile configuration), and the **index
  digest** (a hash of the pass-1 semantic index).  Cross-module rules
  read the whole index, so a cached file result is only valid while
  the index it was computed under is byte-identical.
* The fully-warm fast path needs no parsing at all: when the rule key
  and the complete ``path → digest`` map match the previous run, the
  previous index is necessarily identical too (it is a pure function
  of those bytes), so every entry is served straight from disk.
* Partial warmth still pays for one index build (correctness demands
  it — an edit anywhere can change what the cross-module rules see),
  then reuses per-file results whenever the file digest matched *and*
  the rebuilt index digest equals the cached one (e.g. comment-only
  edits elsewhere).

A corrupt, unreadable, version-skewed or just missing cache file
degrades to a cold run; the cache can never make lint fail.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Violation

#: Bump on any change to rule behavior, the index format, or the
#: violation schema: stale caches must never survive an upgrade.
ANALYZER_VERSION = "2026.08-pr7"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro_lint_cache.json"


def file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rule_key(
    select: Optional[Sequence[str]],
    profile_signature: str,
) -> str:
    """Hash of everything that affects results besides file content."""
    payload = json.dumps(
        [
            ANALYZER_VERSION,
            sorted(select) if select is not None else "ALL",
            profile_signature,
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _violation_to_dict(violation: Violation) -> Dict[str, object]:
    return {
        "path": violation.path,
        "line": violation.line,
        "column": violation.column,
        "rule_id": violation.rule_id,
        "message": violation.message,
    }


def _violation_from_dict(data: Dict[str, object]) -> Violation:
    return Violation(
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        column=int(data["column"]),  # type: ignore[arg-type]
        rule_id=str(data["rule_id"]),
        message=str(data["message"]),
    )


class LintCache:
    """One JSON file of per-path results from the previous run."""

    def __init__(self, path: str = DEFAULT_CACHE_PATH) -> None:
        self.path = path
        self._rule_key: Optional[str] = None
        self._index_digest: Optional[str] = None
        self._files: Dict[str, Dict[str, object]] = {}
        self.loaded = False

    # --- reading -------------------------------------------------------

    def load(self) -> bool:
        """Read the previous run; ``False`` (and empty) on any defect."""
        self.loaded = True
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(payload, dict):
            return False
        if payload.get("version") != ANALYZER_VERSION:
            return False
        files = payload.get("files")
        if not isinstance(files, dict):
            return False
        self._rule_key = payload.get("rule_key")
        self._index_digest = payload.get("index_digest")
        self._files = files
        return True

    def matches_run(
        self, key: str, digests: Dict[str, str]
    ) -> bool:
        """Fully-warm check: same rules, same files, same bytes."""
        if self._rule_key != key or set(self._files) != set(digests):
            return False
        return all(
            self._files[path].get("digest") == digest
            for path, digest in digests.items()
        )

    def cached_violations(self, path: str) -> List[Violation]:
        entry = self._files.get(path, {})
        raw = entry.get("violations", [])
        return [
            _violation_from_dict(item)
            for item in raw  # type: ignore[union-attr]
            if isinstance(item, dict)
        ]

    def lookup(
        self, path: str, digest: str, key: str, index_digest: str
    ) -> Optional[List[Violation]]:
        """Per-file reuse under the (digest, rule key, index) triple."""
        if self._rule_key != key or self._index_digest != index_digest:
            return None
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        return self.cached_violations(path)

    # --- writing -------------------------------------------------------

    def store(
        self,
        key: str,
        index_digest: str,
        results: Dict[str, "tuple[str, List[Violation]]"],
    ) -> None:
        """Replace the cache with this run's ``path → (digest, violations)``."""
        payload = {
            "version": ANALYZER_VERSION,
            "rule_key": key,
            "index_digest": index_digest,
            "files": {
                path: {
                    "digest": digest,
                    "violations": [
                        _violation_to_dict(violation)
                        for violation in violations
                    ],
                }
                for path, (digest, violations) in sorted(results.items())
            },
        }
        directory = os.path.dirname(self.path) or "."
        try:
            fd, temporary = tempfile.mkstemp(
                prefix=".lint_cache.", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temporary, self.path)
        except OSError:
            # A read-only checkout loses caching, never correctness.
            try:
                os.unlink(temporary)
            except (OSError, UnboundLocalError):
                pass
