"""File discovery and the ``repro lint`` entry point.

:func:`check_source` lints one in-memory module (the unit the test
fixtures target), :func:`lint_paths` walks files/directories, and
:func:`run` is the CLI-facing wrapper that picks a reporter and turns
the violation list into an exit code.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.analysis.core import (
    SYNTAX_RULE_ID,
    LintContext,
    Violation,
    apply_suppressions,
    find_suppressions,
)
from repro.analysis.registry import all_rules, create_rules
from repro.analysis.reporters import REPORTERS

#: Directories never descended into during discovery.
_SKIPPED_DIRECTORIES = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", ".mypy_cache"}
)


def check_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one module's source text and return sorted violations.

    Raises:
        KeyError: if ``select`` names an unknown rule id.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                rule_id=SYNTAX_RULE_ID,
                message=f"file does not parse: {error.msg}",
            )
        ]
    context = LintContext(path, source)
    for rule in create_rules(context, select=select):
        rule.check(tree)
    return apply_suppressions(
        context.violations,
        find_suppressions(source),
        path,
        known_rule_ids=frozenset(all_rules()),
    )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, directories, files in os.walk(path):
                directories[:] = sorted(
                    name
                    for name in directories
                    if name not in _SKIPPED_DIRECTORIES
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(set(found))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> "tuple[List[Violation], int]":
    """Lint paths; returns ``(violations, files_checked)``."""
    violations: List[Violation] = []
    files = discover_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(check_source(source, path=path, select=select))
    return sorted(violations), len(files)


def run(
    paths: Sequence[str],
    output_format: str = "text",
    select: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """CLI driver: lint, report, and map the result to an exit code.

    Exit codes: 0 clean, 1 violations found, 2 usage error (unknown
    rule id, missing path, unknown format).
    """
    stream = stream if stream is not None else sys.stdout
    reporter = REPORTERS.get(output_format)
    if reporter is None:
        print(f"error: unknown format {output_format!r}", file=sys.stderr)
        return 2
    selected = None
    if select:
        selected = [part.strip() for part in select.split(",") if part.strip()]
    try:
        violations, files_checked = lint_paths(paths, select=selected)
    except KeyError as error:
        known = ", ".join(all_rules())
        print(
            f"error: unknown rule id {error.args[0]!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    except FileNotFoundError as error:
        print(f"error: no such path: {error.args[0]}", file=sys.stderr)
        return 2
    reporter(violations, files_checked, stream)
    return 1 if violations else 0


def describe_rules() -> List["tuple[str, str, str]"]:
    """``(rule_id, name, summary)`` rows for ``repro lint --list-rules``."""
    return [
        (rule_id, rule.name, rule.summary)
        for rule_id, rule in all_rules().items()
    ]
