"""File discovery and the two-pass ``repro lint`` engine.

:func:`check_source` lints one in-memory module (the unit the test
fixtures target), :func:`lint_paths` runs the full pipeline over
files/directories, and :func:`run` is the CLI-facing wrapper that
picks a reporter and turns the violation list into an exit code.

The pipeline (DESIGN.md §13):

1. discover files and hash their bytes;
2. **fully-warm fast path** — when the incremental cache matches the
   rule key and every file digest, serve the previous run's results
   without parsing anything;
3. otherwise build the pass-1 :class:`ProjectIndex` over all files
   (one parse each, shared with pass 2), then lint each file whose
   cached entry is stale — serially or across a process pool — and
   refresh the cache.

Discovery applies a per-directory *profile*: files under ``src`` get
every rule; files under ``tests``/``benchmarks``/``tools``/
``examples`` get a relaxed set (annotation coverage, unseeded RNG and
similar production-surface rules are exempt — a test asserting
bit-identity with ``==`` on probabilities is the suite's core
contract, not a hazard).  The fork-safety, epoch-discipline and
hygiene rules stay on everywhere.
"""

from __future__ import annotations

import ast
import multiprocessing
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro import obs
from repro.analysis.cache import LintCache, file_digest
from repro.analysis.cache import rule_key as compute_rule_key
from repro.analysis.core import (
    SYNTAX_RULE_ID,
    LintContext,
    UnknownRuleError,
    Violation,
    apply_suppressions,
    find_suppressions,
)
from repro.analysis.project import ProjectIndex, build_project_index
from repro.analysis.registry import all_rules, create_rules, validate_select
from repro.analysis.reporters import REPORTERS

#: Directories never descended into during discovery.
_SKIPPED_DIRECTORIES = frozenset(
    {
        "__pycache__",
        ".git",
        ".venv",
        "build",
        "dist",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        ".hypothesis",
    }
)

#: Path segments that put a file under the relaxed profile (unless it
#: also sits under ``src``, which always wins).
_RELAXED_SEGMENTS = frozenset({"tests", "benchmarks", "tools", "examples"})

#: Rules exempt under the relaxed profile.  FPM008/FPM003 per the
#: profile's charter; FPM001/FPM002 because bit-identity ``==`` on
#: probabilities *is* the differential suites' contract; FPM010
#: because tests legitimately pin concrete meters and kind literals;
#: FPM011/FPM014 because benchmarks and fixtures probe internals on
#: purpose.  Fork-safety (FPM012), epoch discipline (FPM013) and the
#: hygiene rules stay on everywhere.
_RELAXED_EXEMPT = frozenset(
    {"FPM001", "FPM002", "FPM003", "FPM008", "FPM010", "FPM011", "FPM014"}
)

#: Part of the cache's rule key: results depend on the profile map.
_PROFILE_SIGNATURE = (
    "relaxed="
    + ",".join(sorted(_RELAXED_SEGMENTS))
    + ";exempt="
    + ",".join(sorted(_RELAXED_EXEMPT))
)


def profile_for(path: str) -> str:
    """``strict`` or ``relaxed`` for one file path."""
    segments = [part for part in re.split(r"[\\/]", path) if part]
    if "src" in segments:
        return "strict"
    if any(part in _RELAXED_SEGMENTS for part in segments):
        return "relaxed"
    return "strict"


def _effective_select(
    select: Optional[Sequence[str]], path: str
) -> Optional[List[str]]:
    """The per-file rule set after applying the directory profile."""
    if profile_for(path) != "relaxed":
        return list(select) if select is not None else None
    base = list(select) if select is not None else list(all_rules())
    return [rule_id for rule_id in base if rule_id not in _RELAXED_EXEMPT]


def _lint_file(
    source: str,
    path: str,
    select: Optional[Sequence[str]],
    index: Optional[ProjectIndex],
    tree: Optional[ast.Module] = None,
) -> List[Violation]:
    """Pass 2 for one file: parse (if needed), rules, suppressions."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Violation(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file does not parse: {error.msg}",
                )
            ]
    context = LintContext(path, source)
    for rule in create_rules(context, select=select, index=index):
        rule.check(tree)
    return apply_suppressions(
        context.violations,
        find_suppressions(source),
        path,
        known_rule_ids=frozenset(all_rules()),
    )


def check_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    index: Optional[ProjectIndex] = None,
) -> List[Violation]:
    """Lint one module's source text and return sorted violations.

    ``index`` feeds the cross-module rules; without one they degrade
    per their own contracts (FPM012-015 skip, FPM010/011 fall back to
    file-local heuristics).  No directory profile is applied here —
    callers linting a tree want :func:`lint_paths`.

    Raises:
        UnknownRuleError: if ``select`` names an unknown rule id (a
            ``KeyError`` subclass).
    """
    selected = list(select) if select is not None else None
    if selected is not None:
        validate_select(selected)
    return _lint_file(source, path, selected, index)


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, directories, files in os.walk(path):
                directories[:] = sorted(
                    name
                    for name in directories
                    if name not in _SKIPPED_DIRECTORIES
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(set(found))


# --- the parallel file pass ------------------------------------------
#
# The index pickles into each worker exactly once (pool initializer),
# task chunks carry only (path, source) pairs.  This is the same
# broadcast-once pattern train_grammar uses — and the one FPM012
# polices, so the linter's own pool is written under its own rule.

_WORKER_INDEX: Optional[ProjectIndex] = None
_WORKER_SELECT: Optional[Tuple[str, ...]] = None


def _worker_init_lint(
    index: ProjectIndex, select: Optional[Tuple[str, ...]]
) -> None:
    """Pool initializer: install the broadcast-once lint state."""
    global _WORKER_INDEX, _WORKER_SELECT
    _WORKER_INDEX = index
    _WORKER_SELECT = select


def _lint_chunk(
    items: List[Tuple[str, str]]
) -> List[Tuple[str, List[Violation]]]:
    """Worker task: lint a chunk of ``(path, source)`` pairs."""
    return [
        (
            path,
            _lint_file(
                source,
                path,
                _effective_select(_WORKER_SELECT, path),
                _WORKER_INDEX,
            ),
        )
        for path, source in items
    ]


def _lint_parallel(
    pending: List[str],
    sources: Dict[str, str],
    select: Optional[Sequence[str]],
    index: ProjectIndex,
    jobs: int,
) -> Dict[str, List[Violation]]:
    workers = jobs if jobs > 0 else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(pending)))
    chunks = [
        [(path, sources[path]) for path in pending[start::workers]]
        for start in range(workers)
    ]
    chunks = [chunk for chunk in chunks if chunk]
    results: Dict[str, List[Violation]] = {}
    selected = tuple(select) if select is not None else None
    with multiprocessing.Pool(
        processes=len(chunks),
        initializer=_worker_init_lint,
        initargs=(index, selected),
    ) as pool:
        for chunk_result in pool.imap(_lint_chunk, chunks):
            for path, violations in chunk_result:
                results[path] = violations
    return results


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    jobs: int = 1,
    cache_path: Optional[str] = None,
) -> "tuple[List[Violation], int]":
    """Lint paths; returns ``(violations, files_checked)``.

    ``jobs`` > 1 (or 0 for the CPU count) fans the file pass over a
    process pool.  ``cache_path`` enables the incremental cache (see
    :mod:`repro.analysis.cache`); ``None`` — the library default —
    always runs cold.
    """
    selected = list(select) if select is not None else None
    if selected is not None:
        validate_select(selected)
    telemetry = obs.get()
    files = discover_files(paths)
    sources: Dict[str, str] = {}
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources[path] = handle.read()
    digests = {path: file_digest(sources[path]) for path in files}
    key = compute_rule_key(selected, _PROFILE_SIGNATURE)

    cache: Optional[LintCache] = None
    if cache_path:
        cache = LintCache(cache_path)
        cache.load()
        if cache.matches_run(key, digests):
            # Identical bytes + identical rules ⇒ identical index ⇒
            # the whole previous run replays without a single parse.
            telemetry.incr("lint.cache.warm_run")
            violations = []
            for path in files:
                violations.extend(cache.cached_violations(path))
            telemetry.observe("lint.files", len(files))
            return sorted(violations), len(files)

    trees: Dict[str, ast.Module] = {}
    index = build_project_index(
        [(path, sources[path]) for path in files], trees
    )

    results: Dict[str, List[Violation]] = {}
    pending: List[str] = []
    for path in files:
        cached = (
            cache.lookup(path, digests[path], key, index.digest)
            if cache is not None
            else None
        )
        if cached is not None:
            telemetry.incr("lint.cache.hit")
            results[path] = cached
        else:
            if cache is not None:
                telemetry.incr("lint.cache.miss")
            pending.append(path)

    if jobs != 1 and len(pending) > 1:
        results.update(
            _lint_parallel(pending, sources, selected, index, jobs)
        )
    else:
        for path in pending:
            results[path] = _lint_file(
                sources[path],
                path,
                _effective_select(selected, path),
                index,
                trees.get(path),
            )

    if cache is not None:
        cache.store(
            key,
            index.digest,
            {path: (digests[path], results[path]) for path in files},
        )
    telemetry.observe("lint.files", len(files))
    violations = sorted(
        violation
        for file_violations in results.values()
        for violation in file_violations
    )
    return violations, len(files)


def run(
    paths: Sequence[str],
    output_format: str = "text",
    select: Optional[str] = None,
    stream: Optional[TextIO] = None,
    jobs: int = 1,
    cache_path: Optional[str] = None,
    fix: bool = False,
) -> int:
    """CLI driver: lint, report, and map the result to an exit code.

    Exit codes: 0 clean, 1 violations found, 2 usage error (unknown
    rule id, missing path, unknown format).  ``fix`` applies the
    mechanical autofixes (FPM007/FPM008) in place first, then reports
    what remains.
    """
    stream = stream if stream is not None else sys.stdout
    reporter = REPORTERS.get(output_format)
    if reporter is None:
        print(f"error: unknown format {output_format!r}", file=sys.stderr)
        return 2
    selected = None
    if select:
        selected = [part.strip() for part in select.split(",") if part.strip()]
        try:
            # Validate before touching the filesystem so FPM999 is a
            # usage error even over an empty or missing tree.
            validate_select(selected)
        except UnknownRuleError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if fix:
        from repro.analysis.fixes import fix_source

        try:
            files = discover_files(paths)
        except FileNotFoundError as error:
            print(f"error: no such path: {error.args[0]}", file=sys.stderr)
            return 2
        fixed_files = 0
        fix_count = 0
        for path in files:
            effective = _effective_select(selected, path)
            allowed = (
                frozenset(effective)
                if effective is not None
                else frozenset(all_rules())
            ) & {"FPM007", "FPM008"}
            if not allowed:
                continue
            with open(path, "r", encoding="utf-8") as handle:
                original = handle.read()
            fixed, count = fix_source(original, path, select=allowed)
            if count:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(fixed)
                fixed_files += 1
                fix_count += count
        print(
            f"fixed {fix_count} issue(s) in {fixed_files} file(s)",
            file=sys.stderr,
        )

    try:
        violations, files_checked = lint_paths(
            paths, select=selected, jobs=jobs, cache_path=cache_path
        )
    except UnknownRuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: no such path: {error.args[0]}", file=sys.stderr)
        return 2
    reporter(violations, files_checked, stream)
    return 1 if violations else 0


def describe_rules() -> List["tuple[str, str, str]"]:
    """``(rule_id, name, summary)`` rows for ``repro lint --list-rules``."""
    return [
        (rule_id, rule.name, rule.summary)
        for rule_id, rule in all_rules().items()
    ]
