"""Domain-invariant static analysis for the fuzzyPSM codebase.

A small AST-based linter that encodes the reproduction's non-style
invariants as machine-checkable rules — log-safe probability math,
seeded randomness, byte-stable serialization, picklable
multiprocessing workers, and annotation coverage of the public API.
Run it as ``repro lint src/repro`` or via ``make lint``.

Public surface:

* :func:`~repro.analysis.runner.check_source` — lint one source text;
* :func:`~repro.analysis.runner.lint_paths` — lint files/directories;
* :func:`~repro.analysis.runner.run` — CLI driver (reporter + exit
  code);
* :class:`~repro.analysis.core.Rule` / :func:`~repro.analysis.registry.register`
  — extension points for new rules.
"""

from repro.analysis.core import (
    LintContext,
    Rule,
    Suppression,
    Violation,
    find_suppressions,
)
from repro.analysis.registry import all_rules, create_rules, register
from repro.analysis.runner import (
    check_source,
    describe_rules,
    discover_files,
    lint_paths,
    run,
)

__all__ = [
    "LintContext",
    "Rule",
    "Suppression",
    "Violation",
    "all_rules",
    "check_source",
    "create_rules",
    "describe_rules",
    "discover_files",
    "find_suppressions",
    "lint_paths",
    "register",
    "run",
]
