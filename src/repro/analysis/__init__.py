"""Domain-invariant static analysis for the fuzzyPSM codebase.

A small AST-based linter that encodes the reproduction's non-style
invariants as machine-checkable rules — log-safe probability math,
seeded randomness, byte-stable serialization, picklable
multiprocessing workers, and annotation coverage of the public API.
Run it as ``repro lint src/repro`` or via ``make lint``.

Public surface:

* :func:`~repro.analysis.runner.check_source` — lint one source text;
* :func:`~repro.analysis.runner.lint_paths` — lint files/directories;
* :func:`~repro.analysis.runner.run` — CLI driver (reporter + exit
  code);
* :class:`~repro.analysis.core.Rule` /
  :class:`~repro.analysis.core.ProjectRule` /
  :func:`~repro.analysis.registry.register` — extension points for
  new rules (project rules additionally receive the pass-1
  :class:`~repro.analysis.project.ProjectIndex`);
* :func:`~repro.analysis.project.build_project_index` — the
  whole-program pass on its own, for tools and tests.
"""

from repro.analysis.core import (
    LintContext,
    ProjectRule,
    Rule,
    Suppression,
    UnknownRuleError,
    Violation,
    find_suppressions,
)
from repro.analysis.project import ProjectIndex, build_project_index
from repro.analysis.registry import all_rules, create_rules, register
from repro.analysis.runner import (
    check_source,
    describe_rules,
    discover_files,
    lint_paths,
    run,
)

__all__ = [
    "LintContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Suppression",
    "UnknownRuleError",
    "Violation",
    "all_rules",
    "build_project_index",
    "check_source",
    "create_rules",
    "describe_rules",
    "discover_files",
    "find_suppressions",
    "lint_paths",
    "register",
    "run",
]
