"""Visitor core of the domain-invariant static-analysis framework.

The framework is a thin, dependency-free layer over :mod:`ast`:

* a :class:`Rule` is an ``ast.NodeVisitor`` subclass with a stable
  ``rule_id`` (``FPM001``..) that reports :class:`Violation` objects
  into a shared :class:`LintContext`;
* :func:`check_source` parses one file, runs every registered rule
  over the tree, and applies inline suppressions;
* suppressions are written on the offending line as
  ``# lint-ok: FPM002 -- <justification>`` — the justification is
  mandatory, a bare suppression is itself reported (``FPM000``) so
  silent opt-outs cannot accumulate.

The rules themselves live in :mod:`repro.analysis.rules`; they encode
fuzzyPSM-specific invariants (log-domain probability handling,
deterministic training, picklable worker functions) rather than
generic style, which is delegated to ruff/mypy via ``make lint``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

#: Rule id reserved for suppression-comment problems.
SUPPRESSION_RULE_ID = "FPM000"
#: Rule id reserved for files that do not parse.
SYNTAX_RULE_ID = "FPM900"

#: ``# lint-ok: FPM002 -- reason`` (ids comma-separated, reason after
#: a literal ``--``).  The reason part is optional in the grammar but
#: required by the checker — see :func:`apply_suppressions`.
SUPPRESSION_RE = re.compile(
    r"#\s*lint-ok:\s*(?P<ids>FPM\d{3}(?:\s*,\s*FPM\d{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

#: Identifier fragments that mark a value as living in the probability
#: or entropy domain.  Shared by the probability-math rules so they
#: agree on what "a probability" looks like.
_PROBABILITY_NAME_RE = re.compile(
    r"(^|_)(p|prob|probs|probability|probabilities|likelihood|"
    r"entropy|entropies)($|_)",
    re.IGNORECASE,
)


def is_probability_name(name: str) -> bool:
    """Heuristic: does the identifier denote a probability/entropy?

    >>> is_probability_name("probability"), is_probability_name("p_cap")
    (True, True)
    >>> is_probability_name("position")
    False
    """
    return _PROBABILITY_NAME_RE.search(name) is not None


def probability_expression_name(node: ast.AST) -> Optional[str]:
    """The identifier a probability-domain expression is rooted at.

    Resolves names, attribute reads and call results — e.g. both
    ``probability``, ``self.entropy`` and ``meter.probability(pw)``
    map to an identifier the domain heuristic can judge.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return probability_expression_name(node.func)
    return None


def is_probability_expression(node: ast.AST) -> bool:
    name = probability_expression_name(node)
    return name is not None and is_probability_name(name)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:column rule-id message``."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """One ``# lint-ok:`` comment found in a source file."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: Optional[str]


class LintContext:
    """Per-file state shared by every rule instance."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.violations: List[Violation] = []

    def add(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                message=message,
            )
        )


class UnknownRuleError(KeyError):
    """``--select`` named a rule id that is not registered.

    Subclasses :class:`KeyError` so pre-existing callers that caught
    the bare ``KeyError`` keep working; carries the valid ids so the
    CLI can print them in the usage error.
    """

    def __init__(self, rule_id: str, known: Tuple[str, ...]) -> None:
        super().__init__(rule_id)
        self.rule_id = rule_id
        self.known = tuple(known)

    def __str__(self) -> str:
        return (
            f"unknown rule id {self.rule_id!r} "
            f"(valid: {', '.join(self.known)})"
        )


class Rule(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the class attributes and implement ``visit_*``
    methods; :meth:`report` files a violation against the current
    file.  One instance is created per (file, rule) pair, so visitor
    state never leaks between files.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def __init__(self, context: LintContext) -> None:
        self.context = context

    def report(self, node: ast.AST, message: str) -> None:
        self.context.add(self.rule_id, node, message)

    def check(self, tree: ast.Module) -> None:
        """Run the rule over a parsed module (default: visit it)."""
        self.visit(tree)


class ProjectRule(Rule):
    """A rule that also sees the pass-1 whole-program index.

    Per-file rules get ``(context)``; project rules get
    ``(context, index)`` where ``index`` is the
    :class:`~repro.analysis.project.ProjectIndex` built over every
    file in the run.  When linting a lone snippet (``check_source``
    without an index) the index is ``None`` and the rule must degrade
    gracefully — either skip entirely or fall back to its best
    file-local approximation.
    """

    def __init__(self, context: LintContext, index: Optional[object] = None) -> None:
        super().__init__(context)
        self.index = index

    def report_at(self, line: int, column: int, message: str) -> None:
        """File a violation at an explicit position (no AST node)."""
        self.context.violations.append(
            Violation(
                path=self.context.path,
                line=line,
                column=column,
                rule_id=self.rule_id,
                message=message,
            )
        )


def find_suppressions(source: str) -> List[Suppression]:
    """Collect every ``# lint-ok:`` comment with its line number.

    Tokenising (rather than grepping lines) keeps string literals that
    merely *mention* the marker from acting as suppressions.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rule_ids = tuple(
                part.strip() for part in match.group("ids").split(",")
            )
            suppressions.append(
                Suppression(token.start[0], rule_ids, match.group("reason"))
            )
    except tokenize.TokenError:
        pass  # lint-ok: FPM006 -- unterminated source is reported as FPM900 by the parser, not here
    return suppressions


def apply_suppressions(
    violations: List[Violation],
    suppressions: List[Suppression],
    path: str,
    known_rule_ids: Optional[frozenset] = None,
) -> List[Violation]:
    """Drop violations covered by a justified same-line suppression.

    A suppression without a ``-- justification`` does *not* silence
    anything and is itself reported as ``FPM000``; so is a
    suppression naming a rule id that does not exist.
    """
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    kept: List[Violation] = []
    for violation in violations:
        covered = False
        for suppression in by_line.get(violation.line, []):
            if (
                violation.rule_id in suppression.rule_ids
                and suppression.reason
            ):
                covered = True
                break
        if not covered:
            kept.append(violation)

    for suppression in suppressions:
        if not suppression.reason:
            kept.append(
                Violation(
                    path=path,
                    line=suppression.line,
                    column=1,
                    rule_id=SUPPRESSION_RULE_ID,
                    message=(
                        "suppression lacks a justification; write "
                        "'# lint-ok: "
                        + ", ".join(suppression.rule_ids)
                        + " -- <why this is safe>'"
                    ),
                )
            )
        elif known_rule_ids is not None:
            for rule_id in suppression.rule_ids:
                if rule_id not in known_rule_ids:
                    kept.append(
                        Violation(
                            path=path,
                            line=suppression.line,
                            column=1,
                            rule_id=SUPPRESSION_RULE_ID,
                            message=(
                                f"suppression names unknown rule "
                                f"{rule_id!r}"
                            ),
                        )
                    )
    return sorted(kept)
