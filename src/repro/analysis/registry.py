"""Rule registry: rules self-register at import time.

Keeping registration declarative (a decorator on the rule class) means
adding a rule is one file edit in :mod:`repro.analysis.rules` — the
runner, CLI, reporters and ``--select`` filtering all pick it up from
here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.core import (
    LintContext,
    ProjectRule,
    Rule,
    UnknownRuleError,
)

_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in _RULES and _RULES[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _RULES[rule_id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, keyed and ordered by rule id."""
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def rule_ids() -> List[str]:
    return list(all_rules())


def validate_select(select: Iterable[str]) -> List[str]:
    """Check every id against the registry; returns them as a list.

    Raises:
        UnknownRuleError: naming the first unregistered id plus the
            full list of valid ids (the CLI prints both).
    """
    registry = all_rules()
    chosen = list(select)
    for rule_id in chosen:
        if rule_id not in registry:
            raise UnknownRuleError(rule_id, tuple(registry))
    return chosen


def create_rules(
    context: LintContext,
    select: Optional[Iterable[str]] = None,
    index: Optional[object] = None,
) -> List[Rule]:
    """Instantiate (optionally a subset of) the registered rules.

    ``index`` — the pass-1 :class:`~repro.analysis.project.ProjectIndex`
    — is handed to :class:`ProjectRule` subclasses; per-file rules are
    constructed exactly as before.

    Raises:
        UnknownRuleError: if ``select`` names an unregistered rule id
            (a ``KeyError`` subclass, for backward compatibility).
    """
    registry = all_rules()
    chosen = list(registry) if select is None else validate_select(select)
    instances: List[Rule] = []
    for rule_id in sorted(set(chosen)):
        rule_class = registry[rule_id]
        if issubclass(rule_class, ProjectRule):
            instances.append(rule_class(context, index))
        else:
            instances.append(rule_class(context))
    return instances


def _ensure_loaded() -> None:
    """Import the rule modules (idempotent) so they self-register."""
    from repro.analysis import rules  # noqa: F401  (import-for-effect)
