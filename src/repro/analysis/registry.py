"""Rule registry: rules self-register at import time.

Keeping registration declarative (a decorator on the rule class) means
adding a rule is one file edit in :mod:`repro.analysis.rules` — the
runner, CLI, reporters and ``--select`` filtering all pick it up from
here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.core import LintContext, Rule

_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in _RULES and _RULES[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _RULES[rule_id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, keyed and ordered by rule id."""
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def rule_ids() -> List[str]:
    return list(all_rules())


def create_rules(
    context: LintContext, select: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Instantiate (optionally a subset of) the registered rules.

    Raises:
        KeyError: if ``select`` names an unregistered rule id.
    """
    registry = all_rules()
    if select is None:
        chosen = list(registry)
    else:
        chosen = list(select)
        for rule_id in chosen:
            if rule_id not in registry:
                raise KeyError(rule_id)
    return [registry[rule_id](context) for rule_id in sorted(set(chosen))]


def _ensure_loaded() -> None:
    """Import the rule modules (idempotent) so they self-register."""
    from repro.analysis import rules  # noqa: F401  (import-for-effect)
