"""FPM015: static capability conformance for ``@register_meter``.

The registry already verifies capability declarations at import time
(PR 4), but import-time checks only fire for code paths that import
the module — a meter behind an optional extra, or a capability whose
backing method was renamed in a refactor, slips through until the
first runtime use.  This rule re-runs the same contract statically:
each capability declared in a ``@register_meter`` decoration must be
backed by a method that actually exists somewhere on the static MRO
(resolved through the pass-1 index, so inherited implementations such
as ``Meter.probability_many`` count), with the required keyword
parameters (``jobs`` for ``PARALLEL_SCORABLE``).

The required-method tables are imported from
:mod:`repro.meters.registry` itself — one source of truth, so the
static gate can never drift from the runtime gate.  When a base class
cannot be resolved statically the rule stays silent about missing
methods (they may live on the unresolved base) but still checks
signatures of the definitions it can see.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ProjectRule
from repro.analysis.project import ProjectIndex
from repro.analysis.registry import register
from repro.meters.registry import (
    _CAPABILITY_METHODS,
    _CAPABILITY_PARAMETERS,
    Capability,
)


@register
class CapabilityConformanceRule(ProjectRule):
    """FPM015: declared capabilities must have backing methods."""

    rule_id = "FPM015"
    name = "capability-conformance"
    summary = (
        "every capability declared in @register_meter must be backed "
        "by a method defined on the class or its static MRO, with the "
        "required parameters (e.g. jobs= for PARALLEL_SCORABLE)"
    )

    def check(self, tree: ast.Module) -> None:
        index = self.index
        if not isinstance(index, ProjectIndex):
            return
        module = index.module_for_path(self.context.path)
        if module is None:
            return
        for cls in module.classes:
            registration = cls.meter_registration
            if registration is None:
                continue
            qualified = f"{module.module}.{cls.name}"
            for capability_name in registration.capabilities:
                capability = Capability.__members__.get(capability_name)
                if capability is None:
                    self.report_at(
                        registration.lineno,
                        1,
                        f"{cls.name} declares unknown capability "
                        f"{capability_name!r}",
                    )
                    continue
                required = _CAPABILITY_METHODS.get(capability, ())
                parameters = _CAPABILITY_PARAMETERS.get(capability, ())
                for method in required:
                    info, complete = index.find_method(qualified, method)
                    if info is None:
                        if complete:
                            self.report_at(
                                registration.lineno,
                                1,
                                f"{cls.name} declares "
                                f"Capability.{capability_name} but "
                                f"defines no {method}() anywhere on "
                                f"its static MRO",
                            )
                        continue
                    for parameter in parameters:
                        if (
                            parameter not in info.params
                            and not info.has_kwarg
                        ):
                            self.report_at(
                                registration.lineno,
                                1,
                                f"{cls.name}.{method}() backs "
                                f"Capability.{capability_name} but "
                                f"does not accept {parameter}=",
                            )
