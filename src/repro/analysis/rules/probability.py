"""Probability-domain rules (paper Sec. IV: ``P(pw)`` is a product).

``P(pw)`` is a product of many rule probabilities (Fig. 11 of the
paper).  Two numeric hazards follow:

* comparing such floats with ``==``/``!=`` is meaningless once any
  rounding has occurred — only the exact sentinels ``0`` (unreachable
  derivation) and ``1`` (certain factor) are safe to test exactly;
* accumulating the product in the linear domain underflows to 0.0
  for long passwords, silently conflating "weak but derivable" with
  "underivable".  Products must stay inside the small set of blessed
  kernels that short-circuit at exact zero, or move to log space.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.core import (
    LintContext,
    Rule,
    is_probability_expression,
)
from repro.analysis.registry import register

#: Functions allowed to accumulate linear-domain probability products.
#: Each one short-circuits on exact 0.0 and is covered by equivalence
#: tests, so the underflow window is the factor count of a single
#: password (bounded by its length), not of a whole corpus.
BLESSED_PRODUCT_SCOPES = frozenset(
    {
        "FuzzyGrammar.segment_probability",
        "FuzzyGrammar.derivation_probability",
        "FrozenGrammar.derivation_probability",
        "PCFGMeter.probability",
        "PCFGMeter.sample",
        "MarkovMeter.probability",
        "MarkovMeter._sample_once",
        # The attack engine replicates FrozenGrammar.derivation_probability's
        # factor association so emitted probabilities stay bit-identical
        # to the kernel (asserted in tests/test_attacks_engine.py).
        "AttackEngine._enumerate",
        "AttackEngine._terminal_stream",
        "AttackEngine._case_options",
    }
)


def _is_exact_sentinel(node: ast.AST) -> bool:
    """Literals that are exact in IEEE-754: 0, 1 and infinity."""
    if isinstance(node, ast.Constant):
        value = node.value
        return (
            not isinstance(value, bool)
            and isinstance(value, (int, float))
            and value in (0, 1)
        )
    # math.inf / float("inf"): the entropy of a zero-probability
    # password, also exactly representable.
    if isinstance(node, ast.Attribute) and node.attr == "inf":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
    ):
        return node.args[0].value in ("inf", "-inf")
    return False


@register
class FloatProbabilityCompareRule(Rule):
    """FPM001: no raw ``==``/``!=`` between probability floats."""

    rule_id = "FPM001"
    name = "float-probability-compare"
    summary = (
        "probability/entropy values may be ==/!=-compared only against "
        "the exact sentinels 0, 1 and inf; use math.isclose otherwise"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if not (
                is_probability_expression(left)
                or is_probability_expression(right)
            ):
                continue
            if _is_exact_sentinel(left) or _is_exact_sentinel(right):
                continue
            self.report(
                node,
                "floating-point ==/!= on a probability/entropy value; "
                "compare against the exact sentinels 0/1/inf or use "
                "math.isclose",
            )
        self.generic_visit(node)


@register
class RawProbabilityProductRule(Rule):
    """FPM002: no open-ended linear-domain probability products."""

    rule_id = "FPM002"
    name = "raw-probability-product"
    summary = (
        "math.prod / *=-accumulation over rule probabilities underflows "
        "outside the blessed zero-short-circuiting kernels; use log space"
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._scope: List[str] = []

    # --- scope tracking ------------------------------------------------

    def _qualified(self) -> str:
        return ".".join(self._scope)

    def _in_blessed_scope(self) -> bool:
        qualified = self._qualified()
        return any(
            qualified == blessed or qualified.endswith("." + blessed)
            for blessed in BLESSED_PRODUCT_SCOPES
        )

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    # --- checks --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_math_prod = (
            isinstance(func, ast.Attribute)
            and func.attr == "prod"
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
        ) or (isinstance(func, ast.Name) and func.id == "prod")
        if is_math_prod and not self._in_blessed_scope():
            self.report(
                node,
                "math.prod over probabilities underflows for long "
                "factor chains; sum logs instead (or extend a blessed "
                "kernel)",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            isinstance(node.op, ast.Mult)
            and is_probability_expression(node.target)
            and not self._in_blessed_scope()
        ):
            self.report(
                node,
                "probability accumulated with *= outside a blessed "
                "kernel; chain products underflow — accumulate "
                "log-probabilities instead",
            )
        self.generic_visit(node)
