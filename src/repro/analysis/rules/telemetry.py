"""FPM014: telemetry probe-name hygiene.

Probe names are the only join key between the hot-path counters and
everything downstream — ``repro profile`` reports, golden counter
tests, dashboards.  A misspelt or free-form name doesn't fail; it
silently starts a new time series nobody reads.  The rule pins every
probe name emitted through the telemetry API to a *dotted string
literal* whose head segment is a namespace registered via
``obs.register_namespace("...")`` (harvested project-wide by the
pass-1 index, so the authority lives next to the probes it governs).

f-strings are allowed when their leading literal already carries the
registered, dotted prefix (``f"experiment.score.{kind}.seconds"``);
fully dynamic names are skipped rather than guessed at — the rule
only judges what it can read statically.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.core import ProjectRule
from repro.analysis.project import ProjectIndex
from repro.analysis.registry import register

#: Telemetry methods whose first argument is a probe name
#: (``defer`` is absent: its first argument is a handler).
_PROBE_METHODS = frozenset({"incr", "observe", "timer"})
#: Local names the telemetry backend is conventionally bound to.
_RECEIVER_NAMES = frozenset({"telemetry", "tel"})

_DOTTED_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
_DOTTED_PREFIX_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*\.$")


def _is_telemetry_receiver(node: ast.AST) -> bool:
    """``telemetry.incr`` / ``tel.observe`` / ``obs.get().timer``."""
    if isinstance(node, ast.Name):
        return node.id in _RECEIVER_NAMES
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return (
            node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "obs"
        )
    return False


@register
class TelemetryNameRule(ProjectRule):
    """FPM014: probe names are dotted literals under registered roots."""

    rule_id = "FPM014"
    name = "telemetry-name-hygiene"
    summary = (
        "telemetry probe names must be dotted string literals whose "
        "head segment is registered via obs.register_namespace; "
        "free-form names silently fork the metric series"
    )

    def check(self, tree: ast.Module) -> None:
        index = self.index
        if not isinstance(index, ProjectIndex):
            return
        self._namespaces = index.registered_namespaces
        if not self._namespaces:
            return  # no authority to check against in this project
        self.visit(tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and _is_telemetry_receiver(func.value)
        ):
            if func.attr in _PROBE_METHODS and node.args:
                self._check_name(node.args[0])
            elif func.attr == "incr_many" and node.args:
                self._check_many(node.args[0])
        self.generic_visit(node)

    def _check_many(self, node: ast.AST) -> None:
        if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return  # built elsewhere; not statically judgeable
        for element in node.elts:
            if isinstance(element, ast.Tuple) and element.elts:
                self._check_name(element.elts[0])

    def _check_name(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self._judge(node, node.value, literal=True)
        elif isinstance(node, ast.JoinedStr):
            head = node.values[0] if node.values else None
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                self._judge(node, head.value, literal=False)
            else:
                self.report(
                    node,
                    "telemetry probe name is an f-string with no "
                    "literal dotted prefix; start it with "
                    "'<namespace>.<...>.' so the series stays "
                    "greppable",
                )
        # Plain variables are skipped: the value is not visible here.

    def _judge(self, node: ast.AST, text: str, literal: bool) -> None:
        pattern = _DOTTED_RE if literal else _DOTTED_PREFIX_RE
        if not pattern.match(text):
            shape = "a dotted lowercase path" if literal else (
                "a dotted lowercase prefix ending in '.'"
            )
            self.report(
                node,
                f"telemetry probe name {text!r} is not {shape} "
                f"(expected '<namespace>.<segment>[.<segment>...]')",
            )
            return
        head = text.split(".", 1)[0]
        if head not in self._namespaces:
            known = ", ".join(sorted(self._namespaces))
            self.report(
                node,
                f"telemetry namespace {head!r} is not registered "
                f"(known: {known}); add obs.register_namespace"
                f"({head!r}) next to the probes it owns",
            )
