"""FPM012: fork-safety of the worker-pool surface (DESIGN.md §13).

Parallel training and scoring broadcast heavy state (compiled trie,
frozen grammar) into worker processes exactly once, through a pool
``initializer`` that writes module globals.  Everything else that runs
in a worker — the task entrypoints and their transitive callees — may
*read* those globals but must never write them: a write would silently
diverge per-worker state from the parent and from sibling workers,
breaking the byte-identical-parallel-training guarantee (PR 6) in a
way no test that happens to fork after the write can see.

The rule leans on the pass-1 :class:`ProjectIndex`: worker entrypoints
come from real ``pool.imap``/``apply_async``/``Process(target=...)``
call sites anywhere in the project, the blessed writers are functions
actually installed via ``initializer=`` (plus the ``_worker_init*``
and ``_worker_attach*`` naming conventions — the latter being the
shared-memory attach cache of :mod:`repro.core.shm`, broadcast-once
state of the same kind), and reachability is the transitive closure
over the approximate call graph.  A ``global`` statement is the write
signal — rebinding a broadcast-once global is exactly the bug class.

It also rejects unpicklable task targets (lambdas and nested
functions) at the call site, which would otherwise only fail at
runtime on spawn-based platforms.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ProjectRule
from repro.analysis.project import ProjectIndex
from repro.analysis.registry import register


@register
class ForkSafetyRule(ProjectRule):
    """FPM012: no global writes past fork, no unpicklable entrypoints."""

    rule_id = "FPM012"
    name = "fork-safety"
    summary = (
        "worker entrypoints and their transitive callees may read but "
        "never write broadcast-once module globals (only _worker_init* "
        "pool initializers and _worker_attach* segment-attach helpers "
        "may), and pool task targets must be picklable module-level "
        "functions"
    )

    def check(self, tree: ast.Module) -> None:
        index = self.index
        if not isinstance(index, ProjectIndex):
            return
        module = index.module_for_path(self.context.path)
        if module is None:
            return

        for info in module.functions:
            if not info.global_names:
                continue
            qualified = f"{module.module}.{info.qualname}"
            if qualified not in index.worker_reachable:
                continue
            if qualified in index.blessed_initializers:
                continue
            names = ", ".join(sorted(info.global_names))
            self.report_at(
                info.global_lineno,
                1,
                f"worker-reachable function {info.qualname!r} writes "
                f"module global(s) {names} after fork; only a blessed "
                f"_worker_init* initializer or _worker_attach* helper "
                f"may write broadcast-once state",
            )

        nested_names = {
            info.name for info in module.functions if info.is_nested
        }
        for use in module.worker_uses:
            if use.role != "task":
                continue
            if use.target is None:
                self.report_at(
                    use.lineno,
                    use.column,
                    "lambda handed to a process pool is unpicklable; "
                    "use a module-level function",
                )
                continue
            resolved = index.resolve_symbol(module, use.target)
            if resolved is None:
                if use.target in nested_names:
                    self.report_at(
                        use.lineno,
                        use.column,
                        f"nested function {use.target!r} handed to a "
                        f"process pool captures its closure and is "
                        f"unpicklable; hoist it to module level",
                    )
                continue
            info = index.find_function(resolved)
            if info is not None and info.is_nested:
                self.report_at(
                    use.lineno,
                    use.column,
                    f"nested function {use.target!r} handed to a "
                    f"process pool captures its closure and is "
                    f"unpicklable; hoist it to module level",
                )
