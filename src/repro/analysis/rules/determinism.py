"""Determinism rules: seeded randomness, ordered serialization, and
picklable multiprocessing workers.

The reproduction's headline guarantees — identical experiment output
for identical seeds, and byte-identical serial/parallel training (see
:meth:`repro.core.grammar.FuzzyGrammar.merge`) — are easy to break
with one careless call: a module-level ``random.random()``, a ``for``
loop over a ``set`` inside ``to_dict``, or a lambda handed to a
``multiprocessing.Pool``.  These rules make each of those a lint
failure instead of a flaky benchmark.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import LintContext, Rule
from repro.analysis.registry import register

#: ``random.<fn>`` calls that draw from the process-global RNG.
_GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "getrandbits", "gauss",
        "betavariate", "expovariate", "normalvariate", "triangular",
    }
)

#: Function names whose bodies feed serialization or exact-merge paths.
_SERIALIZATION_NAME_RE_PARTS = (
    "to_dict", "from_dict", "to_json", "merge",
)
_SERIALIZATION_PREFIXES = ("save", "dump", "write", "serial")

#: ``Pool``/``Process``/executor entry points that pickle their callee.
_POOL_METHODS = frozenset(
    {
        "map", "imap", "imap_unordered", "map_async",
        "starmap", "starmap_async", "apply", "apply_async", "submit",
    }
)
_POOL_CONSTRUCTORS = frozenset({"Pool", "Process", "ProcessPoolExecutor"})


def _is_serialization_name(name: str) -> bool:
    return name in _SERIALIZATION_NAME_RE_PARTS or any(
        name.startswith(prefix) for prefix in _SERIALIZATION_PREFIXES
    )


@register
class UnseededRandomRule(Rule):
    """FPM003: no process-global / unseeded randomness."""

    rule_id = "FPM003"
    name = "unseeded-random"
    summary = (
        "module-level random.* calls, random.seed, and seedless "
        "random.Random()/default_rng() break run-to-run reproducibility"
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        #: Names imported via ``from random import <name>``.
        self._from_random: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._from_random.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "random":
                self._check_random_module_call(node, func.attr)
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                self._check_numpy_random_call(node, func.attr)
        elif isinstance(func, ast.Name) and func.id in self._from_random:
            if func.id in _GLOBAL_RNG_FUNCTIONS:
                self.report(
                    node,
                    f"{func.id}() imported from random draws from the "
                    "process-global RNG; pass a seeded random.Random",
                )
            elif func.id == "Random" and not node.args:
                self.report(
                    node, "Random() without a seed is nondeterministic"
                )
        self.generic_visit(node)

    def _check_random_module_call(self, node: ast.Call, attr: str) -> None:
        if attr in _GLOBAL_RNG_FUNCTIONS:
            self.report(
                node,
                f"random.{attr}() draws from the process-global RNG; "
                "pass a seeded random.Random instance instead",
            )
        elif attr == "seed":
            self.report(
                node,
                "random.seed mutates global state other code observes; "
                "construct a local random.Random(seed)",
            )
        elif attr == "Random" and not node.args:
            self.report(
                node, "random.Random() without a seed is nondeterministic"
            )

    def _check_numpy_random_call(self, node: ast.Call, attr: str) -> None:
        if attr == "default_rng":
            if not node.args:
                self.report(
                    node,
                    "numpy default_rng() without a seed is "
                    "nondeterministic",
                )
        else:
            self.report(
                node,
                f"numpy global np.random.{attr}() is process-global "
                "state; use a seeded Generator",
            )


@register
class UnorderedSerializationRule(Rule):
    """FPM004: no set-ordered iteration feeding serialization/merge."""

    rule_id = "FPM004"
    name = "unordered-serialization"
    summary = (
        "iterating a set inside to_dict/merge/save paths makes output "
        "ordering hash-dependent, breaking byte-identical artefacts"
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._serialization_depth = 0

    def _visit_function(self, node: ast.AST, name: str) -> None:
        matched = _is_serialization_name(name)
        self._serialization_depth += 1 if matched else 0
        self.generic_visit(node)
        self._serialization_depth -= 1 if matched else 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._serialization_depth > 0 and self._is_unordered(iter_node):
            self.report(
                iter_node,
                "iteration over an unordered set inside a "
                "serialization/merge path; wrap it in sorted() so the "
                "output is byte-stable across processes",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


@register
class UnpicklableWorkerRule(Rule):
    """FPM005: no lambdas/nested functions handed to worker pools."""

    rule_id = "FPM005"
    name = "unpicklable-worker"
    summary = (
        "lambdas and nested functions cannot be pickled to "
        "multiprocessing workers; use a module-level function"
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._active = False
        self._nested_defs: Set[str] = set()

    def check(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".")[0]
                    in ("multiprocessing", "concurrent")
                    for alias in node.names
                ):
                    self._active = True
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("multiprocessing", "concurrent"):
                    self._active = True
        if not self._active:
            return
        self._collect_nested_defs(tree)
        self.visit(tree)

    def _collect_nested_defs(self, tree: ast.Module) -> None:
        functions = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            for child in ast.walk(function):
                if child is function:
                    continue
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._nested_defs.add(child.name)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        candidates: List[ast.AST] = []
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            candidates.extend(node.args[:1])
            candidates.extend(
                keyword.value
                for keyword in node.keywords
                if keyword.arg in ("func", "initializer", "fn")
            )
        constructor: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in _POOL_CONSTRUCTORS:
            constructor = func.id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_CONSTRUCTORS
        ):
            constructor = func.attr
        if constructor is not None:
            candidates.extend(
                keyword.value
                for keyword in node.keywords
                if keyword.arg in ("target", "initializer")
            )
        for candidate in candidates:
            self._check_worker(candidate)
        self.generic_visit(node)

    def _check_worker(self, node: ast.AST) -> None:
        if isinstance(node, ast.Lambda):
            self.report(
                node,
                "lambda passed to a multiprocessing entry point cannot "
                "be pickled; define a module-level function",
            )
        elif isinstance(node, ast.Name) and node.id in self._nested_defs:
            self.report(
                node,
                f"nested function {node.id!r} passed to a "
                "multiprocessing entry point cannot be pickled; move it "
                "to module level",
            )
