"""Hygiene rules: silent exception handling, mutable defaults, and
annotation coverage of the public API.

These are the generic-but-load-bearing rules: a swallowed exception in
a scoring path silently turns "crash" into "wrong benchmark number",
a mutable default turns two meters into secret shared state, and an
unannotated public function is invisible to the strict mypy gate that
``make lint`` runs over :mod:`repro.core`.
"""

from __future__ import annotations

import ast
from typing import List, Union

from repro.analysis.core import LintContext, Rule
from repro.analysis.registry import register

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Calls producing a fresh mutable container on every evaluation —
#: except that as a default they are evaluated exactly once.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "Counter", "defaultdict", "OrderedDict", "deque",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class SilentExceptRule(Rule):
    """FPM006: no bare ``except:`` and no ``except Exception: pass``."""

    rule_id = "FPM006"
    name = "silent-except"
    summary = (
        "bare except and except Exception: pass hide scoring bugs as "
        "silently-wrong benchmark numbers; catch narrowly and handle"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions this path can actually handle",
            )
        elif self._is_broad(node.type) and self._swallows(node.body):
            self.report(
                node,
                "except Exception with a pass-only body swallows every "
                "error; catch narrowly or handle the failure",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names: List[ast.AST] = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS
            for name in names
        )

    @staticmethod
    def _swallows(body: List[ast.stmt]) -> bool:
        if len(body) != 1:
            return False
        statement = body[0]
        if isinstance(statement, ast.Pass):
            return True
        return (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        )


@register
class MutableDefaultRule(Rule):
    """FPM007: no mutable default argument values."""

    rule_id = "FPM007"
    name = "mutable-default"
    summary = (
        "mutable defaults are evaluated once and shared across calls; "
        "default to None and construct inside the function"
    )

    def _check_function(self, node: _FunctionNode) -> None:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default in {node.name}(); use None and "
                    "build the container inside the body",
                )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set,
             ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


@register
class MissingAnnotationsRule(Rule):
    """FPM008: public API functions must be fully annotated."""

    rule_id = "FPM008"
    name = "missing-annotations"
    summary = (
        "public module-level functions and public methods of public "
        "classes need parameter and return annotations"
    )

    def check(self, tree: ast.Module) -> None:
        for statement in tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._check_signature(statement, method=False)
            elif isinstance(
                statement, ast.ClassDef
            ) and not statement.name.startswith("_"):
                for member in statement.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._check_signature(member, method=True)

    def _check_signature(
        self, node: _FunctionNode, method: bool
    ) -> None:
        if node.name.startswith("_"):
            return
        if any(
            isinstance(decorator, ast.Name)
            and decorator.id == "overload"
            for decorator in node.decorator_list
        ):
            return
        args = node.args
        positional = args.posonlyargs + args.args
        if method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            argument.arg
            for argument in positional + args.kwonlyargs
            if argument.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            self.report(
                node,
                f"public function {node.name}() is missing parameter "
                "annotations: " + ", ".join(missing),
            )
        if node.returns is None:
            self.report(
                node,
                f"public function {node.name}() is missing a return "
                "annotation",
            )
