"""FPM013: epoch discipline on grammar count-table mutations.

:class:`~repro.core.frozen.FrozenGrammar` snapshots invalidate lazily
by comparing their captured epoch against ``FuzzyGrammar._epoch``
(DESIGN.md §11).  The whole scheme rests on one invariant: *every*
code path that mutates a count table also bumps the epoch.  Miss one
and a frozen snapshot keeps serving probabilities from a grammar that
no longer exists — bit-exact wrongness that only shows up as a stale
score long after the mutation.

The index tells the rule which classes are epoch guarded (their
``__init__`` assigns ``_epoch`` alongside count tables) so the rule
generalises beyond ``FuzzyGrammar`` by construction, and resolves
parameter annotations so out-of-class mutators — e.g.
``DeltaMerger.apply(grammar: FuzzyGrammar, ...)`` — are held to the
same bar as methods.  "On every path" is enforced structurally: the
bump must be an unconditional top-level statement of the mutating
function; a bump inside an ``if`` earns a violation that has to be
justified with a suppression explaining why the guarded paths are
no-ops.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import ProjectRule
from repro.analysis.project import (
    GRAMMAR_TABLE_ATTRIBUTES,
    ModuleInfo,
    ProjectIndex,
    _annotation_text,
)
from repro.analysis.registry import register

#: FrequencyDistribution / dict methods that change table counts.
_MUTATING_METHODS = frozenset(
    {"add", "merge", "update", "setdefault", "subtract", "increment",
     "pop", "popitem", "clear"}
)


def _table_access(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``(receiver, table)`` when ``node`` is ``<name>.<table>[...]*``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.attr in GRAMMAR_TABLE_ATTRIBUTES
    ):
        return node.value.id, node.attr
    return None


@register
class EpochDisciplineRule(ProjectRule):
    """FPM013: table mutations must unconditionally bump the epoch."""

    rule_id = "FPM013"
    name = "epoch-discipline"
    summary = (
        "any function mutating a grammar count table (structures/"
        "terminals/capitalization/leet/reverse/allcaps) must bump the "
        "owner's _epoch unconditionally, or FrozenGrammar snapshots go "
        "stale"
    )

    def check(self, tree: ast.Module) -> None:
        index = self.index
        if not isinstance(index, ProjectIndex):
            return
        module = index.module_for_path(self.context.path)
        if module is None or not index.epoch_guarded_classes:
            return
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                qualified = f"{module.module}.{node.name}"
                guarded_self = qualified in index.epoch_guarded_classes
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_function(
                            index, module, child, guarded_self
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(index, module, node, False)

    def _check_function(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        guarded_self: bool,
    ) -> None:
        receivers: List[str] = ["self"] if guarded_self else []
        if node.name == "__init__" and guarded_self:
            return  # construction populates the tables at epoch 0
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            annotation = _annotation_text(arg.annotation)
            if annotation is None:
                continue
            resolved = index.resolve_symbol(module, annotation)
            if resolved is None and annotation in (
                name.rsplit(".", 1)[1]
                for name in index.epoch_guarded_classes
            ):
                # Same-module annotation of a guarded class.
                resolved = f"{module.module}.{annotation}"
            if resolved in index.epoch_guarded_classes:
                receivers.append(arg.arg)
        if not receivers:
            return

        mutated: Dict[str, List[Tuple[str, int]]] = {}
        for child in ast.walk(node):
            access: Optional[Tuple[str, str]] = None
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                if child.func.attr in _MUTATING_METHODS:
                    access = _table_access(child.func.value)
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    access = access or _table_access(target)
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    access = access or _table_access(target)
            if access is None:
                continue
            receiver, table = access
            if receiver in receivers:
                mutated.setdefault(receiver, []).append(
                    (table, child.lineno)
                )

        if not mutated:
            return
        bumped = set()
        for statement in node.body:
            target: Optional[ast.expr] = None
            if isinstance(statement, ast.AugAssign):
                target = statement.target
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "_epoch"
                and isinstance(target.value, ast.Name)
            ):
                bumped.add(target.value.id)

        for receiver, accesses in sorted(mutated.items()):
            if receiver in bumped:
                continue
            tables = ", ".join(sorted({table for table, _ in accesses}))
            self.report_at(
                node.lineno,
                node.col_offset + 1,
                f"{node.name!r} mutates count table(s) {tables} of "
                f"{receiver!r} without an unconditional "
                f"{receiver}._epoch bump; FrozenGrammar snapshots "
                f"will not invalidate",
            )
