"""Timing rule: one blessed clock source for the whole codebase.

The observability layer (:mod:`repro.obs`) owns timing: spans read the
backend's injectable clock, and the module-level
:data:`repro.obs.core.now` is the blessed raw timestamp for the rare
code that needs one (e.g. worker-side chunk timing).  A stray
``time.perf_counter()`` elsewhere bypasses that injection point — the
code becomes untestable without wall-clock sleeps and invisible to
profiling sessions.  FPM009 makes the bypass a lint failure.

Exempt by path: the ``obs`` package itself (it must touch the real
clock somewhere) and ``benchmarks`` (whose entire point is wall-clock
measurement).
"""

from __future__ import annotations

import ast
import re
from typing import Set

from repro.analysis.core import LintContext, Rule
from repro.analysis.registry import register

#: :mod:`time` functions that read a clock.
_CLOCK_FUNCTIONS = frozenset(
    {
        "time", "time_ns",
        "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns",
        "process_time", "process_time_ns",
    }
)

#: Path segments whose files may touch the real clock directly.
_EXEMPT_SEGMENTS = frozenset({"obs", "benchmarks"})


@register
class DirectClockRule(Rule):
    """FPM009: no direct wall-clock reads outside obs/ and benchmarks/."""

    rule_id = "FPM009"
    name = "direct-clock"
    summary = (
        "direct time.time()/perf_counter() calls bypass the injectable "
        "telemetry clock; import `now` from repro.obs.core instead"
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        #: Local aliases of the :mod:`time` module (``import time as t``).
        self._time_modules: Set[str] = set()
        #: Clock functions imported by name, keyed by local alias.
        self._from_time: dict = {}

    def check(self, tree: ast.Module) -> None:
        segments = set(re.split(r"[\\/]", self.context.path))
        if segments & _EXEMPT_SEGMENTS:
            return
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCTIONS:
                    self._from_time[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_FUNCTIONS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_modules
        ):
            self._report_clock_call(node, f"time.{func.attr}")
        elif isinstance(func, ast.Name) and func.id in self._from_time:
            self._report_clock_call(
                node, f"time.{self._from_time[func.id]}"
            )
        self.generic_visit(node)

    def _report_clock_call(self, node: ast.Call, call: str) -> None:
        self.report(
            node,
            f"{call}() reads the wall clock directly, bypassing the "
            "injectable telemetry clock; use `from repro.obs.core "
            "import now` (or a Span) so tests and profiles can swap "
            "the clock",
        )
