"""The rule catalogue.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Rules are grouped by the invariant
family they protect:

* :mod:`~repro.analysis.rules.probability` — FPM001/FPM002, the
  numeric domain of ``P(pw)`` (paper Sec. IV);
* :mod:`~repro.analysis.rules.determinism` — FPM003/FPM004/FPM005,
  seeded randomness, byte-stable serialization, picklable workers;
* :mod:`~repro.analysis.rules.hygiene` — FPM006/FPM007/FPM008,
  silent excepts, mutable defaults, public-API annotations;
* :mod:`~repro.analysis.rules.timing` — FPM009, the injectable
  telemetry clock as the only wall-clock source;
* :mod:`~repro.analysis.rules.dispatch` — FPM010, meter dispatch via
  the capability registry, never concrete classes or kind literals;
* :mod:`~repro.analysis.rules.tables` — FPM011, grammar count tables
  normalised only inside the grammar kernel modules (the two kernels
  proven bit-identical to each other).

The cross-module rules ride on the pass-1 project index
(:mod:`repro.analysis.project`):

* :mod:`~repro.analysis.rules.forksafety` — FPM012, worker-reachable
  code never writes broadcast-once module globals past fork;
* :mod:`~repro.analysis.rules.epoch` — FPM013, grammar count-table
  mutations bump the epoch so frozen snapshots invalidate;
* :mod:`~repro.analysis.rules.telemetry` — FPM014, probe names are
  dotted literals under registered ``obs`` namespaces;
* :mod:`~repro.analysis.rules.capabilities` — FPM015, declared meter
  capabilities are statically backed by methods with the required
  signatures.
"""

from repro.analysis.rules import (
    capabilities,
    determinism,
    dispatch,
    epoch,
    forksafety,
    hygiene,
    probability,
    tables,
    telemetry,
    timing,
)

__all__ = [
    "capabilities", "determinism", "dispatch", "epoch", "forksafety",
    "hygiene", "probability", "tables", "telemetry", "timing",
]
