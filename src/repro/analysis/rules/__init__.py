"""The rule catalogue.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Rules are grouped by the invariant
family they protect:

* :mod:`~repro.analysis.rules.probability` — FPM001/FPM002, the
  numeric domain of ``P(pw)`` (paper Sec. IV);
* :mod:`~repro.analysis.rules.determinism` — FPM003/FPM004/FPM005,
  seeded randomness, byte-stable serialization, picklable workers;
* :mod:`~repro.analysis.rules.hygiene` — FPM006/FPM007/FPM008,
  silent excepts, mutable defaults, public-API annotations;
* :mod:`~repro.analysis.rules.timing` — FPM009, the injectable
  telemetry clock as the only wall-clock source;
* :mod:`~repro.analysis.rules.dispatch` — FPM010, meter dispatch via
  the capability registry, never concrete classes or kind literals;
* :mod:`~repro.analysis.rules.tables` — FPM011, grammar count tables
  normalised only inside grammar.py / frozen.py (the two kernels
  proven bit-identical to each other).
"""

from repro.analysis.rules import (
    determinism,
    dispatch,
    hygiene,
    probability,
    tables,
    timing,
)

__all__ = [
    "determinism", "dispatch", "hygiene", "probability", "tables",
    "timing",
]
