"""Grammar-table encapsulation rule (scoring-kernel integrity).

The fuzzy grammar's count tables (``structures``, ``terminals``,
``capitalization``, ``leet``, ``reverse``, ``allcaps``) have *two*
blessed probability views that are proven bit-identical to each other:
the :class:`~repro.core.grammar.FuzzyGrammar` ``*_probability``
methods (which encode the sentinel semantics — e.g. a never-trained
``reverse`` table is a certainty factor, not 0.0) and the compiled
:class:`~repro.core.frozen.FrozenGrammar` snapshot.

Code elsewhere that reaches *through* a grammar into a table and calls
``.probability(...)`` / ``.smoothed_probability(...)`` directly gets
neither guarantee: it silently skips the sentinel handling and
bypasses the frozen kernel, so its numbers drift from what the meter
reports.  FPM011 turns that reach-through into a lint failure.

Reading table *counts* (``.count``, ``.total``, ``.items``,
``.most_common``) stays allowed everywhere — counts are the grammar's
public currency (serialisation, enumeration, reporting); it is the
probability *normalisation* that must stay in the two kernels.

Exempt by module identity when the project index is available: the
modules that *define* epoch-guarded grammar classes (the tables' home,
found by the index rather than by filename) plus the frozen-snapshot
module.  Index-less single-file runs fall back to the historical
filename check.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import ProjectRule
from repro.analysis.project import GRAMMAR_TABLE_ATTRIBUTES, ProjectIndex
from repro.analysis.registry import register

#: The FuzzyGrammar count-table attribute names (shared with FPM013).
_TABLE_ATTRIBUTES = GRAMMAR_TABLE_ATTRIBUTES

#: FrequencyDistribution methods that normalise counts into
#: probabilities — the operation reserved to the blessed kernels.
_PROBABILITY_METHODS = frozenset({"probability", "smoothed_probability"})

#: File names allowed to normalise grammar tables directly — the
#: fallback for index-less runs only.
_EXEMPT_FILES = frozenset({"grammar.py", "frozen.py"})

#: Modules exempt by identity beyond the epoch-guarded table owners:
#: the frozen snapshot is the second blessed kernel but its fields are
#: private (``_structures``), so the index cannot infer it.
_EXEMPT_MODULES = frozenset({"repro.core.frozen"})


def _table_attribute(node: ast.AST) -> bool:
    """Does ``node`` read a grammar table (directly or subscripted)?

    Matches ``<obj>.terminals`` and ``<obj>.leet[rule]`` shapes — the
    attribute read is what identifies the table; the subscript covers
    the per-length terminal and per-rule leet dictionaries.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _TABLE_ATTRIBUTES
    )


@register
class GrammarTableAccessRule(ProjectRule):
    """FPM011: no direct grammar-table probability reads outside the
    grammar and its frozen snapshot."""

    rule_id = "FPM011"
    name = "grammar-table-access"
    summary = (
        "calling .probability()/.smoothed_probability() on a grammar "
        "count table outside the grammar kernel modules bypasses the "
        "sentinel semantics and the frozen kernel; go through "
        "FuzzyGrammar.*_probability or FrozenGrammar"
    )

    def check(self, tree: ast.Module) -> None:
        index = self.index
        if isinstance(index, ProjectIndex):
            module = index.module_for_path(self.context.path)
            if module is not None:
                exempt = set(_EXEMPT_MODULES)
                for guarded in index.epoch_guarded_classes:
                    exempt.add(guarded.rsplit(".", 1)[0])
                if module.module in exempt:
                    return
            else:
                # File unknown to the index (e.g. a snippet linted
                # alongside a prebuilt index): fall through to the
                # filename fallback below.
                segments = re.split(r"[\\/]", self.context.path)
                if segments and segments[-1] in _EXEMPT_FILES:
                    return
        else:
            segments = re.split(r"[\\/]", self.context.path)
            if segments and segments[-1] in _EXEMPT_FILES:
                return
        self.visit(tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _PROBABILITY_METHODS
            and _table_attribute(func.value)
        ):
            self.report(
                node,
                f"direct {func.attr}() on a grammar count table; use "
                "the FuzzyGrammar *_probability methods (sentinel "
                "semantics) or a FrozenGrammar snapshot instead",
            )
        self.generic_visit(node)
