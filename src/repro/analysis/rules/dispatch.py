"""Dispatch rule: meter dispatch goes through the registry.

The meter registry (:mod:`repro.meters.registry`) is the single point
where meter kinds, classes and capabilities meet.  Code that branches
on ``isinstance(meter, PCFGMeter)`` or ``kind == "markov"`` re-creates
the hardcoded dispatch tables the registry replaced — and silently
misses any meter registered later.  The blessed spellings are
capability checks (``isinstance(meter, Updatable)``,
``spec.has(Capability.PERSISTABLE)``) and registry lookups
(``get_spec``, ``build_meter``, ``kinds_with``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.core import ProjectRule
from repro.analysis.project import ProjectIndex
from repro.analysis.registry import register

#: The concrete meter classes shipping with the package.  Capability
#: protocols (Updatable, Persistable, ...) are deliberately absent:
#: isinstance against those IS the blessed dispatch.
_METER_CLASS_NAMES = frozenset(
    {
        "FuzzyPSM",
        "PCFGMeter",
        "MarkovMeter",
        "IdealMeter",
        "ZxcvbnMeter",
        "KeePSMMeter",
        "NISTMeter",
    }
)

#: Registry kinds and display names whose string comparison marks a
#: hand-rolled dispatch table.  ``ideal``/``Ideal`` are deliberately
#: excluded: scenario kinds (``scenario.kind == "ideal"``, the paper's
#: ideal/real/cross split) legitimately share that spelling and are
#: not meter dispatch.
_METER_KIND_LITERALS = frozenset(
    {
        "fuzzypsm", "fuzzyPSM",
        "pcfg", "PCFG",
        "markov", "Markov",
        "zxcvbn", "Zxcvbn",
        "keepsm", "KeePSM",
        "nist", "NIST",
    }
)


def _class_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name or dotted Attribute."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _string_literals(node: ast.AST) -> Iterator[str]:
    """Every string constant in a comparison operand."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                yield element.value


@register
class ConcreteMeterDispatchRule(ProjectRule):
    """FPM010: no concrete-meter isinstance or kind-string dispatch."""

    rule_id = "FPM010"
    name = "concrete-meter-dispatch"
    summary = (
        "isinstance against concrete meter classes and comparisons "
        "with meter-kind string literals bypass the meter registry; "
        "dispatch on capabilities or registry specs instead"
    )

    #: Populated per file in :meth:`check` — the shipped names plus
    #: whatever ``@register_meter`` declarations the index found, so a
    #: meter registered by a plugin module is covered automatically.
    _class_names = _METER_CLASS_NAMES
    _kind_literals = _METER_KIND_LITERALS

    def check(self, tree: ast.Module) -> None:
        # The registry module is the one place allowed to know every
        # kind string and class: it defines the mapping the rest of
        # the codebase must consume.  With an index the exemption is
        # by module *identity*; the path suffix is only the fallback
        # for index-less single-file runs.
        index = self.index
        if isinstance(index, ProjectIndex):
            module = index.module_for_path(self.context.path)
            if module is not None and module.module == "repro.meters.registry":
                return
            registered_names = set()
            registered_kinds = set()
            for _, cls, registration in index.meter_registrations():
                registered_names.add(cls.name)
                # "ideal" stays excluded even when registered: scenario
                # kinds share the spelling (see _METER_KIND_LITERALS).
                if registration.kind and registration.kind != "ideal":
                    registered_kinds.add(registration.kind)
            self._class_names = _METER_CLASS_NAMES | registered_names
            self._kind_literals = _METER_KIND_LITERALS | registered_kinds
        else:
            path = self.context.path.replace("\\", "/")
            if path.endswith("meters/registry.py"):
                return
            self._class_names = _METER_CLASS_NAMES
            self._kind_literals = _METER_KIND_LITERALS
        self.visit(tree)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            target = node.args[1]
            candidates: List[ast.AST] = (
                list(target.elts)
                if isinstance(target, ast.Tuple)
                else [target]
            )
            for candidate in candidates:
                name = _class_name(candidate)
                if name in self._class_names:
                    self.report(
                        node,
                        f"isinstance() against concrete meter {name}; "
                        "check a registry capability protocol "
                        "(repro.meters.registry) instead",
                    )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(
            isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            for op in node.ops
        ):
            for operand in [node.left, *node.comparators]:
                for literal in _string_literals(operand):
                    if literal in self._kind_literals:
                        self.report(
                            node,
                            f"comparison with meter-kind literal "
                            f"{literal!r}; resolve through the meter "
                            "registry (get_spec/kinds_with) instead",
                        )
        self.generic_visit(node)
