"""Violation reporters: ``file:line rule-id message`` text and JSON.

Both reporters receive the full violation list plus the number of
files checked, so the text summary and the JSON envelope stay in
agreement with each other (and with the runner's exit code).
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO

from repro.analysis.core import Violation


def render_text(
    violations: List[Violation], files_checked: int, stream: TextIO
) -> None:
    """One ``path:line:column: rule-id message`` line per violation."""
    for violation in violations:
        stream.write(violation.render() + "\n")
    noun = "file" if files_checked == 1 else "files"
    if violations:
        stream.write(
            f"{len(violations)} violation(s) in {files_checked} "
            f"{noun} checked\n"
        )
    else:
        stream.write(f"clean: {files_checked} {noun} checked\n")


def render_json(
    violations: List[Violation], files_checked: int, stream: TextIO
) -> None:
    """A machine-readable envelope (stable key order for diffing)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    stream.write(
        json.dumps(
            {
                "files_checked": files_checked,
                "violation_count": len(violations),
                "counts_by_rule": dict(sorted(counts.items())),
                "violations": [
                    {
                        "path": violation.path,
                        "line": violation.line,
                        "column": violation.column,
                        "rule_id": violation.rule_id,
                        "message": violation.message,
                    }
                    for violation in violations
                ],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


REPORTERS = {"text": render_text, "json": render_json}
