"""Violation reporters: text, JSON, and SARIF 2.1.0.

Every reporter receives the full violation list plus the number of
files checked, so the text summary, the JSON envelope and the SARIF
run stay in agreement with each other (and with the runner's exit
code).  The SARIF output is what CI uploads through
``github/codeql-action/upload-sarif`` to surface violations as
code-scanning annotations on pull requests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, TextIO, Tuple

from repro.analysis.core import (
    SUPPRESSION_RULE_ID,
    SYNTAX_RULE_ID,
    Violation,
)

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/fuzzypsm-repro/fuzzypsm-repro"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Framework pseudo-rules that can appear in results but live outside
#: the registry: suppression problems and unparsable files.
_FRAMEWORK_RULES = (
    (
        SUPPRESSION_RULE_ID,
        "suppression-hygiene",
        "a # lint-ok suppression lacks a justification or names an "
        "unknown rule id",
    ),
    (
        SYNTAX_RULE_ID,
        "syntax-error",
        "the file does not parse",
    ),
)


def render_text(
    violations: List[Violation], files_checked: int, stream: TextIO
) -> None:
    """One ``path:line:column: rule-id message`` line per violation."""
    for violation in violations:
        stream.write(violation.render() + "\n")
    noun = "file" if files_checked == 1 else "files"
    if violations:
        stream.write(
            f"{len(violations)} violation(s) in {files_checked} "
            f"{noun} checked\n"
        )
    else:
        stream.write(f"clean: {files_checked} {noun} checked\n")


def render_json(
    violations: List[Violation], files_checked: int, stream: TextIO
) -> None:
    """A machine-readable envelope (stable key order for diffing)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    stream.write(
        json.dumps(
            {
                "files_checked": files_checked,
                "violation_count": len(violations),
                "counts_by_rule": dict(sorted(counts.items())),
                "violations": [
                    {
                        "path": violation.path,
                        "line": violation.line,
                        "column": violation.column,
                        "rule_id": violation.rule_id,
                        "message": violation.message,
                    }
                    for violation in violations
                ],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _sarif_rules() -> List[Dict[str, object]]:
    """Driver rule metadata: the registry plus the framework rules."""
    from repro.analysis.registry import all_rules

    entries: List[Dict[str, object]] = []
    for rule_id, rule in all_rules().items():
        entries.append(
            {
                "id": rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    for rule_id, name, summary in _FRAMEWORK_RULES:
        entries.append(
            {
                "id": rule_id,
                "name": name,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def render_sarif(
    violations: List[Violation], files_checked: int, stream: TextIO
) -> None:
    """One SARIF 2.1.0 run (the GitHub code-scanning ingest format)."""
    rules = _sarif_rules()
    rule_index = {rule["id"]: position for position, rule in enumerate(rules)}
    results = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column,
                        },
                    }
                }
            ],
        }
        if violation.rule_id in rule_index:
            result["ruleIndex"] = rule_index[violation.rule_id]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    stream.write(json.dumps(document, indent=2, sort_keys=True) + "\n")


def render_rule_table_markdown(
    rows: Sequence[Tuple[str, str, str]]
) -> str:
    """The ``--list-rules --format markdown`` table (README source).

    One pipe-table row per rule; the docs-consistency test regenerates
    this from the registry and asserts the README copy matches, so the
    README can never drift from the shipped rule set.
    """
    lines = ["| Rule | Name | Enforces |", "| --- | --- | --- |"]
    for rule_id, name, summary in rows:
        cell = summary.replace("|", "\\|")
        lines.append(f"| {rule_id} | `{name}` | {cell} |")
    return "\n".join(lines) + "\n"


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
