"""The section-directory codec shared by binary models and shm snapshots.

One layout, two consumers.  The FPSMBIN1 binary model format
(:mod:`repro.persistence`) and the zero-copy shared-memory snapshot
plane (:mod:`repro.core.shm`) both need the same thing: a handful of
flat columns — ``int64`` count tables, ``float64`` probability tables,
UTF-8 string blobs, raw byte flags — packed one after another behind a
self-describing directory, such that a reader can ``memoryview.cast``
the numeric columns straight out of the mapping without copying.  This
module is that layout, factored out of ``persistence.py`` so the shm
plane reuses it instead of inventing a second framing::

    magic | uint64 header length | header JSON | pad
    | section payloads (each 8-byte aligned)

The header is a sorted-keys JSON object carrying caller-supplied
fields (format versions, meter metadata, …) plus the ``sections``
directory: for every section its ``name``, ``dtype``, absolute
``offset``, byte ``length`` and element ``count``.  Packing is
deterministic — same fields and sections, same bytes — which both
consumers rely on (artefact diffing for model files, epoch-keyed reuse
for segments).

Supported dtypes:

=========  ======================  =============================
dtype      packed from             unpacked to
=========  ======================  =============================
``i64``    ``array('q')``          zero-copy ``memoryview('q')``
``f64``    ``array('d')``          zero-copy ``memoryview('d')``
``utf8``   ``str``                 ``str``
``bytes``  ``bytes``/``bytearray`` zero-copy ``memoryview('B')``
           /``memoryview``         (or ``bytes`` with ``copy=True``)
=========  ======================  =============================

Foreign-endian input (a model file moved between hosts) falls back to
a byteswapped copy for the numeric dtypes; shared-memory segments
never cross hosts, so their unpack path is always the zero-copy cast.

All structural failures raise :class:`SectionError` (a ``ValueError``)
with the reason only; callers wrap it with their own context (file
path, segment name).
"""

from __future__ import annotations

import json
import sys
from array import array
from typing import Any, Dict, List, Mapping, Tuple

#: Payload sections are padded to this alignment so ``int64``/``float64``
#: columns can be cast straight out of the mapping.
ALIGN = 8

#: ``array`` typecode per numeric dtype tag.
_NUMERIC_TYPECODES = {"i64": "q", "f64": "d"}


class SectionError(ValueError):
    """A packed section layout is structurally invalid."""


def encode_section(value: Any) -> Tuple[str, bytes, int]:
    """``(dtype, payload, count)`` for one section value."""
    if isinstance(value, array):
        if value.typecode == "q":
            return "i64", value.tobytes(), len(value)
        if value.typecode == "d":
            return "f64", value.tobytes(), len(value)
        raise TypeError(
            f"binary sections must be array('q') or array('d'), got "
            f"array({value.typecode!r})"
        )
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return "utf8", payload, len(payload)
    if isinstance(value, (bytes, bytearray, memoryview)):
        payload = bytes(value)
        return "bytes", payload, len(payload)
    raise TypeError(
        f"binary sections must be array('q'), array('d'), str or "
        f"bytes, got {type(value).__name__}"
    )


def pack(
    magic: bytes,
    header_fields: Mapping[str, Any],
    sections: Mapping[str, Any],
) -> bytes:
    """Render the full ``magic | header | aligned payloads`` image.

    ``header_fields`` is merged into the header object verbatim (it
    must be JSON-serialisable and must not contain a ``sections`` key);
    ``byteorder`` is stamped by the caller when it matters (model
    files) and omitted when it does not (same-host segments).
    """
    if "sections" in header_fields:
        raise ValueError("'sections' is a reserved header field")
    encoded = [
        (name, *encode_section(value))
        for name, value in sections.items()
    ]

    def _render_header(offsets: List[int]) -> bytes:
        header = dict(header_fields)
        header["sections"] = [
            {
                "name": name,
                "dtype": dtype,
                "offset": offset,
                "length": len(payload),
                "count": count,
            }
            for (name, dtype, payload, count), offset in zip(
                encoded, offsets
            )
        ]
        return json.dumps(header, sort_keys=True).encode("utf-8")

    # Header length depends on the offsets and vice versa; iterate to
    # a fixed point (two passes suffice — offsets only grow when the
    # header grows, and digit-count growth converges immediately).
    offsets = [0] * len(encoded)
    for _ in range(4):
        header_bytes = _render_header(offsets)
        base = len(magic) + 8 + len(header_bytes)
        base += (-base) % ALIGN
        new_offsets = []
        position = base
        for _name, _dtype, payload, _count in encoded:
            new_offsets.append(position)
            position += len(payload)
            position += (-position) % ALIGN
        if new_offsets == offsets:
            break
        offsets = new_offsets
    header_bytes = _render_header(offsets)
    pieces = [magic, len(header_bytes).to_bytes(8, "little"), header_bytes]
    position = len(magic) + 8 + len(header_bytes)
    for (_name, _dtype, payload, _count), offset in zip(encoded, offsets):
        pieces.append(b"\0" * (offset - position))
        pieces.append(payload)
        position = offset + len(payload)
    return b"".join(pieces)


def read_header(view: memoryview, magic: bytes) -> Dict[str, Any]:
    """Validate the framing and parse the header object of ``view``."""
    prefix = len(magic) + 8
    if len(view) < prefix:
        raise SectionError("truncated before header")
    if bytes(view[: len(magic)]) != magic:
        raise SectionError(f"bad magic (expected {magic!r})")
    header_length = int.from_bytes(view[len(magic):prefix], "little")
    if len(view) < prefix + header_length:
        raise SectionError("truncated inside header")
    try:
        header = json.loads(
            bytes(view[prefix:prefix + header_length]).decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SectionError(f"corrupt header: {error}") from error
    if not isinstance(header, dict):
        raise SectionError("header must be a JSON object")
    return header


def decode_sections(
    header: Mapping[str, Any],
    view: memoryview,
    copy: bool = False,
) -> Dict[str, Any]:
    """Materialise every directory entry of ``header`` out of ``view``.

    Numeric columns come back as zero-copy casts of the underlying
    buffer unless the recorded ``byteorder`` disagrees with this host
    (then a byteswapped ``array`` copy) or ``copy=True`` is passed
    (then plain ``array`` copies, for callers about to release the
    buffer).  ``bytes`` sections are zero-copy ``memoryview('B')``
    slices under the same rule.
    """
    swap = header.get("byteorder", sys.byteorder) != sys.byteorder
    sections: Dict[str, Any] = {}
    for entry in header.get("sections", []):
        name = entry["name"]
        offset = entry["offset"]
        length = entry["length"]
        if offset + length > len(view):
            raise SectionError(f"truncated section {name!r}")
        raw = view[offset:offset + length]
        dtype = entry["dtype"]
        typecode = _NUMERIC_TYPECODES.get(dtype)
        if typecode is not None:
            if length % 8:
                raise SectionError(
                    f"misaligned {dtype} section {name!r}"
                )
            if swap or copy:
                column = array(typecode)
                column.frombytes(raw)
                if swap:
                    column.byteswap()
                sections[name] = column
            else:
                sections[name] = raw.cast(typecode)
        elif dtype == "utf8":
            sections[name] = bytes(raw).decode("utf-8")
        elif dtype == "bytes":
            sections[name] = bytes(raw) if copy else raw
        else:
            raise SectionError(f"unknown section dtype {dtype!r}")
    return sections
