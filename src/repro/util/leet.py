"""The top-6 leet ("l33t") substitutions used by fuzzyPSM.

The paper's fuzzy grammar models exactly six leet rules (Table VI), in
decreasing order of observed popularity::

    L1: a <-> @    L2: s <-> $    L3: o <-> 0
    L4: i <-> 1    L5: e <-> 3    L6: t <-> 7

``deleet`` maps a (lower-cased) string back to its all-letter base form,
recording which rules fired; ``leet_variants`` enumerates the forward
images, which the zxcvbn reimplementation also uses for its l33t matcher.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Tuple

#: ``(rule_name, letter, substitute)`` in the paper's priority order.
LEET_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("L1", "a", "@"),
    ("L2", "s", "$"),
    ("L3", "o", "0"),
    ("L4", "i", "1"),
    ("L5", "e", "3"),
    ("L6", "t", "7"),
)

#: letter -> substitute, e.g. ``"a" -> "@"``.
LEET_BY_LETTER: Dict[str, str] = {letter: sub for _, letter, sub in LEET_PAIRS}

#: substitute -> letter, e.g. ``"@" -> "a"``.
LEET_BY_SUBSTITUTE: Dict[str, str] = {sub: letter for _, letter, sub in LEET_PAIRS}

#: rule name -> (letter, substitute).
LEET_RULES: Dict[str, Tuple[str, str]] = {
    name: (letter, sub) for name, letter, sub in LEET_PAIRS
}

LEET_RULE_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in LEET_PAIRS)

#: character -> 0-based leet rule number, both directions of a pair
#: (``"a" -> 0`` and ``"@" -> 0``); the integer-index twin of
#: :func:`repro.core.grammar.leet_rule_for_char`, shared by the frozen
#: scoring kernel and the training delta builder so both derive rule
#: membership without per-call string work.
LEET_RULE_INDEX: Dict[str, int] = {}
for _index, (_name, _letter, _sub) in enumerate(LEET_PAIRS):
    LEET_RULE_INDEX[_letter] = _index
    LEET_RULE_INDEX[_sub] = _index
del _index, _name, _letter, _sub


def deleet(text: str) -> Tuple[str, FrozenSet[str]]:
    """Undo leet substitutions, returning ``(base_text, rules_used)``.

    Every occurrence of a substitute character is mapped back to its
    letter; the rule fires if it mapped at least one character.

    >>> base, rules = deleet("p@ssw0rd")
    >>> base, sorted(rules)
    ('password', ['L1', 'L3'])
    >>> deleet("password")[1]
    frozenset()
    """
    rules_used = set()
    chars: List[str] = []
    for ch in text:
        letter = LEET_BY_SUBSTITUTE.get(ch)
        if letter is None:
            chars.append(ch)
        else:
            chars.append(letter)
            for name, rule_letter, rule_sub in LEET_PAIRS:
                if rule_sub == ch and rule_letter == letter:
                    rules_used.add(name)
    return "".join(chars), frozenset(rules_used)


def applicable_rules(base_text: str) -> FrozenSet[str]:
    """Leet rules whose *letter* occurs in ``base_text``.

    Only these rules contribute a Yes/No decision to the probability of
    a derivation (a rule cannot fire on a word that lacks its letter).

    >>> sorted(applicable_rules("password"))
    ['L1', 'L2', 'L3']
    """
    present = set(base_text)
    return frozenset(
        name for name, letter, _ in LEET_PAIRS if letter in present
    )


def apply_rules(base_text: str, rules: FrozenSet[str]) -> str:
    """Apply the given leet rules to every matching letter.

    >>> apply_rules("password", frozenset({"L1", "L3"}))
    'p@ssw0rd'
    """
    table = {}
    for name in rules:
        letter, sub = LEET_RULES[name]
        table[letter] = sub
    return "".join(table.get(ch, ch) for ch in base_text)


def leet_variants(base_text: str, max_variants: int = 64) -> Iterator[str]:
    """Enumerate leet images of ``base_text`` (excluding the identity).

    Rules toggle independently, so a word containing ``k`` distinct
    leet-able letters has ``2**k - 1`` non-trivial variants.  The
    enumeration is capped at ``max_variants`` as a safety valve.

    >>> sorted(leet_variants("so"))
    ['$0', '$o', 's0']
    """
    rules = sorted(applicable_rules(base_text))
    count = 0
    for r in range(1, len(rules) + 1):
        for combo in itertools.combinations(rules, r):
            if count >= max_variants:
                return
            yield apply_rules(base_text, frozenset(combo))
            count += 1
