"""A counting frequency distribution with probability queries.

Used everywhere a model learns "how often did X occur in training":
fuzzy-PCFG rule tables, traditional PCFG segment tables, the ideal
meter's empirical distribution, and corpus statistics.  It is a thin,
explicit wrapper over a dict that adds probability normalisation,
rank queries and additive smoothing in one place.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class FrequencyDistribution(Generic[T]):
    """Counts hashable items and answers probability / rank queries.

    >>> fd = FrequencyDistribution(["a", "b", "a", "a"])
    >>> fd.count("a"), fd.total
    (3, 4)
    >>> fd.probability("a")
    0.75
    >>> fd.most_common(1)
    [('a', 3)]
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._counts: Dict[T, int] = {}
        self._total = 0
        if items is not None:
            self.update(items)

    # --- mutation ---------------------------------------------------

    def add(self, item: T, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item`` (count must be >= 0)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._counts[item] = self._counts.get(item, 0) + count
        self._total += count

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    @classmethod
    def from_counts(
        cls, counts: Iterable[Tuple[T, int]]
    ) -> "FrequencyDistribution[T]":
        """Bulk constructor from ``(item, count)`` pairs.

        The fast path for deserialising large count tables (the binary
        model loader rebuilds hundreds of thousands of entries): one
        dict build plus one sum instead of per-item :meth:`add` calls.
        Iteration order becomes the table's insertion order, and the
        same validation as :meth:`add` applies — zero counts are
        dropped, negative counts are rejected.
        """
        table: Dict[T, int] = {}
        for item, count in counts:
            if count < 0:
                raise ValueError("count must be non-negative")
            if count:
                table[item] = table.get(item, 0) + count
        dist: "FrequencyDistribution[T]" = cls()
        dist._counts = table
        dist._total = sum(table.values())
        return dist

    def merge(self, other: "FrequencyDistribution[T]") -> None:
        """Add every count of ``other`` into this distribution.

        Counting commutes, so merging per-chunk distributions yields
        exactly the distribution a single pass over the concatenated
        data would have produced — this is what makes parallel grammar
        training an exact optimisation rather than an approximation.
        """
        counts = self._counts
        for item, count in other._counts.items():
            counts[item] = counts.get(item, 0) + count
        self._total += other._total

    # --- queries ----------------------------------------------------

    @property
    def total(self) -> int:
        """Total number of observations (with multiplicity)."""
        return self._total

    @property
    def support_size(self) -> int:
        """Number of distinct items observed."""
        return len(self._counts)

    def count(self, item: T) -> int:
        return self._counts.get(item, 0)

    def probability(self, item: T) -> float:
        """Maximum-likelihood probability; 0.0 for unseen items."""
        if self._total == 0:
            return 0.0
        return self._counts.get(item, 0) / self._total

    def smoothed_probability(self, item: T, alpha: float = 1.0,
                             vocabulary_size: Optional[int] = None) -> float:
        """Additive (Laplace) smoothed probability.

        ``vocabulary_size`` defaults to the observed support size, which
        gives every *seen* item a small discount and unseen items mass
        ``alpha / (total + alpha * V)``.
        """
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        vocab = vocabulary_size if vocabulary_size is not None else len(self._counts)
        denominator = self._total + alpha * vocab
        if denominator == 0:
            return 0.0
        return (self._counts.get(item, 0) + alpha) / denominator

    def most_common(self, n: Optional[int] = None) -> List[Tuple[T, int]]:
        """Items sorted by descending count (ties broken by item repr)."""
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked if n is None else ranked[:n]

    def items(self) -> Iterator[Tuple[T, int]]:
        return iter(self._counts.items())

    def counts_of_counts(self) -> Dict[int, int]:
        """Map ``r -> number of items seen exactly r times`` (for Good-Turing)."""
        out: Dict[int, int] = {}
        for count in self._counts.values():
            out[count] = out.get(count, 0) + 1
        return out

    # --- dunder -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Count-table equality (same items with the same counts)."""
        if not isinstance(other, FrequencyDistribution):
            return NotImplemented
        return self._counts == other._counts

    __hash__ = None  # mutable container

    def __contains__(self, item: object) -> bool:
        return item in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[T]:
        return iter(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequencyDistribution(support={len(self._counts)}, "
            f"total={self._total})"
        )
