"""Shared low-level helpers used across the fuzzyPSM reproduction.

This package deliberately contains only small, dependency-free building
blocks: character-class predicates and segmentation (:mod:`~repro.util.charclasses`),
the leet substitution table used by the fuzzy grammar and by zxcvbn
(:mod:`~repro.util.leet`), and a counting frequency distribution
(:mod:`~repro.util.freqdist`).
"""

from repro.util.charclasses import (
    CharClass,
    char_class,
    classify_composition,
    segment_by_class,
    PRINTABLE_ASCII,
)
from repro.util.freqdist import FrequencyDistribution
from repro.util.leet import (
    LEET_PAIRS,
    LEET_BY_LETTER,
    LEET_BY_SUBSTITUTE,
    deleet,
    leet_variants,
)

__all__ = [
    "CharClass",
    "char_class",
    "classify_composition",
    "segment_by_class",
    "PRINTABLE_ASCII",
    "FrequencyDistribution",
    "LEET_PAIRS",
    "LEET_BY_LETTER",
    "LEET_BY_SUBSTITUTE",
    "deleet",
    "leet_variants",
]
