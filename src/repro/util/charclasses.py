"""Character classes and structural segmentation of passwords.

The PCFG line of work (Weir et al., S&P 2009; Houshmand & Aggarwal,
ACSAC 2012) models a password as a sequence of maximal runs of letters
(``L``), digits (``D``) and symbols (``S``).  This module provides the
segmentation primitive shared by the traditional PCFG meter, the fuzzy
PCFG fallback parser and the corpus statistics code, plus the
composition-class predicates used to reproduce Table IX of the paper.
"""

from __future__ import annotations

import enum
import re
import string
from typing import Iterator, List, NamedTuple

#: The full 95 printable ASCII characters; the paper sets the password
#: alphabet Sigma to this set in all cracking experiments (Sec. II-B).
PRINTABLE_ASCII = frozenset(chr(c) for c in range(0x20, 0x7F))

_LOWER = frozenset(string.ascii_lowercase)
_UPPER = frozenset(string.ascii_uppercase)
_DIGIT = frozenset(string.digits)
_SYMBOL = PRINTABLE_ASCII - _LOWER - _UPPER - _DIGIT


class CharClass(enum.Enum):
    """The three PCFG character classes (letters fold case into one class)."""

    LETTER = "L"
    DIGIT = "D"
    SYMBOL = "S"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def char_class(ch: str) -> CharClass:
    """Return the :class:`CharClass` of a single character.

    >>> char_class("a") is CharClass.LETTER
    True
    >>> char_class("7") is CharClass.DIGIT
    True
    >>> char_class("@") is CharClass.SYMBOL
    True
    """
    if len(ch) != 1:
        raise ValueError(f"expected a single character, got {ch!r}")
    if ch in _LOWER or ch in _UPPER:
        return CharClass.LETTER
    if ch in _DIGIT:
        return CharClass.DIGIT
    return CharClass.SYMBOL


class Segment(NamedTuple):
    """A maximal same-class run inside a password.

    ``label`` is the PCFG symbol, e.g. ``L8`` for an 8-letter run.
    """

    char_class: CharClass
    text: str

    @property
    def label(self) -> str:
        return f"{self.char_class.value}{len(self.text)}"


#: One maximal same-class run (letters / digits / symbols).
_RUN_PATTERN = re.compile(r"[A-Za-z]+|[0-9]+|[^A-Za-z0-9]+")


def segment_by_class(password: str) -> List[Segment]:
    """Split a password into maximal L/D/S runs.

    >>> [s.label for s in segment_by_class("p@ssw0rd")]
    ['L1', 'S1', 'L3', 'D1', 'L2']
    >>> [s.text for s in segment_by_class("Password123")]
    ['Password', '123']
    """
    segments: List[Segment] = []
    for match in _RUN_PATTERN.finditer(password):
        text = match.group(0)
        segments.append(Segment(char_class(text[0]), text))
    return segments


def first_run(password: str, start: int = 0) -> str:
    """Text of the maximal same-class run beginning at ``start``.

    Equivalent to ``segment_by_class(password[start:])[0].text`` but
    without slicing the remainder or scanning past the first run —
    the fuzzy parser calls this once per fallback segment.

    >>> first_run("abc123", 3)
    '123'
    """
    match = _RUN_PATTERN.match(password, start)
    if match is None:
        raise ValueError(f"no character run at position {start}")
    return match.group(0)


def base_structure(password: str) -> str:
    """The traditional PCFG base structure string, e.g. ``L1S1L3D1L2``.

    >>> base_structure("p@ssw0rd")
    'L1S1L3D1L2'
    """
    return "".join(seg.label for seg in segment_by_class(password))


# --- Composition classes (Table IX of the paper) -------------------------

#: Ordered composition classes expressed as the paper's regular
#: expressions.  Anchored entries are exclusive classes; unanchored
#: entries are "contains" predicates.
COMPOSITION_PATTERNS = {
    "^[a-z]+$": re.compile(r"^[a-z]+$"),
    "[a-z]": re.compile(r"[a-z]"),
    "^[A-Z]+$": re.compile(r"^[A-Z]+$"),
    "[A-Z]": re.compile(r"[A-Z]"),
    "^[A-Za-z]+$": re.compile(r"^[A-Za-z]+$"),
    "[a-zA-Z]": re.compile(r"[a-zA-Z]"),
    "^[0-9]+$": re.compile(r"^[0-9]+$"),
    "[0-9]": re.compile(r"[0-9]"),
    "symbol only": re.compile(r"^[^a-zA-Z0-9]+$"),
    "^[a-zA-Z0-9]+$": re.compile(r"^[a-zA-Z0-9]+$"),
    "^[0-9]+[a-z]+$": re.compile(r"^[0-9]+[a-z]+$"),
    "^[a-zA-Z]+[0-9]+$": re.compile(r"^[a-zA-Z]+[0-9]+$"),
    "^[0-9]+[a-zA-Z]+$": re.compile(r"^[0-9]+[a-zA-Z]+$"),
    "^[a-z]+1$": re.compile(r"^[a-z]+1$"),
}


def classify_composition(password: str) -> List[str]:
    """Return every Table-IX composition class the password falls into.

    >>> "^[a-z]+$" in classify_composition("password")
    True
    >>> "^[a-zA-Z]+[0-9]+$" in classify_composition("abc123")
    True
    """
    return [
        name
        for name, pattern in COMPOSITION_PATTERNS.items()
        if pattern.search(password)
    ]


def iter_printable(password: str) -> Iterator[str]:
    """Yield characters, raising on anything outside printable ASCII."""
    for ch in password:
        if ch not in PRINTABLE_ASCII:
            raise ValueError(
                f"character {ch!r} is outside the 95 printable ASCII alphabet"
            )
        yield ch


def is_printable_ascii(password: str) -> bool:
    """True when every character is one of the 95 printable ASCII chars."""
    return all(ch in PRINTABLE_ASCII for ch in password)
