"""The unified attack engine: FrozenGrammar-backed guess generation.

Every attacker-facing consumer — exact enumeration, Monte-Carlo guess
numbers, cracking curves, online/offline simulation, mask compilation —
used to re-derive guesses through the slow training-side path:
``FuzzyPSM.iter_guesses`` walked dict-of-FrequencyDistribution tables,
built a :class:`~repro.core.grammar.DerivedSegment` dataclass per
variant per structure, and paid a ``descending_products`` heap (with
its seen-set) per structure plus an outer weighted merge.  That layout
mirrors training; attack workloads enumerate millions of guesses from
a grammar that does not change mid-run.

:class:`AttackEngine` is the compiled counterpart, sitting on the
:class:`~repro.core.frozen.FrozenGrammar` flat tables (PR 5) the same
way batch scoring does:

* **slots** — per segment length, variants ``(surface, factor,
  segment)`` are materialized once into parallel lists, in descending
  factor order, and shared by every structure that references the
  length.  A guess is then a tuple of list indices; its surface is a
  string join and its probability a short product over cached floats.
* **one global heap** — instead of one lattice walk per structure
  merged pairwise, a single frontier over ``(structure, index-vector)``
  nodes yields guesses in globally descending order.  Successors use
  the canonical-parent rule (push ``v + e_j`` only when every
  coordinate after ``j`` is zero), so each node is generated exactly
  once and no seen-set is needed — the data structure that made the
  old path's memory grow with guesses emitted.
* **bit-identical probabilities** — factors are multiplied in exactly
  the order of :meth:`FrozenGrammar.derivation_probability` (terminal,
  capitalization, reverse, all-caps, then leet factors in stored-run
  order; segment factors folded left-to-right into the structure
  probability), so every emitted probability equals the reference
  kernel's value bit for bit (asserted by
  ``tests/test_attacks_engine.py``).

The engine only emits guesses with probability > 0.  The legacy path
appended a tail of zero-probability variants (unreachable under the
modelled attacker); pruning them is what lets the frontier skip whole
sub-lattices.

**Beam mode.**  ``Beam(width, floor)`` bounds the frontier for
10^7-scale materialization: nodes below the probability ``floor`` are
pruned exactly (the lattice is monotone, so every descendant is also
below the floor — enumeration above the floor is unaffected, which the
hypothesis differential asserts), while ``width`` caps frontier memory
by evicting the least probable nodes once the frontier reaches twice
the width (amortized O(log width) per push).  Width eviction is lossy
— an evicted node's descendants are lost too — so the dropped count
and probability mass are reported via ``attack.beam.*`` telemetry and
:class:`EnumerationStats`.

**Sampling.**  :class:`FrozenSampler` replaces the training-side
``FuzzyGrammar.sample_derivation`` linear table scans with cumulative
arrays + ``bisect``, keeping the canonical-parse rejection loop of
``FuzzyPSM.sample`` and scoring accepted draws through the frozen
kernel.  ``AttackEngine.sample`` delegates to it, so the engine plugs
straight into :class:`~repro.metrics.guessnumber.MonteCarloEstimator`.

All consumers receive a :class:`GuessStream` — a named iterator of
``(surface, probability)`` pairs in descending probability order —
which is also what baseline meters' ``iter_guesses`` wrap into, so
simulators and crossover curves are meter-agnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import accumulate
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro import obs
from repro.core.frozen import FrozenGrammar
from repro.core.grammar import Derivation, DerivedSegment, Structure
from repro.core.shm import MaterializedScoringState, _worker_attach_state
from repro.util.leet import LEET_BY_LETTER, LEET_BY_SUBSTITUTE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.meter import FuzzyPSM
    from repro.meters.base import ProbabilisticMeter

#: Pops between telemetry flushes: per-guess probe calls would eat the
#: very speedup the engine exists for (same stance as batch scoring).
_FLUSH_EVERY = 4096


@dataclass(frozen=True)
class Beam:
    """Bounds for a bounded-beam enumeration.

    Attributes:
        width: maximum heap frontier size; ``None`` means unbounded.
            Eviction keeps the most probable nodes and is *lossy*
            (descendants of evicted nodes are unreachable).
        floor: prune nodes with probability strictly below this value.
            Floor pruning is *exact* for the kept region: the product
            lattice is monotone, so everything at or above the floor
            is still enumerated in order.
    """

    width: Optional[int] = None
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.width is not None and self.width < 1:
            raise ValueError("beam width must be >= 1")
        if self.floor < 0.0:
            raise ValueError("beam floor must be >= 0.0")


@dataclass
class EnumerationStats:
    """Counters of one enumeration run (mirrored to ``attack.*``)."""

    pops: int = 0
    pushes: int = 0
    yielded: int = 0
    floor_dropped: int = 0
    width_dropped: int = 0
    #: Probability mass of dropped *nodes* (descendants not included),
    #: i.e. a lower bound on the total mass the beam gave up.
    dropped_mass: float = 0.0


class GuessStream:
    """A named stream of ``(surface, probability)`` pairs, descending.

    The one abstraction every attack consumer accepts: simulators,
    cracking curves, Monte-Carlo cross-checks and mask compilation all
    iterate a ``GuessStream`` without caring whether it came from the
    fuzzyPSM engine, a baseline meter's ``iter_guesses`` or a replayed
    wordlist.  Tracks how many guesses it has yielded so far.
    """

    def __init__(
        self,
        source: Iterable[Tuple[str, float]],
        name: str = "guesses",
        stats: Optional[EnumerationStats] = None,
    ) -> None:
        self._iterator = iter(source)
        self.name = name
        self.yielded = 0
        #: Populated for engine-backed streams; ``None`` otherwise.
        self.stats = stats

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        # A counting generator instead of per-item ``__next__`` dispatch:
        # resuming a generator frame is measurably cheaper than a Python
        # method call, and this wrapper sits on every guess emitted.
        for item in self._iterator:
            self.yielded += 1
            yield item

    def __next__(self) -> Tuple[str, float]:
        item = next(self._iterator)
        self.yielded += 1
        return item

    def head(self, count: int) -> List[Tuple[str, float]]:
        """Materialize the next ``count`` guesses (fewer at the end)."""
        out: List[Tuple[str, float]] = []
        for item in self:
            out.append(item)
            if len(out) >= count:
                break
        return out


class _Slot:
    """Variants of one segment length, materialized on demand.

    Parallel lists in descending factor order; ``ensure(i)`` pulls from
    the merged per-terminal stream until index ``i`` exists.  Slots are
    append-only and shared across structures and enumeration runs.
    """

    __slots__ = ("surfaces", "factors", "segments", "_source")

    def __init__(
        self, source: Iterator[Tuple[str, float, DerivedSegment]]
    ) -> None:
        self.surfaces: List[str] = []
        self.factors: List[float] = []
        self.segments: List[DerivedSegment] = []
        self._source: Optional[Iterator[Tuple[str, float, DerivedSegment]]] = (
            source
        )

    def ensure(self, index: int) -> bool:
        surfaces = self.surfaces
        while len(surfaces) <= index:
            source = self._source
            if source is None:
                return False
            item = next(source, None)
            if item is None:
                self._source = None
                return False
            surfaces.append(item[0])
            self.factors.append(item[1])
            self.segments.append(item[2])
        return True


class _SnapshotMeter:
    """The slice of ``FuzzyPSM`` the attack engine consumes, rebuilt
    over one attached shared-memory segment (DESIGN.md §16).

    A published segment is immutable, so ``grammar`` is the frozen
    snapshot itself — an engine attached this way is always current.
    Parsing goes through a parser rebuilt byte-identically from the
    segment's compiled matchers, and the variant-gating config flags
    come from the publisher's parser flags.
    """

    __slots__ = ("name", "trie", "config", "_parser", "_frozen")

    class _Flags:
        __slots__ = ("allow_reverse", "allow_allcaps")

        def __init__(self, flags: Dict[str, bool]) -> None:
            self.allow_reverse = bool(flags.get("allow_reverse"))
            self.allow_allcaps = bool(flags.get("allow_allcaps"))

    def __init__(self, state: MaterializedScoringState) -> None:
        if state.frozen is None:
            raise ValueError(
                "segment carries no grammar tables "
                "(trie-only training segment?)"
            )
        self.name = "fuzzypsm"
        self.trie = state.forward
        self.config = _SnapshotMeter._Flags(state.flags)
        self._parser = state.build_parser()
        self._frozen = state.frozen

    @property
    def grammar(self) -> FrozenGrammar:
        return self._frozen

    def frozen_grammar(self) -> FrozenGrammar:
        return self._frozen

    def parse(self, password: str) -> object:
        return self._parser.parse_cached(password)


class AttackEngine:
    """Compiled guess generator for one trained :class:`FuzzyPSM`.

    Built from the meter's frozen grammar snapshot; ``is_current``
    reports staleness against the live grammar's epoch the same way
    :class:`FrozenGrammar` does, so holders rebuild lazily after
    updates (``FuzzyPSM.attack_engine`` does this for you).
    :meth:`from_snapshot` instead attaches a published shared-memory
    segment by name — a millisecond zero-copy ``mmap`` rather than a
    retrain/deserialize — so attack tooling can run against exactly
    the model a server or scoring pool is using.
    """

    @classmethod
    def from_snapshot(cls, segment_name: str) -> "AttackEngine":
        """An engine over the named scoring segment's tables.

        The segment must carry grammar tables (serve/scoring segments
        do; the training engine's trie-only segments are rejected).
        Attaches through the per-process cache of
        :mod:`repro.core.shm`, so repeated builds on one segment are
        free and scores are bit-identical to the publisher's.
        """
        return cls(_SnapshotMeter(_worker_attach_state(segment_name)))

    def __init__(self, meter: "FuzzyPSM") -> None:
        self._meter = meter
        self._frozen: FrozenGrammar = meter.frozen_grammar()
        self._trie = meter.trie
        self._config = meter.config
        self._slots: Dict[int, _Slot] = {}
        #: ``(structure, probability, slots)`` in descending probability
        #: order (ties broken by the structure tuple, deterministically).
        self._structures: List[Tuple[Structure, float, Tuple[_Slot, ...]]] = []
        for structure, probability in sorted(
            self._frozen.structure_table().items(),
            key=lambda item: (-item[1], item[0]),
        ):
            slots = tuple(self._slot(length) for length in structure)
            self._structures.append((structure, probability, slots))
        self._sampler: Optional[FrozenSampler] = None

    # --- staleness ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Grammar epoch the engine's tables were compiled at."""
        return self._frozen.epoch

    def is_current(self) -> bool:
        """True while the source meter's grammar is unchanged."""
        return self._frozen.is_current(self._meter.grammar)

    # --- public streams -------------------------------------------------

    def guesses(
        self,
        limit: Optional[int] = None,
        beam: Optional[Beam] = None,
        dedupe: bool = True,
        max_seen: Optional[int] = None,
    ) -> GuessStream:
        """Guesses in decreasing probability order.

        Args:
            limit: stop after this many guesses (``None`` = exhaustive).
            beam: optional :class:`Beam` bounding the frontier.
            dedupe: drop repeated surfaces, keeping the first (most
                probable) occurrence — the meter-facing semantics.
                Disable for raw derivation-level streams.
            max_seen: bound on the dedup seen-set (forwarded to
                :func:`~repro.metrics.enumeration.deduplicate_guesses`).
        """
        if max_seen is not None and max_seen < 1:
            raise ValueError("max_seen must be >= 1")
        stats = EnumerationStats()
        stream = self._finalize(
            self._enumerate(beam, stats, surfaces=True),
            dedupe, max_seen, limit,
        )
        return GuessStream(stream, name=self._meter.name, stats=stats)

    def derivations(
        self, limit: Optional[int] = None, beam: Optional[Beam] = None
    ) -> Iterator[Tuple[str, float, Derivation]]:
        """Like :meth:`guesses` but with each guess's full derivation.

        Not deduplicated: distinct derivations of the same surface each
        appear.  This is the differential-test surface — the yielded
        probability must equal
        ``FrozenGrammar.derivation_probability(derivation)`` exactly.
        """
        count = 0
        for probability, s_pos, node in self._enumerate(
            beam, EnumerationStats()
        ):
            slots = self._structures[s_pos][2]
            surface = "".join(
                slots[i].surfaces[node[i]] for i in range(len(node))
            )
            derivation = Derivation(
                tuple(slots[i].segments[node[i]] for i in range(len(node)))
            )
            yield surface, probability, derivation
            count += 1
            if limit is not None and count >= limit:
                return

    def sample(
        self, rng: random.Random, max_attempts: int = 1000
    ) -> Tuple[str, float]:
        """Draw ``(password, probability)`` from the model distribution.

        Duck-type compatible with ``ProbabilisticMeter.sample`` /
        ``MonteCarloEstimator``; see :class:`FrozenSampler`.
        """
        return self.sampler().sample(rng, max_attempts=max_attempts)

    def sampler(self) -> "FrozenSampler":
        """The engine's cumulative-table sampler (built lazily)."""
        if self._sampler is None:
            self._sampler = FrozenSampler(self._meter, self._frozen)
        return self._sampler

    # --- enumeration core -----------------------------------------------

    @staticmethod
    def _finalize(
        stream: Iterator[Tuple[str, float]],
        dedupe: bool,
        max_seen: Optional[int],
        limit: Optional[int],
    ) -> Iterator[Tuple[str, float]]:
        """Surface-level post-processing in a single generator frame.

        Dedup (first occurrence wins, seen-set boundable — the exact
        semantics and ``enum.dedup.seen_capped`` telemetry of
        :func:`~repro.metrics.enumeration.deduplicate_guesses`) and the
        guess limit are folded into one wrapper, so the hot path pays
        one frame here instead of one per concern.
        """
        remaining = limit
        if not dedupe:
            if remaining is None:
                yield from stream
                return
            for item in stream:
                yield item
                remaining -= 1
                if remaining <= 0:
                    return
            return
        seen: set = set()
        add = seen.add
        capped = False
        for item in stream:
            surface = item[0]
            if surface in seen:
                continue
            if max_seen is None or len(seen) < max_seen:
                add(surface)
            elif not capped:
                capped = True
                obs.get().incr("enum.dedup.seen_capped")
            yield item
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return

    def _enumerate(
        self,
        beam: Optional[Beam],
        stats: EnumerationStats,
        surfaces: bool = False,
    ) -> Iterator[Tuple]:
        """Global best-first walk over every structure's product lattice.

        Yields ``(probability, structure_position, index_vector)``, or
        ``(surface, probability)`` pairs when ``surfaces`` is set (the
        guess hot path — joining the surface here saves a generator
        frame per guess), in descending probability order (ties:
        structure order, then index vector).  Canonical-parent
        successor generation: the node ``v + e_j`` is pushed only by
        the parent whose coordinates after ``j`` are all zero, so each
        lattice point enters the heap exactly once without a seen-set.

        This is a blessed FPM002 product kernel: factors multiply in
        the exact order of ``FrozenGrammar.derivation_probability`` and
        zero products are pruned (short-circuited) at push time.
        Successor products reuse the parent's left-to-right prefix
        products — ``prefixes[j]`` is exactly the kernel's first ``j``
        multiplications, so continuing from it preserves the float
        association bit for bit while cutting the per-child work from
        ``O(k)`` to ``O(k - j)``.

        Run counters are kept in locals (the loop is the engine's
        innermost) and synced into ``stats`` at every telemetry flush
        and on close.
        """
        floor = beam.floor if beam is not None else 0.0
        width = beam.width if beam is not None else None
        telemetry = obs.get()
        structures = self._structures
        pop = heappop
        push = heappush
        pops = pushes = yielded = 0
        floor_dropped = width_dropped = 0
        dropped_mass = 0.0
        heap: List[Tuple[float, int, Tuple[int, ...]]] = []
        for s_pos, (_structure, s_probability, slots) in enumerate(
            structures
        ):
            if any(not slot.ensure(0) for slot in slots):
                continue
            probability = s_probability
            for slot in slots:
                probability *= slot.factors[0]
            if probability == 0.0 or probability < floor:
                floor_dropped += 1
                dropped_mass += probability
                continue
            push(heap, (-probability, s_pos, (0,) * len(slots)))
            pushes += 1
        flushed = EnumerationStats()
        next_flush = _FLUSH_EVERY
        try:
            while heap:
                neg_probability, s_pos, node = pop(heap)
                pops += 1
                yielded += 1
                entry = structures[s_pos]
                slots = entry[2]
                if surfaces:
                    yield "".join(
                        [slot.surfaces[i] for slot, i in zip(slots, node)]
                    ), -neg_probability
                else:
                    yield -neg_probability, s_pos, node
                s_probability = entry[1]
                k = len(node)
                r = 0
                for i in range(k - 1, -1, -1):
                    if node[i]:
                        r = i
                        break
                # prefixes[i]: structure probability folded with the
                # first i factors, in kernel order.
                prefix = s_probability
                prefixes = [prefix]
                for i in range(k):
                    prefix *= slots[i].factors[node[i]]
                    prefixes.append(prefix)
                for j in range(r, k):
                    next_index = node[j] + 1
                    slot_j = slots[j]
                    factors_j = slot_j.factors
                    if next_index >= len(factors_j) and not (
                        slot_j.ensure(next_index)
                    ):
                        continue
                    probability = prefixes[j] * factors_j[next_index]
                    for i in range(j + 1, k):
                        probability *= slots[i].factors[node[i]]
                    if probability == 0.0 or probability < floor:
                        floor_dropped += 1
                        dropped_mass += probability
                        continue
                    child = node[:j] + (next_index,) + node[j + 1:]
                    push(heap, (-probability, s_pos, child))
                    pushes += 1
                if width is not None and len(heap) > 2 * width:
                    heap.sort()
                    evicted = heap[width:]
                    del heap[width:]
                    width_dropped += len(evicted)
                    for evicted_entry in evicted:
                        dropped_mass += -evicted_entry[0]
                if yielded >= next_flush:
                    next_flush = yielded + _FLUSH_EVERY
                    stats.pops = pops
                    stats.pushes = pushes
                    stats.yielded = yielded
                    stats.floor_dropped = floor_dropped
                    stats.width_dropped = width_dropped
                    stats.dropped_mass = dropped_mass
                    self._flush(telemetry, stats, flushed)
        finally:
            stats.pops = pops
            stats.pushes = pushes
            stats.yielded = yielded
            stats.floor_dropped = floor_dropped
            stats.width_dropped = width_dropped
            stats.dropped_mass = dropped_mass
            self._flush(telemetry, stats, flushed)

    @staticmethod
    def _flush(
        telemetry: "obs.Telemetry",
        stats: EnumerationStats,
        flushed: EnumerationStats,
    ) -> None:
        """Mirror run counter deltas into ``attack.*``, batched.

        Per-guess probe calls would dominate the hot loop, so counters
        accumulate locally in ``stats`` and only the delta since the
        last flush is emitted (every ``_FLUSH_EVERY`` yields and once
        at stream close).  Dropped probability mass — a float — is
        reported in integer parts-per-billion.
        """
        if telemetry.enabled:
            dropped_ppb = int(stats.dropped_mass * 10**9)
            flushed_ppb = int(flushed.dropped_mass * 10**9)
            telemetry.incr_many([
                ("attack.enum.yields", stats.yielded - flushed.yielded),
                ("attack.enum.pushes", stats.pushes - flushed.pushes),
                ("attack.beam.floor_dropped",
                 stats.floor_dropped - flushed.floor_dropped),
                ("attack.beam.width_dropped",
                 stats.width_dropped - flushed.width_dropped),
                ("attack.beam.dropped_mass_ppb",
                 dropped_ppb - flushed_ppb),
            ])
        flushed.yielded = stats.yielded
        flushed.pushes = stats.pushes
        flushed.floor_dropped = stats.floor_dropped
        flushed.width_dropped = stats.width_dropped
        flushed.dropped_mass = stats.dropped_mass

    # --- slot construction ----------------------------------------------

    def _slot(self, length: int) -> _Slot:
        slot = self._slots.get(length)
        if slot is None:
            slot = _Slot(self._slot_stream(length))
            self._slots[length] = slot
        return slot

    def _slot_stream(
        self, length: int
    ) -> Iterator[Tuple[str, float, DerivedSegment]]:
        """Descending variant stream for one ``B_n`` slot.

        Merges the per-terminal lattices of every interned terminal of
        this length.  Terminals enter the merge lazily, in descending
        terminal-probability order: a terminal's first variant factor
        is at most its terminal probability, so the merge only *opens*
        (builds the lattice generator of) a terminal once the frontier
        drops to its probability — enumerating the top of a heavy slot
        never touches the long tail of rare terminals.

        Ties (equal probability, then equal variant factor) break on
        the base string, never on table position: interned-table order
        is an artifact of training/deserialization order, and a
        persisted meter must replay the identical guess stream.
        """
        entry = self._frozen.terminal_table(length)
        if entry is None:
            return
        index, probabilities, runs = entry
        bases = list(index)
        order = sorted(
            range(len(bases)), key=lambda i: (-probabilities[i], bases[i])
        )
        heap: List[
            Tuple[float, str, Tuple[str, float, DerivedSegment],
                  Iterator[Tuple[str, float, DerivedSegment]]]
        ] = []
        cursor = 0
        while True:
            # Open every not-yet-started terminal that could outrank
            # the best realized variant.
            while cursor < len(order) and (
                not heap or probabilities[order[cursor]] >= -heap[0][0]
            ):
                position = order[cursor]
                cursor += 1
                stream = self._terminal_stream(
                    bases[position],
                    probabilities[position],
                    runs[position],
                )
                first = next(stream, None)
                if first is not None:
                    heappush(
                        heap, (-first[1], bases[position], first, stream)
                    )
            if not heap:
                return
            _neg, base, item, stream = heappop(heap)
            yield item
            following = next(stream, None)
            if following is not None:
                heappush(
                    heap, (-following[1], base, following, stream)
                )

    def _terminal_stream(
        self,
        base: str,
        t_probability: float,
        run: Tuple[Tuple[int, int], ...],
    ) -> Iterator[Tuple[str, float, DerivedSegment]]:
        """Descending ``(surface, factor, segment)`` for one terminal.

        The variant lattice of one stored base: one dimension for the
        case/reverse choice, one boolean dimension per leet-able
        offset.  Walked best-first with canonical-parent successors.

        Blessed FPM002 kernel: each variant's factor repeats the exact
        multiplication order of ``FrozenGrammar.derivation_probability``
        for one segment — terminal probability, capitalization,
        reverse, all-caps, then the leet pair factors in stored-run
        order — and exact zeros prune the sub-lattice.
        """
        options = self._case_options(base, t_probability)
        if not options:
            return
        if not run:
            for factor, capitalized, reversed_word, all_caps, surface in (
                options
            ):
                yield surface, factor, DerivedSegment(
                    base, capitalized, (), reversed_word, all_caps
                )
            return
        leet_pairs = self._frozen.leet_pairs
        dims: List[Tuple[Tuple[bool, float], ...]] = []
        partners: List[str] = []
        for offset, rule in run:
            pair = leet_pairs[rule]
            choices = tuple(
                sorted(
                    (
                        choice
                        for choice in ((False, pair[0]), (True, pair[1]))
                        if choice[1] > 0.0
                    ),
                    key=lambda choice: (-choice[1], choice[0]),
                )
            )
            if not choices:
                # Untrained leet rule: every variant of this terminal
                # has a zero factor in the kernel — prune the terminal.
                return
            dims.append(choices)
            ch = base[offset]
            partners.append(
                LEET_BY_LETTER.get(ch) or LEET_BY_SUBSTITUTE[ch]
            )
        sizes = (len(options),) + tuple(len(d) for d in dims)
        k = len(sizes)
        zero = (0,) * k

        def emit(
            node: Tuple[int, ...], factor: float
        ) -> Tuple[str, float, DerivedSegment]:
            head = options[node[0]]
            fired = [
                d for d in range(k - 1) if dims[d][node[d + 1]][0]
            ]
            capitalized, reversed_word, all_caps = head[1], head[2], head[3]
            if not fired:
                surface = head[4]
                toggles: Tuple[int, ...] = ()
            else:
                chars = list(base)
                offsets = []
                for d in fired:
                    offset = run[d][0]
                    chars[offset] = partners[d]
                    offsets.append(offset)
                toggles = tuple(offsets)
                if all_caps:
                    chars = [c.upper() for c in chars]
                elif capitalized:
                    chars[0] = chars[0].upper()
                text = "".join(chars)
                surface = text[::-1] if reversed_word else text
            return surface, factor, DerivedSegment(
                base, capitalized, toggles, reversed_word, all_caps
            )

        factor = options[0][0]
        for d in range(k - 1):
            factor *= dims[d][0][1]
        if factor == 0.0:
            return
        heap: List[Tuple[float, Tuple[int, ...]]] = [(-factor, zero)]
        while heap:
            neg, node = heappop(heap)
            yield emit(node, -neg)
            r = 0
            for i in range(k - 1, -1, -1):
                if node[i]:
                    r = i
                    break
            for j in range(r, k):
                next_index = node[j] + 1
                if next_index >= sizes[j]:
                    continue
                factor = options[node[0] if j else next_index][0]
                for d in range(k - 1):
                    factor *= dims[d][
                        next_index if d + 1 == j else node[d + 1]
                    ][1]
                if factor == 0.0:
                    continue
                child = node[:j] + (next_index,) + node[j + 1:]
                heappush(heap, (-factor, child))

    def _case_options(
        self, base: str, t_probability: float
    ) -> List[Tuple[float, bool, bool, bool, str]]:
        """Case/reverse head options for one base, descending.

        Mirrors the enumeration gates of the legacy
        ``FuzzyPSM._case_reverse_factor`` — only variants the canonical
        parse can report are emitted, so enumerated and measured
        probabilities agree — but reads the frozen pairs and computes
        the head factor in kernel order (terminal, capitalization,
        reverse, all-caps).  Zero-probability options are pruned, which
        is the blessed-kernel short-circuit.  Each option carries its
        precomputed toggle-free surface.
        """
        frozen = self._frozen
        cap_pair = frozen.capitalization_pair
        rev_pair = frozen.reverse_pair
        ac_pair = frozen.allcaps_pair
        options: List[Tuple[float, bool, bool, bool, str]] = []

        def add(cap: bool, rev: bool, ac: bool) -> None:
            factor = t_probability
            factor *= cap_pair[cap]
            factor *= rev_pair[rev]
            factor *= ac_pair[ac]
            if factor == 0.0:
                return
            if ac:
                surface = "".join(ch.upper() for ch in base)
            elif cap:
                surface = base[0].upper() + base[1:]
            else:
                surface = base
            if rev:
                surface = surface[::-1]
            options.append((factor, cap, rev, ac, surface))

        add(False, False, False)
        if base[:1].islower():
            add(True, False, False)
        if (
            self._config.allow_reverse
            and rev_pair[1] > 0.0
            and base != base[::-1]
            and base in self._trie
        ):
            add(False, True, False)
        if (
            self._config.allow_allcaps
            and ac_pair[1] > 0.0
            and base in self._trie
            and base[1:] != base[1:].upper()
        ):
            add(False, False, True)
        options.sort(
            key=lambda option: (-option[0], option[1:4])
        )
        return options


class FrozenSampler:
    """Cumulative-table sampler over a frozen grammar snapshot.

    ``FuzzyGrammar.sample_derivation`` draws structures and terminals
    with a linear scan over count tables — O(table size) per draw,
    which dominates Monte-Carlo estimation on trained grammars.  This
    sampler compiles cumulative probability arrays once and draws with
    ``bisect`` in O(log table size), keeping the same semantics as
    ``FuzzyPSM.sample``: non-canonical draws (sampled derivation !=
    the surface's canonical parse) are rejected and redrawn, and the
    returned probability comes from the frozen kernel, so the pair is
    always consistent with ``meter.probability``.
    """

    def __init__(
        self, meter: "FuzzyPSM", frozen: Optional[FrozenGrammar] = None
    ) -> None:
        self._meter = meter
        self._frozen = frozen if frozen is not None else (
            meter.frozen_grammar()
        )
        items = sorted(
            self._frozen.structure_table().items(),
            key=lambda item: (-item[1], item[0]),
        )
        self._structure_values: List[Structure] = [
            structure for structure, _ in items
        ]
        self._structure_cumulative: List[float] = list(
            accumulate(probability for _, probability in items)
        )
        self._terminal_cumulative: Dict[
            int, Tuple[List[str], List[float]]
        ] = {}

    def _terminal_tables(
        self, length: int
    ) -> Optional[Tuple[List[str], List[float]]]:
        tables = self._terminal_cumulative.get(length)
        if tables is None:
            entry = self._frozen.terminal_table(length)
            if entry is None:
                return None
            index, probabilities, _runs = entry
            tables = (list(index), list(accumulate(probabilities)))
            self._terminal_cumulative[length] = tables
        return tables

    def sample(
        self, rng: random.Random, max_attempts: int = 1000
    ) -> Tuple[str, float]:
        """Draw ``(password, probability)``; canonical-parse rejection.

        After ``max_attempts`` non-canonical draws the last surface is
        returned with its canonical (measured) probability, exactly
        like ``FuzzyPSM.sample`` — the pair stays self-consistent.
        """
        from bisect import bisect_right

        cumulative = self._structure_cumulative
        if not cumulative or cumulative[-1] == 0.0:
            raise ValueError("cannot sample from an untrained grammar")
        telemetry = obs.get()
        meter = self._meter
        frozen = self._frozen
        surface = ""
        for attempt in range(max_attempts):
            derivation = self._draw(rng, bisect_right)
            if derivation is None:
                break
            surface = derivation.surface()
            if meter.parse(surface).to_derivation() == derivation:
                if telemetry.enabled:
                    telemetry.incr("attack.sample.draws", attempt + 1)
                return surface, frozen.derivation_probability(derivation)
        if telemetry.enabled:
            telemetry.incr("attack.sample.fallbacks")
        parsed = meter.parse(surface).to_derivation()
        return surface, frozen.derivation_probability(parsed)

    def _draw(self, rng: random.Random, bisect_right) -> Optional[Derivation]:
        cumulative = self._structure_cumulative
        if not cumulative or cumulative[-1] == 0.0:
            return None
        target = rng.random() * cumulative[-1]
        s_index = min(
            bisect_right(cumulative, target), len(cumulative) - 1
        )
        structure = self._structure_values[s_index]
        cap_pair = self._frozen.capitalization_pair
        rev_pair = self._frozen.reverse_pair
        ac_pair = self._frozen.allcaps_pair
        leet_pairs = self._frozen.leet_pairs
        segments: List[DerivedSegment] = []
        for length in structure:
            tables = self._terminal_tables(length)
            if tables is None:
                return None
            bases, terminal_cumulative = tables
            target = rng.random() * terminal_cumulative[-1]
            t_index = min(
                bisect_right(terminal_cumulative, target),
                len(bases) - 1,
            )
            base = bases[t_index]
            capitalized = (
                base[:1].islower() and rng.random() < cap_pair[1]
            )
            reversed_word = rng.random() < rev_pair[1]
            all_caps = (
                not capitalized and rng.random() < ac_pair[1]
            )
            entry = self._frozen.terminal_table(length)
            assert entry is not None
            toggles = tuple(
                offset
                for offset, rule in entry[2][t_index]
                if rng.random() < leet_pairs[rule][1]
            )
            segments.append(
                DerivedSegment(
                    base, capitalized, toggles, reversed_word, all_caps
                )
            )
        return Derivation(tuple(segments))


def guess_stream_for(
    meter: "ProbabilisticMeter",
    limit: Optional[int] = None,
    beam: Optional[Beam] = None,
) -> GuessStream:
    """A :class:`GuessStream` for any probabilistic meter.

    FuzzyPSM meters get the compiled engine (beam supported); other
    meters wrap their ``iter_guesses`` so simulators and crossover
    curves stay meter-agnostic.
    """
    attack_engine = getattr(meter, "attack_engine", None)
    if attack_engine is not None:
        return attack_engine().guesses(limit=limit, beam=beam)
    iter_guesses = getattr(meter, "iter_guesses", None)
    if iter_guesses is None:
        raise TypeError(
            f"{type(meter).__name__} cannot drive an attack: it has no "
            "guess enumeration (iter_guesses)"
        )
    return GuessStream(iter_guesses(limit=limit), name=meter.name)
