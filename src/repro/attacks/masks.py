"""Mask and rule compilation: the grammar as an offline attack artifact.

The paper's Table I puts the offline threat model at > 10^9 guesses —
far beyond what any per-guess enumeration can materialize.  Real
offline attacks do not enumerate from a grammar at that scale; they
run compiled artifacts: **hashcat-style masks** (per-position character
classes, e.g. ``?l?l?l?l?d?d``) and **substitution rules** (``c``,
``sa@``, ...), the approach of PACK's policygen/rulegen.  A trained
fuzzy PCFG can emit both, ranked by its own probability model.

Masks are compiled from the top of the engine's guess stream: each
guess maps to its mask, and a mask accumulates the model probability
mass of the guesses it covers.  Ranking policies:

* ``efficiency`` — mass per candidate (``probability / keyspace``),
  PACK's default: best expected yield per hash computed;
* ``mass`` — raw model probability mass, greedy coverage;
* ``keyspace`` — cheapest masks first, classic increment mode.

Because a mask's keyspace is analytic (product of class sizes), a
ranked mask set extends a cracking curve to any budget *without
materializing guesses*: ``guesses_to_mask_index`` locates the mask
under execution at guess ``g`` by bisecting cumulative keyspace, and
``coverage`` credits each victim password the executed fraction of its
mask (guess order inside a mask is unmodelled, so the fraction is the
expected value under a uniform position).  That extrapolation is what
lets ``repro attack crossover`` compare meters at 10^10 guesses.

Substitution rules come straight from the grammar's transformation
tables: the capitalization, reverse, all-caps and per-leet-pair Yes
probabilities rank hashcat rule lines.

:func:`crossover_report` assembles the full paper-style comparison:
materialized online curves (10^4) and mask-extrapolated offline curves
(10^10) for several meters on one victim corpus, plus the budgets at
which the meters' ordering flips.
"""

from __future__ import annotations

import os
import string
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.core.frozen import FrozenGrammar
from repro.datasets.corpus import PasswordCorpus
from repro.metrics.cracking import CrackPoint, cracking_curve
from repro.metrics.curves import crossover_point
from repro.util.leet import LEET_PAIRS

#: Hashcat character classes and their sizes over the 95 printable
#: ASCII characters (paper Sec. II-B): ``?s`` is everything that is
#: not a letter or digit, 95 - 26 - 26 - 10 = 33.
CHARSET_SIZES: Dict[str, int] = {"?l": 26, "?u": 26, "?d": 10, "?s": 33}

MASK_POLICIES: Tuple[str, ...] = ("efficiency", "mass", "keyspace")

_LOWER = frozenset(string.ascii_lowercase)
_UPPER = frozenset(string.ascii_uppercase)
_DIGIT = frozenset(string.digits)


def mask_of(password: str) -> str:
    """The hashcat mask covering ``password``.

    >>> mask_of("Pass12!")
    '?u?l?l?l?d?d?s'
    """
    tokens = []
    for ch in password:
        if ch in _LOWER:
            tokens.append("?l")
        elif ch in _UPPER:
            tokens.append("?u")
        elif ch in _DIGIT:
            tokens.append("?d")
        else:
            tokens.append("?s")
    return "".join(tokens)


def mask_keyspace(mask: str) -> int:
    """Number of candidate strings the mask expands to.

    >>> mask_keyspace("?l?d")
    260
    """
    if len(mask) % 2:
        raise ValueError(f"malformed mask {mask!r}")
    keyspace = 1
    for position in range(0, len(mask), 2):
        token = mask[position:position + 2]
        size = CHARSET_SIZES.get(token)
        if size is None:
            raise ValueError(f"unknown mask token {token!r} in {mask!r}")
        keyspace *= size
    return keyspace


@dataclass(frozen=True)
class MaskEntry:
    """One ranked mask.

    Attributes:
        mask: the hashcat mask string.
        keyspace: analytic candidate count of the mask.
        probability: model probability mass of the source guesses that
            fall under this mask (a lower bound on the mask's true
            mass — only materialized guesses contribute).
        observed: number of source guesses that mapped to this mask.
    """

    mask: str
    keyspace: int
    probability: float
    observed: int

    @property
    def efficiency(self) -> float:
        """Expected mass recovered per candidate hashed."""
        return self.probability / self.keyspace


@dataclass(frozen=True)
class RuleEntry:
    """One hashcat rule line derived from a grammar transformation."""

    rule: str
    description: str
    probability: float


class MaskSet:
    """An ordered, analytically-extrapolatable compiled mask attack.

    Entries are in execution order (already ranked by the compilation
    policy); cumulative keyspace is precomputed so budget-to-position
    queries are O(log n).
    """

    def __init__(
        self,
        entries: Sequence[MaskEntry],
        policy: str,
        source_guesses: int,
        rules: Sequence[RuleEntry] = (),
        source: str = "",
    ) -> None:
        if policy not in MASK_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {MASK_POLICIES}"
            )
        self.entries: Tuple[MaskEntry, ...] = tuple(entries)
        self.policy = policy
        self.source_guesses = source_guesses
        self.rules: Tuple[RuleEntry, ...] = tuple(rules)
        self.source = source
        self._cumulative: List[int] = list(
            accumulate(entry.keyspace for entry in self.entries)
        )
        self._rank: Dict[str, int] = {
            entry.mask: position
            for position, entry in enumerate(self.entries)
        }

    @property
    def total_keyspace(self) -> int:
        """Candidates tried when every mask runs to completion."""
        return self._cumulative[-1] if self._cumulative else 0

    def guesses_to_mask_index(self, guesses: float) -> int:
        """Index of the mask under execution after ``guesses`` guesses.

        Analytic — no guess is materialized.  Returns ``len(entries)``
        once the budget exceeds the total keyspace.

        >>> masks = MaskSet(
        ...     [MaskEntry("?d", 10, 0.5, 5),
        ...      MaskEntry("?l?l", 676, 0.3, 3)],
        ...     policy="mass", source_guesses=8,
        ... )
        >>> masks.guesses_to_mask_index(3)
        0
        >>> masks.guesses_to_mask_index(10)
        1
        >>> masks.guesses_to_mask_index(10**6)
        2
        """
        if guesses < 0:
            raise ValueError("guess budget must be >= 0")
        return bisect_right(self._cumulative, guesses)

    def executed_fraction(self, mask: str, guesses: float) -> float:
        """Fraction of ``mask``'s keyspace tried within the budget.

        0.0 for masks not in the set (the modelled attacker never
        reaches them) and for masks not yet started.
        """
        position = self._rank.get(mask)
        if position is None:
            return 0.0
        before = self._cumulative[position - 1] if position else 0
        entry = self.entries[position]
        done = (guesses - before) / entry.keyspace
        return min(1.0, max(0.0, done))

    def coverage(self, victims: PasswordCorpus, guesses: float) -> float:
        """Expected fraction of ``victims`` cracked within ``guesses``.

        Each victim password is credited the executed fraction of its
        mask — the expected outcome when position inside a mask's
        keyspace is uniform.  Weighted by multiplicity, like
        :func:`~repro.metrics.cracking.cracking_curve`.
        """
        total = victims.total
        if total == 0:
            raise ValueError("empty victim corpus")
        by_mask: Dict[str, int] = {}
        for password, count in victims.items():
            mask = mask_of(password)
            by_mask[mask] = by_mask.get(mask, 0) + count
        cracked = 0.0
        for mask, count in by_mask.items():
            fraction = self.executed_fraction(mask, guesses)
            if fraction:
                cracked += count * fraction
        return cracked / total

    def coverage_curve(
        self, victims: PasswordCorpus, checkpoints: Sequence[int]
    ) -> List[CrackPoint]:
        """Mask-extrapolated cracking curve over ``checkpoints``."""
        return [
            CrackPoint(checkpoint, self.coverage(victims, checkpoint))
            for checkpoint in sorted(checkpoints)
        ]

    # --- persistence payload -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (wrapped in an envelope by persistence)."""
        return {
            "policy": self.policy,
            "source": self.source,
            "source_guesses": self.source_guesses,
            "entries": [
                [entry.mask, entry.keyspace, entry.probability,
                 entry.observed]
                for entry in self.entries
            ],
            "rules": [
                [rule.rule, rule.description, rule.probability]
                for rule in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MaskSet":
        return cls(
            entries=[
                MaskEntry(mask, keyspace, probability, observed)
                for mask, keyspace, probability, observed
                in data["entries"]
            ],
            policy=data["policy"],
            source_guesses=data["source_guesses"],
            rules=[
                RuleEntry(rule, description, probability)
                for rule, description, probability in data["rules"]
            ],
            source=data.get("source", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaskSet(policy={self.policy!r}, masks={len(self.entries)}, "
            f"keyspace={self.total_keyspace})"
        )


def compile_mask_set(
    guesses: Iterable[Tuple[str, float]],
    policy: str = "efficiency",
    max_masks: Optional[int] = None,
    rules: Sequence[RuleEntry] = (),
    source: str = "",
) -> MaskSet:
    """Aggregate a guess stream into a ranked :class:`MaskSet`.

    Model-agnostic: any descending ``(surface, probability)`` stream
    works (the fuzzyPSM engine, a baseline meter's ``iter_guesses``, a
    replayed wordlist with weights).  The stream is consumed fully, so
    bound it (e.g. ``engine.guesses(limit=10**5)``) before compiling.
    """
    if policy not in MASK_POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {MASK_POLICIES}"
        )
    mass: Dict[str, float] = {}
    observed: Dict[str, int] = {}
    source_guesses = 0
    for surface, probability in guesses:
        if not surface:
            continue
        source_guesses += 1
        mask = mask_of(surface)
        mass[mask] = mass.get(mask, 0.0) + probability
        observed[mask] = observed.get(mask, 0) + 1
    entries = [
        MaskEntry(mask, mask_keyspace(mask), mass[mask], observed[mask])
        for mask in mass
    ]
    if policy == "efficiency":
        entries.sort(key=lambda e: (-e.efficiency, e.mask))
    elif policy == "mass":
        entries.sort(key=lambda e: (-e.probability, e.mask))
    else:  # keyspace
        entries.sort(key=lambda e: (e.keyspace, -e.probability, e.mask))
    truncated = 0
    if max_masks is not None and len(entries) > max_masks:
        truncated = len(entries) - max_masks
        entries = entries[:max_masks]
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr_many([
            ("attack.masks.compiled", len(entries)),
            ("attack.masks.source_guesses", source_guesses),
            ("attack.masks.truncated", truncated),
        ])
    return MaskSet(
        entries, policy=policy, source_guesses=source_guesses,
        rules=rules, source=source,
    )


def compile_rules(frozen: FrozenGrammar) -> Tuple[RuleEntry, ...]:
    """Hashcat rule lines from a grammar's transformation tables.

    One line per transformation the grammar has actually observed
    (zero-probability rules are dropped), ranked by model probability,
    plus the ``:`` pass-through whose probability is that of applying
    no case/reverse transformation at all.
    """
    cap_no, cap_yes = frozen.capitalization_pair
    rev_no, rev_yes = frozen.reverse_pair
    ac_no, ac_yes = frozen.allcaps_pair
    entries: List[RuleEntry] = [
        RuleEntry(":", "keep the word as-is", cap_no * rev_no * ac_no)
    ]
    if cap_yes > 0.0:
        entries.append(
            RuleEntry("c", "capitalize the first letter", cap_yes)
        )
    if rev_yes > 0.0:
        entries.append(RuleEntry("r", "reverse the word", rev_yes))
    if ac_yes > 0.0:
        entries.append(RuleEntry("u", "uppercase every letter", ac_yes))
    for position, (name, letter, substitute) in enumerate(LEET_PAIRS):
        pair = frozen.leet_pairs[position]
        if pair[1] > 0.0:
            entries.append(
                RuleEntry(
                    f"s{letter}{substitute}",
                    f"substitute {letter} -> {substitute} ({name})",
                    pair[1],
                )
            )
    entries.sort(key=lambda rule: (-rule.probability, rule.rule))
    return tuple(entries)


# --- hashcat file export ---------------------------------------------


def export_hashcat(
    mask_set: MaskSet, directory: str, stem: Optional[str] = None
) -> Dict[str, str]:
    """Write ``mask_set`` as hashcat-consumable files into ``directory``.

    Produces ``<stem>.hcmask`` (one mask per line, execution order)
    and — when the set carries rules — ``<stem>.rule`` (one hashcat
    rule line per entry, ranked).  Metadata rides in ``#`` comment
    lines, which both hashcat loaders ignore, so the files feed
    ``hashcat -a 3 hashes <stem>.hcmask`` / ``-r <stem>.rule``
    unmodified.  Returns ``{"hcmask": path, "rule": path?}``;
    :func:`read_hcmask` / :func:`read_rules` parse the files back for
    round-trip verification against the JSON envelope
    (:func:`repro.persistence.load_mask_set`).
    """
    os.makedirs(directory, exist_ok=True)
    chosen = stem if stem else (mask_set.source or "masks")
    written: Dict[str, str] = {}
    mask_path = os.path.join(directory, f"{chosen}.hcmask")
    with open(mask_path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# compiled by repro attack masks: policy="
            f"{mask_set.policy} source={mask_set.source or '-'} "
            f"source_guesses={mask_set.source_guesses}\n"
        )
        for entry in mask_set.entries:
            handle.write(
                f"# keyspace={entry.keyspace} "
                f"mass={entry.probability:.6e} "
                f"observed={entry.observed}\n"
            )
            handle.write(entry.mask + "\n")
    written["hcmask"] = mask_path
    if mask_set.rules:
        rule_path = os.path.join(directory, f"{chosen}.rule")
        with open(rule_path, "w", encoding="utf-8") as handle:
            handle.write(
                "# grammar transformation probabilities as hashcat "
                "rules, ranked\n"
            )
            for rule in mask_set.rules:
                handle.write(
                    f"# p={rule.probability:.6e} {rule.description}\n"
                )
                handle.write(rule.rule + "\n")
        written["rule"] = rule_path
    return written


def read_hcmask(path: str) -> List[str]:
    """Masks from a ``.hcmask`` file, in execution order.

    The subset of hashcat's format this package emits: ``#`` comments
    and blank lines are skipped, every other line is one mask, which
    is validated via :func:`mask_keyspace` so a corrupted file fails
    here rather than inside hashcat.
    """
    masks: List[str] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            mask_keyspace(text)  # raises ValueError on malformed masks
            masks.append(text)
    return masks


def read_rules(path: str) -> List[str]:
    """Rule lines from a ``.rule`` file (comments/blanks skipped)."""
    rules: List[str] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            rules.append(text)
    return rules


# --- crossover analysis ----------------------------------------------


def decade_checkpoints(budget: int, start: int = 1) -> List[int]:
    """Powers of ten from ``start`` through ``budget`` (inclusive).

    >>> decade_checkpoints(10**4)
    [1, 10, 100, 1000, 10000]
    >>> decade_checkpoints(5000, start=10)
    [10, 100, 1000, 5000]
    """
    if budget < start or start < 1:
        raise ValueError("need 1 <= start <= budget")
    checkpoints = []
    value = start
    while value < budget:
        checkpoints.append(value)
        value *= 10
    checkpoints.append(budget)
    return checkpoints


@dataclass(frozen=True)
class MeterCurves:
    """One meter's online and offline curves plus its compiled masks."""

    name: str
    online: Tuple[CrackPoint, ...]
    offline: Tuple[CrackPoint, ...]
    mask_set: MaskSet

    def online_fraction(self) -> float:
        return self.online[-1].cracked_fraction

    def offline_fraction(self) -> float:
        return self.offline[-1].cracked_fraction


@dataclass(frozen=True)
class CrossoverReport:
    """Online/offline comparison of several meters on one victim set.

    ``online_crossover`` / ``offline_crossover`` are the first grid
    budgets at which the first two meters' curves flip order (``None``
    when one dominates throughout); each is ``(guesses, fraction_a,
    fraction_b)``.
    """

    curves: Tuple[MeterCurves, ...]
    online_budget: int
    offline_budget: int
    online_crossover: Optional[Tuple[float, float, float]]
    offline_crossover: Optional[Tuple[float, float, float]]


def _as_pairs(points: Sequence[CrackPoint]) -> List[Tuple[float, float]]:
    return [(point.guesses, point.cracked_fraction) for point in points]


def crossover_report(
    streams: Sequence[Tuple[str, Iterable[Tuple[str, float]]]],
    victims: PasswordCorpus,
    online_budget: int = 10**4,
    offline_budget: int = 10**10,
    policy: str = "efficiency",
    enumerate_limit: Optional[int] = None,
) -> CrossoverReport:
    """Online (materialized) vs offline (mask-extrapolated) comparison.

    Args:
        streams: ``(name, guess stream)`` per meter, descending order;
            the first two meters define the crossover points.
        victims: the attacked corpus.
        online_budget: materialized horizon (paper Table I: < 10^4).
        offline_budget: extrapolated horizon (> 10^9).
        policy: mask ranking policy for the offline extrapolation.
        enumerate_limit: guesses materialized per stream, feeding both
            the online curve and mask compilation (default: the online
            budget).
    """
    if len(streams) < 2:
        raise ValueError("crossover needs at least two meters")
    if offline_budget <= online_budget:
        raise ValueError("offline budget must exceed the online budget")
    limit = enumerate_limit if enumerate_limit is not None else (
        online_budget
    )
    limit = max(limit, online_budget)
    online_grid = decade_checkpoints(online_budget)
    offline_grid = decade_checkpoints(offline_budget, start=online_budget)
    curves: List[MeterCurves] = []
    for name, stream in streams:
        head: List[Tuple[str, float]] = []
        for item in stream:
            head.append(item)
            if len(head) >= limit:
                break
        online = tuple(cracking_curve(iter(head), victims, online_grid))
        mask_set = compile_mask_set(head, policy=policy, source=name)
        offline = tuple(mask_set.coverage_curve(victims, offline_grid))
        curves.append(MeterCurves(name, online, offline, mask_set))
    first, second = curves[0], curves[1]
    return CrossoverReport(
        curves=tuple(curves),
        online_budget=online_budget,
        offline_budget=offline_budget,
        online_crossover=crossover_point(
            _as_pairs(first.online), _as_pairs(second.online)
        ),
        offline_crossover=crossover_point(
            _as_pairs(first.offline), _as_pairs(second.offline)
        ),
    )
