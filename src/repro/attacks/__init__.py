"""Trawling guessing-attack simulation (paper Sec. II-A, Table I).

* :mod:`~repro.attacks.simulator` — online (lockout-limited) and
  offline (hash-rate-limited) trawling attacks against a corpus of
  accounts, driven by any guess stream.
"""

from repro.attacks.simulator import (
    AttackOutcome,
    HashFunctionProfile,
    LockoutPolicy,
    OfflineAttack,
    OnlineAttack,
    HASH_PROFILES,
)

__all__ = [
    "AttackOutcome",
    "HashFunctionProfile",
    "LockoutPolicy",
    "OfflineAttack",
    "OnlineAttack",
    "HASH_PROFILES",
]
