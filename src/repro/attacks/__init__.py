"""Attack-side view of the model (paper Sec. II-A, Table I).

* :mod:`~repro.attacks.engine` — the compiled guess pipeline: exact
  and beam-bounded enumeration over the frozen grammar, fast
  Monte-Carlo sampling, and the :class:`GuessStream` abstraction every
  consumer below accepts.
* :mod:`~repro.attacks.masks` — hashcat-style mask/rule compilation
  and the analytic keyspace extrapolation behind 10^10-scale
  crossover curves.
* :mod:`~repro.attacks.simulator` — online (lockout-limited) and
  offline (hash-rate-limited) trawling attacks against a corpus of
  accounts, driven by any guess stream.
"""

from repro.attacks.engine import (
    AttackEngine,
    Beam,
    EnumerationStats,
    FrozenSampler,
    GuessStream,
    guess_stream_for,
)
from repro.attacks.masks import (
    CrossoverReport,
    MaskEntry,
    MaskSet,
    MeterCurves,
    RuleEntry,
    compile_mask_set,
    compile_rules,
    crossover_report,
    decade_checkpoints,
    export_hashcat,
    mask_keyspace,
    mask_of,
    read_hcmask,
    read_rules,
)
from repro.attacks.simulator import (
    AttackOutcome,
    HashFunctionProfile,
    LockoutPolicy,
    OfflineAttack,
    OnlineAttack,
    HASH_PROFILES,
)

__all__ = [
    "AttackEngine",
    "AttackOutcome",
    "Beam",
    "CrossoverReport",
    "EnumerationStats",
    "FrozenSampler",
    "GuessStream",
    "HashFunctionProfile",
    "LockoutPolicy",
    "MaskEntry",
    "MaskSet",
    "MeterCurves",
    "OfflineAttack",
    "OnlineAttack",
    "RuleEntry",
    "HASH_PROFILES",
    "compile_mask_set",
    "compile_rules",
    "crossover_report",
    "decade_checkpoints",
    "export_hashcat",
    "guess_stream_for",
    "mask_keyspace",
    "mask_of",
    "read_hcmask",
    "read_rules",
]
