"""Executable form of the paper's Table I attacker taxonomy.

Table I distinguishes trawling attackers by channel:

* **online** — interacts with the live server, so detection and
  lockout cap the guesses per account (NIST's example: 100 failed
  attempts per 30 days; the paper's budget: ``< 10^4``); the optimal
  strategy is the few most popular passwords against every account;
* **offline** — holds the hash file, limited only by compute; the
  guess budget is how many hashes the hardware evaluates within the
  attacker's time window (``> 10^9`` for fast hashes; orders of
  magnitude fewer for bcrypt/scrypt/PBKDF2, the defence footnote 5
  recommends).

Both attacks take a *guess stream* — any decreasing-probability
iterable of ``(surface, probability)`` pairs: the attack engine's
:class:`~repro.attacks.engine.GuessStream`, a baseline meter's
``iter_guesses()``, or a corpus head — and a test corpus of accounts
(one account per entry, duplicates included: popular passwords protect
many accounts, which is exactly why they fall first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro import obs
from repro.datasets.corpus import PasswordCorpus

#: Legacy alias: attacks accept any iterable of ``(guess, probability)``
#: pairs; the engine's ``GuessStream`` class satisfies it.
GuessStream = Iterator[Tuple[str, float]]


def _run_guessing_session(
    guesses: Iterable[Tuple[str, float]],
    accounts: PasswordCorpus,
    budget: int,
) -> Tuple[int, int, int]:
    """The shared attack loop: try distinct guesses up to ``budget``.

    Returns ``(tried, accounts_compromised, unique_recovered)``.
    Duplicate surfaces in the stream are skipped — a session tries
    each string once (engine streams are already deduplicated; corpus
    heads and legacy streams may not be).
    """
    compromised = 0
    recovered = 0
    seen = set()
    tried = 0
    for guess, _ in guesses:
        if guess in seen:
            continue
        seen.add(guess)
        tried += 1
        hits = accounts.count(guess)
        if hits:
            compromised += hits
            recovered += 1
        if tried >= budget:
            break
    telemetry = obs.get()
    if telemetry.enabled:
        telemetry.incr_many([
            ("attack.simulate.guesses", tried),
            ("attack.simulate.compromised", compromised),
        ])
    return tried, compromised, recovered


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one simulated attack."""

    attack: str
    guesses_per_account: int
    accounts_total: int
    accounts_compromised: int
    unique_passwords_recovered: int

    @property
    def compromise_rate(self) -> float:
        return self.accounts_compromised / self.accounts_total

    def summary(self) -> str:
        return (
            f"{self.attack}: {self.accounts_compromised:,}/"
            f"{self.accounts_total:,} accounts "
            f"({self.compromise_rate:.2%}) with "
            f"{self.guesses_per_account:,} guesses/account"
        )


@dataclass(frozen=True)
class LockoutPolicy:
    """Online-defence knobs (Sec. II-A / NIST SP-800-63).

    Attributes:
        attempts_per_window: failed logins allowed per account per
            window (NIST example: 100 per 30 days).
        windows: how many windows the attack campaign spans.
    """

    attempts_per_window: int = 100
    windows: int = 1

    def __post_init__(self) -> None:
        if self.attempts_per_window < 1:
            raise ValueError("attempts_per_window must be positive")
        if self.windows < 1:
            raise ValueError("windows must be positive")

    @property
    def total_attempts(self) -> int:
        return self.attempts_per_window * self.windows


class OnlineAttack:
    """Trawling online guessing under a lockout policy.

    The attacker sends the same top guesses to every account; each
    account only tolerates ``policy.total_attempts`` wrong guesses.

    >>> corpus = PasswordCorpus(["123456"] * 6 + ["rare-one"] * 1)
    >>> attack = OnlineAttack(LockoutPolicy(attempts_per_window=1))
    >>> outcome = attack.run(iter([("123456", 0.9)]), corpus)
    >>> outcome.accounts_compromised
    6
    """

    def __init__(self, policy: Optional[LockoutPolicy] = None) -> None:
        self.policy = policy or LockoutPolicy()

    def run(self, guesses: GuessStream,
            accounts: PasswordCorpus) -> AttackOutcome:
        if accounts.total == 0:
            raise ValueError("no accounts to attack")
        budget = self.policy.total_attempts
        tried, compromised, recovered = _run_guessing_session(
            guesses, accounts, budget
        )
        return AttackOutcome(
            attack=f"online (lockout {self.policy.attempts_per_window}"
                   f" x {self.policy.windows})",
            guesses_per_account=min(tried, budget),
            accounts_total=accounts.total,
            accounts_compromised=compromised,
            unique_passwords_recovered=recovered,
        )


@dataclass(frozen=True)
class HashFunctionProfile:
    """Offline hashing-cost model (footnote 5 of the paper).

    ``rate`` is hashes/second on the attacker's rig; dedicated
    GPU/FPGA hardware pushes fast hashes "orders of magnitude higher
    than expected" (Sec. I, ref [25]).
    """

    name: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")


#: Representative rates (order-of-magnitude, single commodity GPU).
HASH_PROFILES = {
    "plaintext": HashFunctionProfile("plaintext", float("inf")),
    "md5": HashFunctionProfile("md5", 1e10),
    "sha256": HashFunctionProfile("sha256", 1e9),
    "bcrypt": HashFunctionProfile("bcrypt", 1e4),
    "scrypt": HashFunctionProfile("scrypt", 1e3),
}


class OfflineAttack:
    """Trawling offline guessing against a (salted-)hash file.

    Salting forces per-account hashing, so the per-account guess
    budget is ``rate * seconds / accounts``; an unsalted file lets one
    hash test every account at once (``64% of leaked datasets are in
    clear-text or unsalted MD5`` — the paper's footnote 5), so the
    budget is ``rate * seconds`` regardless of account count.
    """

    def __init__(self, hash_profile: HashFunctionProfile,
                 seconds: float = 24 * 3600.0,
                 salted: bool = True,
                 max_stream_guesses: int = 1_000_000) -> None:
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        if max_stream_guesses < 1:
            raise ValueError("max_stream_guesses must be positive")
        self.hash_profile = hash_profile
        self.seconds = seconds
        self.salted = salted
        #: Simulation cap: model guess streams are effectively
        #: unbounded, so runs stop at min(hash budget, this cap).
        #: Raise it for deeper (slower) simulations.
        self.max_stream_guesses = max_stream_guesses

    def guess_budget(self, account_count: int) -> int:
        """Guesses per account the hardware affords."""
        if account_count < 1:
            raise ValueError("account_count must be positive")
        if self.hash_profile.rate == float("inf"):
            return 10 ** 12  # plaintext: effectively unbounded
        total_hashes = self.hash_profile.rate * self.seconds
        if self.salted:
            total_hashes /= account_count
        return max(1, int(total_hashes))

    def run(self, guesses: GuessStream,
            accounts: PasswordCorpus) -> AttackOutcome:
        if accounts.total == 0:
            raise ValueError("no accounts to attack")
        budget = min(
            self.guess_budget(accounts.total), self.max_stream_guesses
        )
        tried, compromised, recovered = _run_guessing_session(
            guesses, accounts, budget
        )
        salt_text = "salted" if self.salted else "unsalted"
        return AttackOutcome(
            attack=f"offline ({self.hash_profile.name}, {salt_text}, "
                   f"{self.seconds / 3600:.0f}h)",
            guesses_per_account=min(tried, budget),
            accounts_total=accounts.total,
            accounts_compromised=compromised,
            unique_passwords_recovered=recovered,
        )


def head_guess_stream(corpus: PasswordCorpus,
                      limit: Optional[int] = None) -> GuessStream:
    """A guess stream from a training corpus's popularity head —
    the classic wordlist attacker, for baselining model streams."""
    total = corpus.total
    for index, (password, count) in enumerate(corpus.most_common(limit)):
        yield password, count / total
