"""The asyncio HTTP server composing snapshots, workers and batchers.

:class:`ReproServer` is the online face of the meter (DESIGN.md §14):

* ``POST /check``   — measure one password (micro-batched);
* ``POST /suggest`` — stronger-variant suggestions;
* ``POST /policy``  — policy compliance check;
* ``POST /accept``  — online ``update()`` + snapshot hot reload;
* ``GET /healthz``  — worker liveness (``healthy``/``degraded``);
* ``GET /metrics``  — ``serve.*`` counters, latency percentiles.

One process can serve several trained models: construct the server
with a :class:`~repro.serve.registry.SnapshotRegistry` (a bare meter
is wrapped as a one-model registry) and route requests with the
``model=`` parameter — query string (``/check?model=canary``) or JSON
body field — defaulting to the first-registered model.  Each model
gets its own worker pool, shared-memory segment and micro-batcher, so
a per-model ``/accept`` hot-swaps one model without touching its
neighbours.

Scoring never runs on the event loop: with ``workers > 0`` batches go
to the warm :class:`~repro.serve.workers.WorkerPool` (whose workers
attach the model's shared segment — DESIGN.md §16) through the
default executor; without workers they run ``probability_many`` in the
executor (parallel-scorable meters) or inline per password.  Worker
mode requires the ``PARALLEL_SCORABLE`` registry capability — gating
is by capability, never by concrete meter type.

The server owns a private :class:`~repro.obs.core.Telemetry` backend,
so ``/metrics`` is always live even when the process-global backend is
the no-op default.
"""

from __future__ import annotations

import asyncio
import math
import random
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import (
    Any, Awaitable, Callable, Deque, Dict, List, Optional, Set, Tuple,
)
from urllib.parse import parse_qs

from repro.core.policy import COMMON_POLICIES, PasswordPolicy
from repro.core.suggestions import suggest_stronger
from repro.meters.base import probability_to_entropy
from repro.meters.registry import Capability, spec_for
from repro.obs.core import Telemetry, now as _now
from repro.serve.batcher import MicroBatcher
from repro.serve.http import (
    MAX_HEADER_BYTES, HttpError, Request, read_request, render_response,
)
from repro.serve.registry import SnapshotRegistry
from repro.serve.snapshot import ServingSnapshot
from repro.serve.workers import WorkerPool

#: Routes the server answers, for 404-vs-405 discrimination.
_ROUTES = {
    "/check": ("POST",),
    "/suggest": ("POST",),
    "/policy": ("POST",),
    "/accept": ("POST",),
    "/healthz": ("GET",),
    "/metrics": ("GET",),
}

#: Keys a JSON ``/policy`` request may use to define a custom policy.
_POLICY_KEYS = ("min_length", "max_length", "required_classes")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`ReproServer`.

    Attributes:
        host: bind address (loopback by default).
        port: bind port; ``0`` picks an ephemeral port.
        workers: warm scoring processes; ``0`` scores in-process.
        batch_window: micro-batch coalescing window in seconds; ``0``
            (the default) is self-clocking — batches form from
            requests arriving while the previous dispatch is in
            flight, adding no latency (see
            :mod:`repro.serve.batcher`).
        max_batch: most requests folded into one scoring call
            (``1`` disables coalescing entirely).
        max_body: request-body byte cap (413 beyond it).
        supervisor_interval: seconds between background worker
            liveness sweeps; ``0`` disables the supervisor (dead
            workers are then respawned on demand).
        idle_timeout: seconds a keep-alive connection may sit idle.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    batch_window: float = 0.0
    max_batch: int = 256
    max_body: int = 64 * 1024
    supervisor_interval: float = 0.25
    idle_timeout: float = 30.0


class _ModelRuntime:
    """Per-model serving state: meter, capabilities, pool, batcher."""

    __slots__ = ("name", "meter", "parallel", "updatable", "pool",
                 "batcher")

    def __init__(self, name: str, meter: Any) -> None:
        self.name = name
        self.meter = meter
        spec = spec_for(meter)
        self.parallel = (
            spec is not None and spec.has(Capability.PARALLEL_SCORABLE)
        )
        self.updatable = (
            spec is not None and spec.has(Capability.UPDATABLE)
        )
        self.pool: Optional[WorkerPool] = None
        self.batcher: Optional[MicroBatcher] = None

    @property
    def epoch(self) -> int:
        """Grammar epoch this model currently serves."""
        if self.pool is not None:
            return self.pool.epoch
        grammar = getattr(self.meter, "grammar", None)
        return int(getattr(grammar, "epoch", 0))

    def status(self) -> Dict[str, Any]:
        """Per-model block for ``/healthz`` and ``/metrics``."""
        return {
            "epoch": self.epoch,
            "workers": (
                self.pool.statuses() if self.pool is not None else []
            ),
        }


class ReproServer:
    """Registered meters served over HTTP with batching and workers."""

    def __init__(self, meter: Any,
                 config: Optional[ServeConfig] = None) -> None:
        registry = (
            meter if isinstance(meter, SnapshotRegistry)
            else SnapshotRegistry.single(meter)
        )
        if len(registry) == 0:
            raise ValueError("registry has no models to serve")
        self._config = config if config is not None else ServeConfig()
        self._telemetry = Telemetry()
        self._runtimes: Dict[str, _ModelRuntime] = {
            name: _ModelRuntime(name, model)
            for name, model in registry.items()
        }
        self._default = registry.default_name
        if self._config.workers > 0:
            for runtime in self._runtimes.values():
                if runtime.parallel:
                    continue
                spec = spec_for(runtime.meter)
                kind = (
                    spec.kind if spec
                    else type(runtime.meter).__name__
                )
                raise ValueError(
                    "worker processes need a parallel-scorable meter "
                    "(registry capability PARALLEL_SCORABLE); model "
                    f"{runtime.name!r} is {kind!r} — run with workers=0"
                )
        self._server: Optional[asyncio.AbstractServer] = None
        self._supervisor: Optional["asyncio.Task[None]"] = None
        self._connections: Set["asyncio.Task[None]"] = set()
        self._latencies: Deque[float] = deque(maxlen=4096)
        self._handlers: Dict[str, Callable[
            [Request], Awaitable[Tuple[int, Dict[str, Any]]]
        ]] = {
            "/check": self._check,
            "/suggest": self._suggest,
            "/policy": self._policy,
            "/accept": self._accept,
            "/healthz": self._healthz,
            "/metrics": self._metrics,
        }

    # --- introspection -------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The server's private telemetry backend (for tests/benches)."""
        return self._telemetry

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def models(self) -> Tuple[str, ...]:
        """Model names served, default (first-registered) first."""
        return tuple(self._runtimes)

    @property
    def _pool(self) -> Optional[WorkerPool]:
        """The default model's pool (lifecycle tests peek white-box)."""
        return self._runtimes[self._default].pool

    @property
    def epoch(self) -> int:
        """Grammar epoch of the default model."""
        return self._runtimes[self._default].epoch

    # --- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Publish segments, spawn workers, start batchers, bind.

        Each model publishes its snapshot into a shared segment and
        spawns its pool on the event-loop thread *before* the first
        executor thread exists, keeping fork-start pools
        single-threaded on the happy path.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        config = self._config
        for runtime in self._runtimes.values():
            if config.workers > 0:
                snapshot = ServingSnapshot.from_meter(runtime.meter)
                runtime.pool = WorkerPool(
                    snapshot, config.workers, telemetry=self._telemetry
                )
            runtime.batcher = MicroBatcher(
                partial(self._score_batch, runtime),
                window=config.batch_window,
                max_batch=config.max_batch,
                telemetry=self._telemetry,
            )
            await runtime.batcher.start()
        if config.workers > 0 and config.supervisor_interval > 0:
            self._supervisor = asyncio.create_task(self._supervise())
        self._server = await asyncio.start_server(
            self._on_connection, config.host, config.port,
            limit=MAX_HEADER_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting, drain/cancel connections, tear down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
            self._connections.clear()
        loop = asyncio.get_running_loop()
        for runtime in self._runtimes.values():
            batcher = runtime.batcher
            runtime.batcher = None
            if batcher is not None:
                await batcher.stop()
            pool = runtime.pool
            runtime.pool = None
            if pool is not None:
                # pool.stop also unlinks the model's shared segment.
                await loop.run_in_executor(None, pool.stop)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not running")
        await self._server.serve_forever()

    async def _supervise(self) -> None:
        """Background sweep: respawn dead workers between requests."""
        interval = self._config.supervisor_interval
        while True:
            await asyncio.sleep(interval)
            for runtime in self._runtimes.values():
                pool = runtime.pool
                if pool is not None and not pool.healthy():
                    await asyncio.get_running_loop().run_in_executor(
                        None, pool.respawn_dead
                    )

    # --- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; completing
            # normally here keeps asyncio.streams' done-callback (which
            # calls task.exception() unguarded) from logging it.
            self._telemetry.incr("serve.connection.cancelled")
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        telemetry = self._telemetry
        telemetry.incr("serve.connections")
        # Idle enforcement by watchdog, not a per-request wait_for:
        # wait_for wraps every read in a fresh task, which costs more
        # than the whole header parse.  The watchdog closes the
        # transport when the deadline lapses, which surfaces to the
        # pending read as a clean end-of-stream.
        loop = asyncio.get_running_loop()
        idle_timeout = self._config.idle_timeout
        deadline = [_now() + idle_timeout]
        timer: List[Optional[asyncio.TimerHandle]] = [None]

        def watchdog() -> None:
            remaining = deadline[0] - _now()
            if remaining <= 0:
                timer[0] = None
                writer.close()
            else:
                timer[0] = loop.call_later(remaining, watchdog)

        if idle_timeout > 0:
            timer[0] = loop.call_later(idle_timeout, watchdog)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self._config.max_body
                    )
                except HttpError as error:
                    telemetry.incr("serve.http.errors")
                    writer.write(render_response(
                        error.status, {"error": error.detail},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                start = _now()
                deadline[0] = start + idle_timeout
                keep_alive = request.keep_alive
                try:
                    status, payload = await self._route(request)
                except HttpError as error:
                    telemetry.incr("serve.http.errors")
                    status, payload = error.status, {
                        "error": error.detail
                    }
                    if error.close:
                        keep_alive = False
                except Exception as error:
                    telemetry.incr("serve.internal.errors")
                    status, payload = 500, {
                        "error": f"internal error: {error!r}"
                    }
                elapsed = _now() - start
                self._latencies.append(elapsed)
                telemetry.incr("serve.requests")
                telemetry.observe("serve.request.seconds", elapsed)
                writer.write(
                    render_response(status, payload, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
                deadline[0] = _now() + idle_timeout
        finally:
            if timer[0] is not None:
                timer[0].cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                self._telemetry.incr("serve.connection.resets")

    async def _route(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        methods = _ROUTES.get(request.path)
        if methods is None:
            raise HttpError(404, f"no route {request.path!r}")
        if request.method not in methods:
            raise HttpError(
                405,
                f"{request.method} not allowed on {request.path}",
            )
        return await self._handlers[request.path](request)

    # --- scoring backend ----------------------------------------------

    async def _score_batch(
        self, runtime: _ModelRuntime, passwords: List[str]
    ) -> Tuple[int, List[float]]:
        """Score one micro-batch for ``runtime`` off the event loop."""
        loop = asyncio.get_running_loop()
        pool = runtime.pool
        if pool is not None:
            epoch, scores, worker_seconds = await loop.run_in_executor(
                None, pool.score, list(passwords)
            )
            self._telemetry.observe(
                "serve.worker.seconds", worker_seconds
            )
            return epoch, scores
        meter = runtime.meter
        if runtime.parallel:
            scores = await loop.run_in_executor(
                None, meter.probability_many, list(passwords)
            )
            return runtime.epoch, list(scores)
        return runtime.epoch, [
            meter.probability(pw) for pw in passwords
        ]

    # --- handlers ------------------------------------------------------

    def _resolve_model(
        self,
        request: Request,
        payload: Optional[Dict[str, Any]] = None,
    ) -> _ModelRuntime:
        """The model a request routes to (``model=`` query or body).

        The query string wins over the body field; no parameter at all
        routes to the default (first-registered) model.
        """
        name: Optional[str] = None
        if request.query:
            values = parse_qs(request.query).get("model")
            if values:
                name = values[-1]
        if name is None and payload is not None:
            raw = payload.get("model")
            if raw is not None:
                if not isinstance(raw, str):
                    raise HttpError(400, "'model' must be a JSON string")
                name = raw
        if name is None:
            name = self._default
        runtime = self._runtimes.get(name)
        if runtime is None:
            known = ", ".join(self._runtimes)
            raise HttpError(
                400, f"unknown model {name!r}; serving: {known}"
            )
        return runtime

    @staticmethod
    def _password_field(payload: Dict[str, Any]) -> str:
        password = payload.get("password")
        if not isinstance(password, str):
            raise HttpError(400, "'password' must be a JSON string")
        return password

    @staticmethod
    def _bits(probability: float) -> Optional[float]:
        """Entropy bits, with unreachable (p=0) rendered as null."""
        bits = probability_to_entropy(probability)
        return bits if math.isfinite(bits) else None

    async def _check(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        payload = request.json()
        runtime = self._resolve_model(request, payload)
        password = self._password_field(payload)
        batcher = runtime.batcher
        if batcher is None:
            raise HttpError(503, "server is shutting down")
        epoch, probability = await batcher.submit(password)
        return 200, {
            "password": password,
            "probability": probability,
            "entropy_bits": self._bits(probability),
            "epoch": epoch,
            "model": runtime.name,
        }

    async def _suggest(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        payload = request.json()
        runtime = self._resolve_model(request, payload)
        password = self._password_field(payload)
        target_bits = payload.get("target_bits", 20.0)
        max_suggestions = payload.get("max_suggestions", 5)
        if not isinstance(target_bits, (int, float)):
            raise HttpError(400, "'target_bits' must be a number")
        if not isinstance(max_suggestions, int):
            raise HttpError(400, "'max_suggestions' must be an integer")
        call = partial(
            suggest_stronger, runtime.meter, password,
            target_bits=float(target_bits),
            max_suggestions=max_suggestions,
            rng=random.Random(0),
        )
        try:
            suggestions = await asyncio.get_running_loop().run_in_executor(
                None, call
            )
        except ValueError as error:
            raise HttpError(400, str(error))
        return 200, {
            "password": password,
            "model": runtime.name,
            "target_bits": float(target_bits),
            "suggestions": [
                {
                    "password": s.password,
                    "probability": s.probability,
                    "entropy_bits": self._bits(s.probability),
                    "edits": list(s.edits),
                }
                for s in suggestions
            ],
        }

    async def _policy(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        payload = request.json()
        password = self._password_field(payload)
        chosen = payload.get("policy", "6-20")
        if isinstance(chosen, str):
            policy = COMMON_POLICIES.get(chosen)
            if policy is None:
                known = ", ".join(sorted(COMMON_POLICIES))
                raise HttpError(
                    400, f"unknown policy {chosen!r}; known: {known}"
                )
        elif isinstance(chosen, dict):
            unknown = set(chosen) - set(_POLICY_KEYS)
            if unknown:
                raise HttpError(
                    400,
                    f"unknown policy keys: {', '.join(sorted(unknown))}",
                )
            fields = dict(chosen)
            if "required_classes" in fields:
                classes = fields["required_classes"]
                if not isinstance(classes, list):
                    raise HttpError(
                        400, "'required_classes' must be a list"
                    )
                fields["required_classes"] = tuple(classes)
            try:
                policy = PasswordPolicy(**fields)
            except (TypeError, ValueError) as error:
                raise HttpError(400, f"invalid policy: {error}")
        else:
            raise HttpError(
                400, "'policy' must be a name or an object"
            )
        violations = policy.violations(password)
        return 200, {
            "password": password,
            "policy": policy.describe(),
            "allowed": not violations,
            "violations": [
                {"rule": v.rule, "message": v.message}
                for v in violations
            ],
        }

    async def _accept(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        """Online update + hot reload: the measure→update loop.

        Per-model: only the routed model's meter updates and only its
        pool swaps segments — sibling models keep serving their epochs
        untouched.
        """
        payload = request.json()
        runtime = self._resolve_model(request, payload)
        if not runtime.updatable:
            raise HttpError(405, "meter does not support online update")
        password = self._password_field(payload)
        count = payload.get("count", 1)
        if not isinstance(count, int):
            raise HttpError(400, "'count' must be an integer")
        try:
            runtime.meter.update(password, count)
        except ValueError as error:
            raise HttpError(400, str(error))
        telemetry = self._telemetry
        telemetry.incr("serve.accepts")
        if runtime.pool is not None:
            # Rebuild + swap before answering: once the client sees
            # this response, sequential requests score the new epoch.
            loop = asyncio.get_running_loop()
            start = _now()
            snapshot = await loop.run_in_executor(
                None, ServingSnapshot.from_meter, runtime.meter
            )
            await loop.run_in_executor(
                None, runtime.pool.swap, snapshot
            )
            telemetry.incr("serve.reloads")
            telemetry.observe("serve.reload.seconds", _now() - start)
        return 200, {
            "accepted": True,
            "password": password,
            "count": count,
            "epoch": runtime.epoch,
            "model": runtime.name,
        }

    def _consume_respawn(self, future: "asyncio.Future[int]") -> None:
        if future.cancelled() or future.exception() is not None:
            self._telemetry.incr("serve.internal.errors")

    async def _healthz(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        healthy = True
        for runtime in self._runtimes.values():
            pool = runtime.pool
            if pool is None or pool.healthy():
                continue
            healthy = False
            future = asyncio.get_running_loop().run_in_executor(
                None, pool.respawn_dead
            )
            future.add_done_callback(self._consume_respawn)
        if not healthy:
            self._telemetry.incr("serve.health.degraded")
        # Top-level epoch/workers stay the default model's (the
        # single-model shape); per-model detail lives under "models".
        default = self._runtimes[self._default]
        return (200 if healthy else 503), {
            "status": "healthy" if healthy else "degraded",
            "epoch": default.epoch,
            "workers": default.status()["workers"],
            "models": {
                runtime.name: runtime.status()
                for runtime in self._runtimes.values()
            },
        }

    def _latency_summary(self) -> Dict[str, Any]:
        samples = sorted(self._latencies)
        if not samples:
            return {"count": 0, "p50": None, "p90": None,
                    "p99": None, "max": None}
        last = len(samples) - 1

        def at(quantile: float) -> float:
            return samples[min(last, int(round(quantile * last)))]

        return {
            "count": len(samples),
            "p50": at(0.50),
            "p90": at(0.90),
            "p99": at(0.99),
            "max": samples[last],
        }

    async def _metrics(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any]]:
        default = self._runtimes[self._default]
        batcher = default.batcher
        pool = default.pool
        return 200, {
            "counters": dict(sorted(self._telemetry.counters().items())),
            "latency": self._latency_summary(),
            "batcher": (
                {
                    "window": batcher.window,
                    "max_batch": batcher.max_batch,
                    "pending": batcher.pending,
                }
                if batcher is not None else None
            ),
            "workers": pool.statuses() if pool is not None else [],
            "epoch": default.epoch,
            "models": {
                runtime.name: runtime.status()
                for runtime in self._runtimes.values()
            },
        }
