"""The immutable serving snapshot: compiled trie + frozen grammar.

The online serving layer never scores against the mutable training
tables.  At start-up (and again after every grammar-epoch bump) the
server compiles the meter's state into a :class:`ServingSnapshot` —
the flat-array :class:`~repro.core.compiled_trie.CompiledTrie`
matchers plus the :class:`~repro.core.frozen.FrozenGrammar` scoring
kernel, stamped with the grammar epoch they were taken at.  The
snapshot is the *only* thing worker processes ever see, and it
travels as a *shared-memory segment name*, never a pickle: the pool
:meth:`ServingSnapshot.publish`-es the flat tables into one POSIX
segment (DESIGN.md §16) and each worker attaches zero-copy via
:meth:`ServingSnapshot.from_segment` — identical under fork and spawn
start methods, replaced wholesale on hot reload.

:class:`SnapshotScorer` is the executable form: a parser rebuilt
around the compiled matchers (:meth:`FuzzyParser.from_compiled`) plus
the frozen kernel, scoring batches through the same
parse-cached/distinct-memo path as ``FuzzyPSM.probability_many`` — so
served scores are bit-identical to direct per-call
``FuzzyPSM.probability`` (asserted black-box by
``tests/test_serve_http.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.compiled_trie import CompiledTrie
from repro.core.frozen import FrozenGrammar
from repro.core.parser import FuzzyParser
from repro.core.shm import SharedScoringSegment, _worker_attach_state


class ServingSnapshot:
    """Everything a scoring worker needs, frozen at one grammar epoch.

    Holds only compiled flat-array state (trie snapshots, the frozen
    grammar, parser flags) — exactly what :meth:`publish` lays out in
    a shared segment and :meth:`from_segment` reattaches, so every
    worker scores against the same physical bytes.
    """

    __slots__ = (
        "epoch", "forward", "reversed_matcher", "min_length",
        "flags", "parse_cache_size",
        "frozen",
    )

    def __init__(
        self,
        epoch: int,
        forward: CompiledTrie,
        reversed_matcher: Optional[CompiledTrie],
        min_length: int,
        flags: Dict[str, bool],
        parse_cache_size: int,
        frozen: FrozenGrammar,
    ) -> None:
        self.epoch = epoch
        self.forward = forward
        self.reversed_matcher = reversed_matcher
        self.min_length = min_length
        self.flags = flags
        self.parse_cache_size = parse_cache_size
        self.frozen = frozen

    @classmethod
    def from_meter(cls, meter: Any) -> "ServingSnapshot":
        """Snapshot a ``FuzzyPSM``-shaped meter at its current epoch.

        Requires the compiled-trie parse path (``use_compiled_trie``)
        — the pointer trie is deliberately never broadcast
        (:meth:`FuzzyParser.ensure_compiled_matchers` raises
        otherwise).  The duck-typed surface (``parser``,
        ``frozen_grammar``, ``trie``, ``config``) is exactly the
        parallel-scorable capability's; callers gate on the registry
        capability, never on a concrete meter type.
        """
        parser: FuzzyParser = meter.parser
        forward, reversed_matcher = parser.ensure_compiled_matchers()
        frozen: FrozenGrammar = meter.frozen_grammar()
        return cls(
            epoch=frozen.epoch,
            forward=forward,
            reversed_matcher=reversed_matcher,
            min_length=meter.trie.min_length,
            flags=parser.flags,
            parse_cache_size=meter.config.parse_cache_size,
            frozen=frozen,
        )

    def publish(self) -> SharedScoringSegment:
        """Pack this snapshot into a fresh shared-memory segment.

        The caller (the worker pool) owns the segment and must
        ``unlink`` it when the epoch is retired; workers attach by
        name via :meth:`from_segment` in milliseconds, regardless of
        start method.
        """
        return SharedScoringSegment.create(
            epoch=self.epoch,
            forward=self.forward,
            min_length=self.min_length,
            flags=self.flags,
            parse_cache_size=self.parse_cache_size,
            reversed_matcher=self.reversed_matcher,
            frozen=self.frozen,
        )

    @classmethod
    def from_segment(cls, name: str) -> "ServingSnapshot":
        """Attach the named segment and wrap it as a snapshot.

        Zero-copy: the trie and grammar columns are views into the
        shared mapping (through the per-process attach cache, so
        re-attaching the same epoch is free and attaching a new one
        detaches the old).  Serving segments always carry a grammar;
        trie-only training segments are rejected.
        """
        state = _worker_attach_state(name)
        if state.frozen is None:
            raise ValueError(
                f"segment {name!r} carries no grammar tables "
                "(trie-only training segment?)"
            )
        return cls(
            epoch=state.epoch,
            forward=state.forward,
            reversed_matcher=state.reversed_matcher,
            min_length=state.min_length,
            flags=state.flags,
            parse_cache_size=state.parse_cache_size,
            frozen=state.frozen,
        )

    def build_scorer(self) -> "SnapshotScorer":
        """An executable scorer over this snapshot (one per process)."""
        return SnapshotScorer(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingSnapshot(epoch={self.epoch}, "
            f"terminals={self.frozen.terminal_count})"
        )


class SnapshotScorer:
    """Batch scorer over one :class:`ServingSnapshot`.

    Mirrors the serial fast path of ``FuzzyPSM.probability_many``:
    parses through the LRU parse cache, memoises per distinct password
    within the batch, and evaluates derivations against the frozen
    kernel — the blessed batch configuration (ROADMAP item 5), never
    the per-call dict-table loop.
    """

    __slots__ = ("epoch", "_parser", "_frozen")

    def __init__(self, snapshot: ServingSnapshot) -> None:
        self.epoch = snapshot.epoch
        self._parser = FuzzyParser.from_compiled(
            snapshot.forward,
            snapshot.reversed_matcher,
            snapshot.min_length,
            snapshot.flags,
            parse_cache_size=snapshot.parse_cache_size,
        )
        self._frozen = snapshot.frozen

    def score_many(self, passwords: Sequence[str]) -> List[float]:
        """One probability per input, bit-identical to per-call scores."""
        parse = self._parser.parse_cached
        score = self._frozen.derivation_probability
        memo: Dict[str, float] = {}
        out: List[float] = []
        for password in passwords:
            value = memo.get(password)
            if value is None:
                if password:
                    value = score(parse(password).to_derivation())
                else:
                    value = 0.0
                memo[password] = value
            out.append(value)
        return out
