"""The immutable serving snapshot: compiled trie + frozen grammar.

The online serving layer never scores against the mutable training
tables.  At start-up (and again after every grammar-epoch bump) the
server compiles the meter's state into a :class:`ServingSnapshot` —
the flat-array :class:`~repro.core.compiled_trie.CompiledTrie`
matchers plus the :class:`~repro.core.frozen.FrozenGrammar` scoring
kernel, stamped with the grammar epoch they were taken at.  The
snapshot is the *only* thing worker processes ever see: it is seeded
into each worker exactly once (by fork/COW inheritance, or one pickle
on spawn platforms) and replaced wholesale on hot reload — request
handling never re-pickles model state.

:class:`SnapshotScorer` is the executable form: a parser rebuilt
around the compiled matchers (:meth:`FuzzyParser.from_compiled`) plus
the frozen kernel, scoring batches through the same
parse-cached/distinct-memo path as ``FuzzyPSM.probability_many`` — so
served scores are bit-identical to direct per-call
``FuzzyPSM.probability`` (asserted black-box by
``tests/test_serve_http.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.compiled_trie import CompiledTrie
from repro.core.frozen import FrozenGrammar
from repro.core.parser import FuzzyParser


class ServingSnapshot:
    """Everything a scoring worker needs, frozen at one grammar epoch.

    Holds only compiled flat-array state (trie snapshots, the frozen
    grammar, parser flags), so it pickles cheaply and — under the
    default fork start method — is shared copy-on-write with every
    worker seeded from it.
    """

    __slots__ = (
        "epoch", "forward", "reversed_matcher", "min_length",
        "flags", "parse_cache_size",
        "frozen",
    )

    def __init__(
        self,
        epoch: int,
        forward: CompiledTrie,
        reversed_matcher: Optional[CompiledTrie],
        min_length: int,
        flags: Dict[str, bool],
        parse_cache_size: int,
        frozen: FrozenGrammar,
    ) -> None:
        self.epoch = epoch
        self.forward = forward
        self.reversed_matcher = reversed_matcher
        self.min_length = min_length
        self.flags = flags
        self.parse_cache_size = parse_cache_size
        self.frozen = frozen

    @classmethod
    def from_meter(cls, meter: Any) -> "ServingSnapshot":
        """Snapshot a ``FuzzyPSM``-shaped meter at its current epoch.

        Requires the compiled-trie parse path (``use_compiled_trie``)
        — the pointer trie is deliberately never broadcast
        (:meth:`FuzzyParser.ensure_compiled_matchers` raises
        otherwise).  The duck-typed surface (``parser``,
        ``frozen_grammar``, ``trie``, ``config``) is exactly the
        parallel-scorable capability's; callers gate on the registry
        capability, never on a concrete meter type.
        """
        parser: FuzzyParser = meter.parser
        forward, reversed_matcher = parser.ensure_compiled_matchers()
        frozen: FrozenGrammar = meter.frozen_grammar()
        return cls(
            epoch=frozen.epoch,
            forward=forward,
            reversed_matcher=reversed_matcher,
            min_length=meter.trie.min_length,
            flags=parser.flags,
            parse_cache_size=meter.config.parse_cache_size,
            frozen=frozen,
        )

    def build_scorer(self) -> "SnapshotScorer":
        """An executable scorer over this snapshot (one per process)."""
        return SnapshotScorer(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingSnapshot(epoch={self.epoch}, "
            f"terminals={self.frozen.terminal_count})"
        )


class SnapshotScorer:
    """Batch scorer over one :class:`ServingSnapshot`.

    Mirrors the serial fast path of ``FuzzyPSM.probability_many``:
    parses through the LRU parse cache, memoises per distinct password
    within the batch, and evaluates derivations against the frozen
    kernel — the blessed batch configuration (ROADMAP item 5), never
    the per-call dict-table loop.
    """

    __slots__ = ("epoch", "_parser", "_frozen")

    def __init__(self, snapshot: ServingSnapshot) -> None:
        self.epoch = snapshot.epoch
        self._parser = FuzzyParser.from_compiled(
            snapshot.forward,
            snapshot.reversed_matcher,
            snapshot.min_length,
            snapshot.flags,
            parse_cache_size=snapshot.parse_cache_size,
        )
        self._frozen = snapshot.frozen

    def score_many(self, passwords: Sequence[str]) -> List[float]:
        """One probability per input, bit-identical to per-call scores."""
        parse = self._parser.parse_cached
        score = self._frozen.derivation_probability
        memo: Dict[str, float] = {}
        out: List[float] = []
        for password in passwords:
            value = memo.get(password)
            if value is None:
                if password:
                    value = score(parse(password).to_derivation())
                else:
                    value = 0.0
                memo[password] = value
            out.append(value)
        return out
