"""Minimal HTTP/1.1 over asyncio streams (stdlib only).

Just enough of RFC 9112 for the serving API: request line + headers +
``Content-Length`` bodies, keep-alive by default on HTTP/1.1, JSON
responses with explicit lengths.  Every malformed input maps to a
clean 4xx/5xx response — the contract tested black-box is that a bad
client never hangs a connection:

* overlong/garbled request line or headers → 400/431 (connection
  closed — the stream cannot be resynchronised);
* ``Transfer-Encoding`` bodies → 501 (never implemented here);
* missing/invalid ``Content-Length`` → 400;
* declared body over the configured cap → 413 *before* reading it.

Parsing limits ride on the stream reader's own ``limit`` (the head is
read with one ``readuntil``, which raises ``LimitOverrunError`` past
it), so a hostile header can never buffer unbounded bytes.  The head
is consumed in a single await — request line and headers split in
memory — keeping per-request event-loop overhead low enough for the
micro-batcher to matter (see ``benchmarks/test_timing_serving.py``).
Line endings must be CRLF, as HTTP/1.1 requires.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import asyncio

#: Cap on accumulated header bytes per request (plus the reader's own
#: per-line limit, set by the server from this constant).
MAX_HEADER_BYTES = 16 * 1024
#: Cap on the number of header fields per request.
MAX_HEADER_COUNT = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An HTTP error response to be rendered for the client.

    ``close`` marks errors after which the connection cannot be safely
    reused (the request stream is out of sync).
    """

    def __init__(self, status: int, detail: str,
                 close: bool = False) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.close = close


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body",
                 "keep_alive")

    def __init__(self, method: str, path: str, query: str,
                 headers: Dict[str, str], body: bytes,
                 keep_alive: bool) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> Dict[str, Any]:
        """The body decoded as a JSON object (400 on anything else)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream (client closed between
    requests, or vanished mid-body — nothing to respond to).  Raises
    :class:`HttpError` for every malformed shape.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if error.partial.strip():
            raise HttpError(400, "truncated request head", close=True)
        return None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the header budget",
                        close=True)
    lines = head[:-4].split(b"\r\n")
    parts = lines[0].decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed request line", close=True)
    method, target, version = parts
    if len(lines) - 1 > MAX_HEADER_COUNT:
        raise HttpError(431, "too many header fields", close=True)
    headers: Dict[str, str] = {}
    for raw in lines[1:]:
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator or not name.strip():
            raise HttpError(400, "malformed header line", close=True)
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "transfer-encoding bodies are not supported",
                        close=True)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError(length_text)
    except ValueError:
        raise HttpError(400, f"invalid content-length {length_text!r}",
                        close=True)
    if length > max_body:
        raise HttpError(
            413,
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte limit",
            close=True,
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    path, _separator, query = target.partition("?")
    return Request(method.upper(), path, query, headers, body, keep_alive)


def render_response(status: int, payload: Dict[str, Any],
                    keep_alive: bool) -> bytes:
    """One complete JSON response, ready to write."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
