"""Warm scoring workers: segment-seeded, supervised, hot-swappable.

Each worker is a long-lived ``multiprocessing.Process`` connected to
the server by one duplex pipe.  Workers never receive model state by
value: the pool publishes its :class:`ServingSnapshot` into one
shared-memory segment (DESIGN.md §16) and hands each worker the
segment *name* — attach is a millisecond ``mmap``, identical under
the fork and spawn start methods (:func:`repro.core.shm.mp_context`),
and request traffic carries only password lists and score lists.  A
hot reload publishes the new epoch's segment, ships its name down the
pipe exactly once per worker, then unlinks the retired segment;
because the pipe is FIFO and each worker handles one message at a
time, every batch already queued ahead of the swap finishes on the
old mapping (which stays valid until the worker reattaches).

Crash handling is the pool's job, not the caller's: a batch sent to a
worker that died (killed, OOM, segfault) surfaces as a pipe error, the
pool marks the worker dead, respawns it attached to the *current*
segment, and redispatches the batch to a surviving worker — falling
back to scoring inline in the server process when every worker is down
— so no request is ever dropped on a worker failure.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.shm import SharedScoringSegment, mp_context
from repro.obs.core import Telemetry, now as _now
from repro.serve.snapshot import ServingSnapshot, SnapshotScorer

#: Seconds a dispatcher waits on a worker reply before declaring the
#: worker wedged.  Generous — batches score in milliseconds; this only
#: fires for a live-but-stuck process, which is treated like a crash.
WORKER_REPLY_TIMEOUT = 30.0


class WorkerCrash(RuntimeError):
    """A worker died (or wedged) under a request; the pool retries."""


def _serve_worker_main(connection: Any, segment_name: str) -> None:
    """Worker process entrypoint: score batches until told to stop.

    Scoring state comes from attaching ``segment_name`` (zero-copy,
    through the per-process attach cache in :mod:`repro.core.shm` —
    the only module global touched, and one blessed for worker use by
    fork-safety rule FPM012).  Messages are ``(kind, ...)`` tuples:

    * ``("score", [pw, ...])`` → ``("scored", epoch, [p, ...], secs)``;
    * ``("swap", name)``       → ``("swapped", epoch)`` — attaches the
      new epoch's segment and rebuilds the scorer; in-flight batches
      queued earlier already drained on the old mapping;
    * ``("ping",)``            → ``("pong", epoch)``;
    * ``("stop",)``            → ``("stopped",)`` and exit.
    """
    scorer: SnapshotScorer = (
        ServingSnapshot.from_segment(segment_name).build_scorer()
    )
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "score":
            start = _now()
            scores = scorer.score_many(message[1])
            connection.send(
                ("scored", scorer.epoch, scores, _now() - start)
            )
        elif kind == "swap":
            scorer = (
                ServingSnapshot.from_segment(message[1]).build_scorer()
            )
            connection.send(("swapped", scorer.epoch))
        elif kind == "ping":
            connection.send(("pong", scorer.epoch))
        elif kind == "stop":
            connection.send(("stopped",))
            break
    connection.close()


class _WorkerHandle:
    """One worker process plus its pipe and dispatch lock."""

    __slots__ = ("process", "connection", "lock", "dead")

    def __init__(self, segment_name: str) -> None:
        context = mp_context()
        parent, child = context.Pipe()
        self.process = context.Process(
            target=_serve_worker_main, args=(child, segment_name),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.connection = parent
        self.lock = threading.Lock()
        self.dead = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def request(self, message: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Blocking send/recv round trip (executor threads only).

        The per-handle lock serialises dispatchers onto the pipe; any
        pipe failure or reply timeout marks the handle dead and raises
        :class:`WorkerCrash` so the pool can respawn and retry.
        """
        with self.lock:
            if self.dead:
                raise WorkerCrash(
                    f"worker pid={self.pid} already marked dead"
                )
            try:
                self.connection.send(message)
                if not self.connection.poll(WORKER_REPLY_TIMEOUT):
                    self.dead = True
                    raise WorkerCrash(
                        f"worker pid={self.pid} timed out after "
                        f"{WORKER_REPLY_TIMEOUT}s"
                    )
                return self.connection.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                self.dead = True
                raise WorkerCrash(
                    f"worker pid={self.pid} died mid-request: {error!r}"
                ) from error

    def stop(self, join_timeout: float = 2.0) -> None:
        """Best-effort graceful stop, then terminate."""
        if self.alive():
            try:
                with self.lock:
                    self.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                self.dead = True
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=join_timeout)
        self.dead = True
        self.connection.close()


class WorkerPool:
    """A fixed-size pool of warm workers with supervised respawn.

    All methods are blocking (the async server calls them through an
    executor).  The pool owns one *current* shared segment (published
    from the snapshot it was built or last swapped with): spawns and
    respawns attach to it by name, :meth:`swap` publishes the new
    epoch's segment, broadcasts its name to the live workers and
    unlinks the retired one.  :meth:`stop` unlinks the current
    segment, so a stopped pool leaves nothing in ``/dev/shm``.
    """

    def __init__(
        self,
        snapshot: ServingSnapshot,
        size: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self._snapshot = snapshot
        self._segment: SharedScoringSegment = snapshot.publish()
        self._telemetry = telemetry if telemetry is not None else obs.get()
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(self._segment.name) for _ in range(size)
        ]
        self._round_robin = 0
        self._respawn_lock = threading.Lock()
        self._fallback: Optional[SnapshotScorer] = None

    # --- introspection -------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._handles)

    @property
    def epoch(self) -> int:
        """Epoch of the snapshot workers are (being) seeded with."""
        return self._snapshot.epoch

    @property
    def segment_name(self) -> str:
        """Name of the current shared segment (for tests/operators)."""
        return self._segment.name

    def statuses(self) -> List[Dict[str, Any]]:
        """Liveness of every worker, for ``/healthz``."""
        return [
            {"pid": handle.pid, "alive": handle.alive()}
            for handle in self._handles
        ]

    def healthy(self) -> bool:
        return all(handle.alive() for handle in self._handles)

    # --- scoring -------------------------------------------------------

    def score(
        self, passwords: List[str]
    ) -> Tuple[int, List[float], float]:
        """Score one batch on some worker; never drops the batch.

        Returns ``(epoch, scores, worker_seconds)``.  Crashed workers
        are respawned and the batch redispatched; with every worker
        down the batch is scored inline on the pool's current snapshot
        (``serve.worker.fallback.inline``).
        """
        telemetry = self._telemetry
        for _ in range(len(self._handles) + 1):
            handle = self._next_alive()
            if handle is None:
                break
            try:
                reply = handle.request(("score", passwords))
            except WorkerCrash:
                telemetry.incr("serve.worker.crashes")
                self.respawn_dead()
                continue
            return reply[1], reply[2], reply[3]
        telemetry.incr("serve.worker.fallback.inline")
        self.respawn_dead()
        scorer = self._fallback_scorer()
        start = _now()
        scores = scorer.score_many(passwords)
        return scorer.epoch, scores, _now() - start

    def _next_alive(self) -> Optional[_WorkerHandle]:
        """Round-robin over live workers (None when all are dead)."""
        handles = self._handles
        for _ in range(len(handles)):
            self._round_robin = (self._round_robin + 1) % len(handles)
            handle = handles[self._round_robin]
            if handle.alive():
                return handle
        return None

    def _fallback_scorer(self) -> SnapshotScorer:
        """In-process scorer over the current snapshot (last resort)."""
        scorer = self._fallback
        if scorer is None or scorer.epoch != self._snapshot.epoch:
            scorer = self._snapshot.build_scorer()
            self._fallback = scorer
        return scorer

    # --- lifecycle -----------------------------------------------------

    def respawn_dead(self) -> int:
        """Replace every dead worker with one seeded from the current
        snapshot; returns how many were replaced."""
        with self._respawn_lock:
            replaced = 0
            for index, handle in enumerate(self._handles):
                if handle.alive():
                    continue
                handle.stop()
                self._handles[index] = _WorkerHandle(self._segment.name)
                replaced += 1
            if replaced:
                self._telemetry.incr("serve.worker.respawns", replaced)
            return replaced

    def swap(self, snapshot: ServingSnapshot) -> None:
        """Atomically adopt ``snapshot`` and broadcast it to workers.

        The new epoch's segment is published and adopted first, so any
        respawn from here on attaches the new epoch; each live worker
        then receives the segment name once.  Workers that die during
        the broadcast are respawned — already attached to the new
        segment.  The retired segment is unlinked last: mappings in
        workers still draining queued batches stay valid, only the
        name disappears.
        """
        retired = self._segment
        self._segment = snapshot.publish()
        self._snapshot = snapshot
        for handle in list(self._handles):
            try:
                handle.request(("swap", self._segment.name))
            except WorkerCrash:
                self._telemetry.incr("serve.worker.crashes")
                self.respawn_dead()
        retired.unlink()

    def stop(self) -> None:
        for handle in self._handles:
            handle.stop()
        self._segment.unlink()
