"""Warm scoring workers: seeded once, supervised, hot-swappable.

Each worker is a long-lived ``multiprocessing.Process`` connected to
the server by one duplex pipe.  The :class:`ServingSnapshot` is handed
to the worker at spawn time — under the fork start method it arrives
by copy-on-write inheritance, on spawn platforms as a single pickle —
and *never again per request*: request traffic carries only password
lists and score lists.  A hot reload ships the new snapshot down the
pipe exactly once per worker per epoch; because the pipe is FIFO and
each worker handles one message at a time, every batch already queued
ahead of the swap finishes on the old snapshot.

Crash handling is the pool's job, not the caller's: a batch sent to a
worker that died (killed, OOM, segfault) surfaces as a pipe error, the
pool marks the worker dead, respawns it seeded with the *current*
snapshot, and redispatches the batch to a surviving worker — falling
back to scoring inline in the server process when every worker is down
— so no request is ever dropped on a worker failure.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.obs.core import Telemetry, now as _now
from repro.serve.snapshot import ServingSnapshot, SnapshotScorer

#: Seconds a dispatcher waits on a worker reply before declaring the
#: worker wedged.  Generous — batches score in milliseconds; this only
#: fires for a live-but-stuck process, which is treated like a crash.
WORKER_REPLY_TIMEOUT = 30.0

try:  # Fork start method: snapshot seeding is COW, not a pickle.
    _CONTEXT = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-fork platforms
    _CONTEXT = multiprocessing.get_context()


class WorkerCrash(RuntimeError):
    """A worker died (or wedged) under a request; the pool retries."""


def _serve_worker_main(connection: Any, snapshot: ServingSnapshot) -> None:
    """Worker process entrypoint: score batches until told to stop.

    All state lives in locals — the worker writes no module globals
    (fork-safety rule FPM012), so respawned workers are exact replays.
    Messages are ``(kind, ...)`` tuples:

    * ``("score", [pw, ...])`` → ``("scored", epoch, [p, ...], secs)``;
    * ``("swap", snapshot)``   → ``("swapped", epoch)`` — rebuilds the
      scorer; in-flight batches queued earlier already drained;
    * ``("ping",)``            → ``("pong", epoch)``;
    * ``("stop",)``            → ``("stopped",)`` and exit.
    """
    scorer: SnapshotScorer = snapshot.build_scorer()
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "score":
            start = _now()
            scores = scorer.score_many(message[1])
            connection.send(
                ("scored", scorer.epoch, scores, _now() - start)
            )
        elif kind == "swap":
            scorer = message[1].build_scorer()
            connection.send(("swapped", scorer.epoch))
        elif kind == "ping":
            connection.send(("pong", scorer.epoch))
        elif kind == "stop":
            connection.send(("stopped",))
            break
    connection.close()


class _WorkerHandle:
    """One worker process plus its pipe and dispatch lock."""

    __slots__ = ("process", "connection", "lock", "dead")

    def __init__(self, snapshot: ServingSnapshot) -> None:
        parent, child = _CONTEXT.Pipe()
        self.process = _CONTEXT.Process(
            target=_serve_worker_main, args=(child, snapshot), daemon=True
        )
        self.process.start()
        child.close()
        self.connection = parent
        self.lock = threading.Lock()
        self.dead = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def request(self, message: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Blocking send/recv round trip (executor threads only).

        The per-handle lock serialises dispatchers onto the pipe; any
        pipe failure or reply timeout marks the handle dead and raises
        :class:`WorkerCrash` so the pool can respawn and retry.
        """
        with self.lock:
            if self.dead:
                raise WorkerCrash(
                    f"worker pid={self.pid} already marked dead"
                )
            try:
                self.connection.send(message)
                if not self.connection.poll(WORKER_REPLY_TIMEOUT):
                    self.dead = True
                    raise WorkerCrash(
                        f"worker pid={self.pid} timed out after "
                        f"{WORKER_REPLY_TIMEOUT}s"
                    )
                return self.connection.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                self.dead = True
                raise WorkerCrash(
                    f"worker pid={self.pid} died mid-request: {error!r}"
                ) from error

    def stop(self, join_timeout: float = 2.0) -> None:
        """Best-effort graceful stop, then terminate."""
        if self.alive():
            try:
                with self.lock:
                    self.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                self.dead = True
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=join_timeout)
        self.dead = True
        self.connection.close()


class WorkerPool:
    """A fixed-size pool of warm workers with supervised respawn.

    All methods are blocking (the async server calls them through an
    executor).  The pool always tracks one *current* snapshot: spawns
    and respawns seed from it, :meth:`swap` replaces it and broadcasts
    the replacement to the live workers.
    """

    def __init__(
        self,
        snapshot: ServingSnapshot,
        size: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self._snapshot = snapshot
        self._telemetry = telemetry if telemetry is not None else obs.get()
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(snapshot) for _ in range(size)
        ]
        self._round_robin = 0
        self._respawn_lock = threading.Lock()
        self._fallback: Optional[SnapshotScorer] = None

    # --- introspection -------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._handles)

    @property
    def epoch(self) -> int:
        """Epoch of the snapshot workers are (being) seeded with."""
        return self._snapshot.epoch

    def statuses(self) -> List[Dict[str, Any]]:
        """Liveness of every worker, for ``/healthz``."""
        return [
            {"pid": handle.pid, "alive": handle.alive()}
            for handle in self._handles
        ]

    def healthy(self) -> bool:
        return all(handle.alive() for handle in self._handles)

    # --- scoring -------------------------------------------------------

    def score(
        self, passwords: List[str]
    ) -> Tuple[int, List[float], float]:
        """Score one batch on some worker; never drops the batch.

        Returns ``(epoch, scores, worker_seconds)``.  Crashed workers
        are respawned and the batch redispatched; with every worker
        down the batch is scored inline on the pool's current snapshot
        (``serve.worker.fallback.inline``).
        """
        telemetry = self._telemetry
        for _ in range(len(self._handles) + 1):
            handle = self._next_alive()
            if handle is None:
                break
            try:
                reply = handle.request(("score", passwords))
            except WorkerCrash:
                telemetry.incr("serve.worker.crashes")
                self.respawn_dead()
                continue
            return reply[1], reply[2], reply[3]
        telemetry.incr("serve.worker.fallback.inline")
        self.respawn_dead()
        scorer = self._fallback_scorer()
        start = _now()
        scores = scorer.score_many(passwords)
        return scorer.epoch, scores, _now() - start

    def _next_alive(self) -> Optional[_WorkerHandle]:
        """Round-robin over live workers (None when all are dead)."""
        handles = self._handles
        for _ in range(len(handles)):
            self._round_robin = (self._round_robin + 1) % len(handles)
            handle = handles[self._round_robin]
            if handle.alive():
                return handle
        return None

    def _fallback_scorer(self) -> SnapshotScorer:
        """In-process scorer over the current snapshot (last resort)."""
        scorer = self._fallback
        if scorer is None or scorer.epoch != self._snapshot.epoch:
            scorer = self._snapshot.build_scorer()
            self._fallback = scorer
        return scorer

    # --- lifecycle -----------------------------------------------------

    def respawn_dead(self) -> int:
        """Replace every dead worker with one seeded from the current
        snapshot; returns how many were replaced."""
        with self._respawn_lock:
            replaced = 0
            for index, handle in enumerate(self._handles):
                if handle.alive():
                    continue
                handle.stop()
                self._handles[index] = _WorkerHandle(self._snapshot)
                replaced += 1
            if replaced:
                self._telemetry.incr("serve.worker.respawns", replaced)
            return replaced

    def swap(self, snapshot: ServingSnapshot) -> None:
        """Atomically adopt ``snapshot`` and broadcast it to workers.

        The pool snapshot is replaced first, so any respawn from here
        on seeds the new epoch; each live worker then receives the
        snapshot once.  Workers that die during the broadcast are
        respawned — already seeded with the new snapshot.
        """
        self._snapshot = snapshot
        for handle in list(self._handles):
            try:
                handle.request(("swap", snapshot))
            except WorkerCrash:
                self._telemetry.incr("serve.worker.crashes")
                self.respawn_dead()

    def stop(self) -> None:
        for handle in self._handles:
            handle.stop()
