"""Online serving: HTTP endpoint over warm snapshot workers.

The package composes five pieces (DESIGN.md §14, §16):

* :mod:`repro.serve.snapshot` — the immutable compiled-trie +
  frozen-grammar scoring snapshot, stamped with its grammar epoch and
  publishable into a zero-copy shared-memory segment;
* :mod:`repro.serve.registry` — the multi-model registry: several
  named trained meters behind one server, routed by ``model=``;
* :mod:`repro.serve.workers`  — warm worker processes attached to the
  snapshot segment by name, supervised and hot-swappable;
* :mod:`repro.serve.batcher`  — the micro-batcher coalescing
  concurrent ``/check`` requests into one batch scoring call;
* :mod:`repro.serve.app`      — the asyncio HTTP/1.1 server
  (``repro serve``) wiring them behind ``/check``, ``/suggest``,
  ``/policy``, ``/accept``, ``/healthz`` and ``/metrics``.
"""

from repro.serve.app import ReproServer, ServeConfig
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import SnapshotRegistry
from repro.serve.snapshot import ServingSnapshot, SnapshotScorer
from repro.serve.workers import WorkerCrash, WorkerPool

__all__ = [
    "MicroBatcher",
    "ReproServer",
    "ServeConfig",
    "ServingSnapshot",
    "SnapshotRegistry",
    "SnapshotScorer",
    "WorkerCrash",
    "WorkerPool",
]
