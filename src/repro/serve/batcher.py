"""Micro-batching: coalesce concurrent ``/check`` requests.

Scoring one password costs microseconds; *dispatching* one password —
an HTTP round trip, and with worker processes a pipe round trip plus
two thread hops — costs far more.  The batcher recovers the batch
economics the scoring engine already has (``probability_many``):
requests arriving within a small window are collected into one batch
and scored with a single backend call, then fanned back out to their
waiting handlers.

The flush discipline: the first pending request arms the window; when
it expires (or immediately, with ``window=0``), up to ``max_batch``
pending requests are cut into one batch and dispatched as an
independent task, so a slow batch never blocks the next window.

``window=0`` — the default — is *self-clocking* batching: the first
arrival dispatches at once, and everything arriving while that batch
is in flight coalesces into the next one.  Batches form from
backpressure with zero added latency; under 64 concurrent clients the
mean batch settles near the concurrency level.  A positive window
adds its full duration to every request's latency and, in lockstep
traffic, opens a throughput bubble while the backend sits idle — use
one only to bound the dispatch rate itself.  With ``max_batch=1`` the
batcher degrades to strict one-request-per-call dispatch — the
unbatched comparator used by ``benchmarks/test_timing_serving.py``.

Telemetry reconciles by construction: every submitted request is
counted into ``serve.batch.requests`` and every resolved future into
``serve.batch.responses`` (equality is asserted under random
interleavings by ``tests/test_serve_batching.py``).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional, Set, Tuple

from repro import obs
from repro.obs.core import Telemetry

#: A batch scoring backend: passwords in, ``(epoch, scores)`` out.
ScoreBatch = Callable[[List[str]], Awaitable[Tuple[int, List[float]]]]


class MicroBatcher:
    """Coalesces concurrent score requests into backend batches."""

    def __init__(
        self,
        score_batch: ScoreBatch,
        window: float = 0.0,
        max_batch: int = 256,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if window < 0:
            raise ValueError(f"batch window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {max_batch}")
        self._score_batch = score_batch
        self._window = window
        self._max_batch = max_batch
        self._telemetry = telemetry if telemetry is not None else obs.get()
        self._pending: List[Tuple[str, "asyncio.Future[Tuple[int, float]]"]] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._flusher: Optional["asyncio.Task[None]"] = None
        self._dispatches: Set["asyncio.Task[None]"] = set()

    # --- introspection -------------------------------------------------

    @property
    def window(self) -> float:
        return self._window

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def pending(self) -> int:
        return len(self._pending)

    # --- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._flusher is not None:
            raise RuntimeError("batcher already started")
        self._wakeup = asyncio.Event()
        self._flusher = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Cancel the flush loop and fail anything still queued."""
        flusher = self._flusher
        if flusher is not None:
            flusher.cancel()
            try:
                await flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        for _password, future in self._pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("batcher stopped with requests queued")
                )
        self._pending.clear()
        for task in list(self._dispatches):
            try:
                await task
            except asyncio.CancelledError:
                pass

    # --- request path --------------------------------------------------

    async def submit(self, password: str) -> Tuple[int, float]:
        """Score one password; resolves with ``(epoch, probability)``."""
        telemetry = self._telemetry
        telemetry.incr("serve.batch.requests")
        if self._max_batch == 1:
            # Strict one-request-per-call mode: no coalescing at all.
            epoch, scores = await self._score_batch([password])
            telemetry.incr("serve.batch.dispatches")
            telemetry.incr("serve.batch.responses")
            telemetry.observe("serve.batch.size", 1.0)
            return epoch, scores[0]
        if self._flusher is None or self._wakeup is None:
            raise RuntimeError("batcher is not running")
        future: "asyncio.Future[Tuple[int, float]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append((password, future))
        self._wakeup.set()
        return await future

    # --- flush loop ----------------------------------------------------

    async def _run(self) -> None:
        wakeup = self._wakeup
        assert wakeup is not None
        telemetry = self._telemetry
        while True:
            await wakeup.wait()
            if self._window > 0:
                # Arm the coalescing window off the first arrival.
                await asyncio.sleep(self._window)
            items = self._pending[:self._max_batch]
            del self._pending[:len(items)]
            telemetry.observe(
                "serve.queue.depth",
                float(len(items) + len(self._pending)),
            )
            if not self._pending:
                wakeup.clear()
            if items:
                task = asyncio.create_task(self._dispatch(items))
                self._dispatches.add(task)
                task.add_done_callback(self._dispatches.discard)

    async def _dispatch(
        self,
        items: List[Tuple[str, "asyncio.Future[Tuple[int, float]]"]],
    ) -> None:
        telemetry = self._telemetry
        telemetry.incr("serve.batch.dispatches")
        telemetry.observe("serve.batch.size", float(len(items)))
        try:
            epoch, scores = await self._score_batch(
                [password for password, _future in items]
            )
        except asyncio.CancelledError:
            for _password, future in items:
                if not future.done():
                    future.cancel()
            raise
        except Exception as error:
            telemetry.incr("serve.batch.errors")
            for _password, future in items:
                if not future.done():
                    future.set_exception(
                        RuntimeError(f"batch scoring failed: {error!r}")
                    )
            return
        resolved = 0
        for (_password, future), score in zip(items, scores):
            if not future.done():
                future.set_result((epoch, score))
            resolved += 1
        telemetry.incr("serve.batch.responses", resolved)
