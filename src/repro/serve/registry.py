"""The multi-model registry: several trained meters, one server.

One ``repro serve`` process can host any number of trained models —
production next to a canary, or per-population grammars (DESIGN.md
§16).  The registry is the naming layer: an ordered mapping from model
name to meter, where the first model registered is the *default* — the
one requests without an explicit ``model=`` parameter are routed to,
and the one whose epoch/pool the top-level ``/healthz`` and
``/metrics`` fields keep reporting for backward compatibility.

The registry deliberately holds meters, not runtime state: worker
pools, shared-memory segments and micro-batchers are per-model
*server* concerns (:class:`repro.serve.app.ReproServer` builds one
runtime per registered model).  Routing is by name only, so hot
reloads (``/accept?model=...``) swap one model's snapshot without
touching its neighbours.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, Optional, Tuple

#: Legal model names: path-safe, query-safe, no whitespace.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class SnapshotRegistry:
    """Named meters behind one server; insertion order is routing order.

    The first model added is the default route.  Names are validated
    (``[A-Za-z0-9][A-Za-z0-9._-]*``) so they survive query strings and
    log lines unquoted, and duplicates are rejected instead of
    silently replaced — replacing a live model is a hot-swap
    (``/accept``), not a registration.
    """

    def __init__(self) -> None:
        self._meters: Dict[str, Any] = {}

    def add(self, name: str, meter: Any) -> "SnapshotRegistry":
        """Register ``meter`` under ``name``; returns self for chaining."""
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}: must match "
                "[A-Za-z0-9][A-Za-z0-9._-]*"
            )
        if name in self._meters:
            raise ValueError(f"duplicate model name {name!r}")
        self._meters[name] = meter
        return self

    @classmethod
    def single(cls, meter: Any, name: str = "default") -> "SnapshotRegistry":
        """A one-model registry (how a bare meter is served)."""
        return cls().add(name, meter)

    @property
    def default_name(self) -> str:
        """Name of the default (first-registered) model."""
        if not self._meters:
            raise ValueError("registry is empty")
        return next(iter(self._meters))

    def names(self) -> Tuple[str, ...]:
        """All model names, in registration (routing) order."""
        return tuple(self._meters)

    def resolve(self, name: Optional[str]) -> Tuple[str, Any]:
        """``(name, meter)`` for ``name``, or the default for ``None``."""
        if name is None:
            name = self.default_name
        meter = self._meters.get(name)
        if meter is None:
            known = ", ".join(self.names())
            raise KeyError(
                f"unknown model {name!r}; serving: {known}"
            )
        return name, meter

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._meters.items())

    def __len__(self) -> int:
        return len(self._meters)

    def __contains__(self, name: object) -> bool:
        return name in self._meters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotRegistry({', '.join(self._meters)})"
