"""KeePSM — the KeePass 2.x password quality estimator (Reichl, 2015).

Reimplemented from the published description
(`keepass.info/help/kb/pw_quality_est.html`): the estimator searches
the password for *patterns* — popular passwords (from a ranked list),
repetitions of earlier substrings, character sequences with constant
difference, and plain characters — and computes the quality as the
minimum total cost over all pattern covers (dynamic programming),
where each pattern's cost in bits reflects how easily an attacker
reproduces it:

* plain character: ``log2(|character class|)``;
* sequence of constant difference: first character's cost plus
  ``log2(length)`` for the extension;
* repetition of an earlier block: ``log2(start positions) + log2(length)``;
* ranked dictionary entry: ``log2(rank) + 1`` (cheaper for popular
  passwords), with one extra bit when matched case-insensitively.

This mirrors KeePass's min-cost static-encoder design; constants are
from the published notes, not from the (closed) C# source.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.meters.base import Meter, entropy_to_probability
from repro.meters.registry import Capability, TrainContext, register_meter

#: Character-class sizes used for plain-character costs (KeePass uses
#: the same class partition: lower, upper, digit, special, high-ANSI).
_CLASS_SIZES = {"lower": 26, "upper": 26, "digit": 10, "special": 33}


def _build_keepsm(cls: type, context: TrainContext) -> "KeePSMMeter":
    """Registry builder: provision with the stock ranked dictionary."""
    return cls(context.dictionary or None)


def _char_cost(ch: str) -> float:
    if ch.islower():
        size = _CLASS_SIZES["lower"]
    elif ch.isupper():
        size = _CLASS_SIZES["upper"]
    elif ch.isdigit():
        size = _CLASS_SIZES["digit"]
    else:
        size = _CLASS_SIZES["special"]
    return math.log2(size)


@register_meter(
    "keepsm",
    capabilities=(Capability.BATCH_SCORABLE,),
    summary="KeePass 2.x min-cost pattern-cover entropy estimator",
    builder=_build_keepsm,
)
class KeePSMMeter(Meter):
    """Pattern-aware min-cost entropy estimator.

    Args:
        ranked_dictionary: ``word -> 1-based rank`` of popular
            passwords/words; lower rank = cheaper pattern.  Accepts a
            plain iterable too (order defines rank).
        min_pattern_length: shortest repetition/sequence/dictionary
            pattern considered (default 3, as short patterns are noise).

    >>> meter = KeePSMMeter(["password", "123456"])
    >>> meter.entropy("password") < meter.entropy("p4zzw0rt")
    True
    >>> meter.entropy("aaaaaaaa") < meter.entropy("axqzpmvu")
    True
    """

    name = "KeePSM"

    def __init__(self,
                 ranked_dictionary: Optional[Iterable[str]] = None,
                 min_pattern_length: int = 3) -> None:
        if min_pattern_length < 2:
            raise ValueError("min_pattern_length must be >= 2")
        self._min_pattern_length = min_pattern_length
        self._ranks: Dict[str, int] = {}
        if ranked_dictionary is not None:
            if isinstance(ranked_dictionary, Mapping):
                items = ranked_dictionary.items()
            else:
                items = (
                    (word, rank)
                    for rank, word in enumerate(ranked_dictionary, start=1)
                )
            for word, rank in items:
                word = word.lower()
                if word not in self._ranks or rank < self._ranks[word]:
                    self._ranks[word] = rank

    # --- public API -------------------------------------------------

    def probability(self, password: str) -> float:
        return entropy_to_probability(self.entropy(password))

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring with a distinct-password memo.

        The min-cost cover is a pure (and comparatively expensive,
        O(n^2) dynamic program) function of the password, so each
        distinct password runs the DP once and repeats are dict
        lookups.  Values are exactly the per-call ones.
        """
        entropy = self.entropy
        convert = entropy_to_probability
        memo: Dict[str, float] = {}
        out: List[float] = []
        for password in passwords:
            probability = memo.get(password)
            if probability is None:
                probability = convert(entropy(password))
                memo[password] = probability
            out.append(probability)
        return out

    def entropy(self, password: str) -> float:
        """Minimum pattern-cover cost in bits (0 for the empty string)."""
        if not password:
            return 0.0
        n = len(password)
        # best[i] = minimal cost of covering password[:i].
        best = [math.inf] * (n + 1)
        best[0] = 0.0
        for start in range(n):
            if best[start] is math.inf:
                continue
            # Plain character.
            plain = best[start] + _char_cost(password[start])
            if plain < best[start + 1]:
                best[start + 1] = plain
            for end in range(start + self._min_pattern_length, n + 1):
                piece = password[start:end]
                cost = self._pattern_cost(password, start, piece)
                if cost is not None and best[start] + cost < best[end]:
                    best[end] = best[start] + cost
        return best[n]

    # --- pattern costs ------------------------------------------------

    def _pattern_cost(self, password: str, start: int,
                      piece: str) -> Optional[float]:
        costs = []
        dictionary = self._dictionary_cost(piece)
        if dictionary is not None:
            costs.append(dictionary)
        repetition = self._repetition_cost(password, start, piece)
        if repetition is not None:
            costs.append(repetition)
        sequence = self._sequence_cost(piece)
        if sequence is not None:
            costs.append(sequence)
        return min(costs) if costs else None

    def _dictionary_cost(self, piece: str) -> Optional[float]:
        rank = self._ranks.get(piece)
        if rank is not None:
            return math.log2(rank) + 1.0
        rank = self._ranks.get(piece.lower())
        if rank is not None:
            return math.log2(rank) + 2.0  # +1 bit for case variation
        return None

    def _repetition_cost(self, password: str, start: int,
                         piece: str) -> Optional[float]:
        """Cost when ``piece`` already occurred earlier in the password."""
        if start == 0:
            return None
        if piece not in password[:start + len(piece) - 1]:
            return None
        # Encode: where the earlier copy starts + how long it is.
        return math.log2(max(start, 2)) + math.log2(len(piece))

    def _sequence_cost(self, piece: str) -> Optional[float]:
        """Cost for runs like ``abcd``, ``4321`` or ``aaaa``."""
        difference = ord(piece[1]) - ord(piece[0])
        if abs(difference) > 1:
            return None
        for previous, current in zip(piece, piece[1:]):
            if ord(current) - ord(previous) != difference:
                return None
        return _char_cost(piece[0]) + math.log2(len(piece))
