"""The PCFG-based PSM (Weir et al. S&P'09; Houshmand & Aggarwal ACSAC'12).

Passwords are segmented into maximal letter (L), digit (D) and symbol
(S) runs; the *base structure* (e.g. ``L8D3`` for ``password123``) and
the content of every segment are learned from the training set by
counting.  Following Ma et al. (S&P 2014) — and the paper's Sec. IV-A —
letter-segment probabilities are learned directly from training rather
than from an external dictionary.

``P(pw) = P(structure) * prod_i P(segment_i | class, length)``

The meter doubles as a cracking model: :meth:`iter_guesses` outputs
guesses in decreasing probability (used for Table III and Fig. 10).
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.meters.base import ProbabilisticMeter
from repro.meters.registry import Capability, register_meter
from repro.metrics.enumeration import (
    deduplicate_guesses,
    descending_products,
    merge_weighted_descending,
)
from repro.util.charclasses import CharClass, Segment, segment_by_class
from repro.util.freqdist import FrequencyDistribution

#: One slot of a base structure: (character class, run length).
Slot = Tuple[CharClass, int]
#: Training entries may carry a multiplicity.
PasswordEntry = Union[str, Tuple[str, int]]


def password_slots(password: str) -> Tuple[Slot, ...]:
    """The (class, length) slots of a password.

    >>> password_slots("password123")
    ((<CharClass.LETTER: 'L'>, 8), (<CharClass.DIGIT: 'D'>, 3))
    """
    return tuple(
        (seg.char_class, len(seg.text)) for seg in segment_by_class(password)
    )


def structure_string(slots: Tuple[Slot, ...]) -> str:
    """Display form, e.g. ``L8D3``."""
    return "".join(f"{cls.value}{length}" for cls, length in slots)


@register_meter(
    "pcfg",
    capabilities=(
        Capability.TRAINABLE,
        Capability.UPDATABLE,
        Capability.BATCH_SCORABLE,
        Capability.PERSISTABLE,
    ),
    summary="Traditional PCFG meter (Weir et al.) trained by counting",
)
class PCFGMeter(ProbabilisticMeter):
    """Traditional PCFG meter with counts learned from a training set.

    >>> meter = PCFGMeter.train(["password123", "password123", "dragon1"])
    >>> meter.probability("password123") > meter.probability("dragon1")
    True
    >>> meter.probability("zzzz") == 0.0
    True
    """

    name = "PCFG"

    def __init__(self) -> None:
        self._structures: FrequencyDistribution[Tuple[Slot, ...]] = (
            FrequencyDistribution()
        )
        self._segments: Dict[Slot, FrequencyDistribution[str]] = {}

    # --- training / update ---------------------------------------------

    @classmethod
    def train(cls, training: Iterable[PasswordEntry]) -> "PCFGMeter":
        meter = cls()
        for entry in training:
            if isinstance(entry, str):
                password, count = entry, 1
            else:
                password, count = entry
            if password:
                meter.update(password, count)
        return meter

    def update(self, password: str, count: int = 1) -> None:
        """Count one password into the structure and segment tables.

        This is the online update phase of the unified lifecycle
        (:class:`repro.meters.registry.Updatable`).
        """
        if not password:
            raise ValueError("cannot observe an empty password")
        segments = segment_by_class(password)
        slots = tuple((seg.char_class, len(seg.text)) for seg in segments)
        self._structures.add(slots, count)
        for slot, segment in zip(slots, segments):
            table = self._segments.setdefault(slot, FrequencyDistribution())
            table.add(segment.text, count)

    def observe(self, password: str, count: int = 1) -> None:
        """Deprecated spelling of :meth:`update`."""
        warnings.warn(
            "PCFGMeter.observe() is deprecated; use update()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update(password, count)

    # --- measuring ---------------------------------------------------------

    def probability(self, password: str) -> float:
        if not password:
            return 0.0
        segments = segment_by_class(password)
        slots = tuple((seg.char_class, len(seg.text)) for seg in segments)
        probability = self._structures.probability(slots)
        if probability == 0.0:
            return 0.0
        for slot, segment in zip(slots, segments):
            table = self._segments.get(slot)
            if table is None:
                return 0.0
            probability *= table.probability(segment.text)
            if probability == 0.0:
                return 0.0
        return probability

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring with a per-batch distinct-password memo.

        Measuring streams are Zipf-shaped (a few passwords dominate),
        so scoring each *distinct* password once cuts most of the
        segmentation work.  Results are bit-identical to the base loop
        because :meth:`probability` is pure.
        """
        memo: Dict[str, float] = {}
        out: List[float] = []
        probability = self.probability
        for password in passwords:
            value = memo.get(password)
            if value is None:
                value = memo[password] = probability(password)
            out.append(value)
        return out

    # --- introspection -------------------------------------------------------

    @property
    def total_passwords(self) -> int:
        return self._structures.total

    def structures(self) -> List[Tuple[str, int]]:
        """(display structure, count), most common first."""
        return [
            (structure_string(slots), count)
            for slots, count in self._structures.most_common()
        ]

    def single_simple_structure_fraction(self) -> float:
        """Fraction of training mass in one-or-two-slot structures.

        The paper contrasts fuzzyPSM (>80% single ``B_m`` structures)
        with traditional PCFG (>50% ``L_m D_n`` or more complex).
        """
        if self._structures.total == 0:
            return 0.0
        simple = sum(
            count
            for slots, count in self._structures.items()
            if len(slots) == 1
        )
        return simple / self._structures.total

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of both count tables."""
        return {
            "structures": [
                [[[cls.value, length] for cls, length in slots], count]
                for slots, count in self._structures.items()
            ],
            "segments": {
                f"{cls.value}{length}": dict(table.items())
                for (cls, length), table in self._segments.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PCFGMeter":
        meter = cls()
        for raw_slots, count in data["structures"]:
            slots = tuple(
                (CharClass(value), length) for value, length in raw_slots
            )
            meter._structures.add(slots, count)
        for key, table in data["segments"].items():
            slot = (CharClass(key[0]), int(key[1:]))
            dist = meter._segments.setdefault(slot, FrequencyDistribution())
            for text, count in table.items():
                dist.add(text, count)
        return meter

    # --- cracking-model interface ----------------------------------------------

    def sample(self, rng: random.Random) -> Tuple[str, float]:
        if self._structures.total == 0:
            raise ValueError("cannot sample from an untrained meter")
        slots = _sample_freqdist(self._structures, rng)
        pieces: List[str] = []
        probability = self._structures.probability(slots)
        for slot in slots:
            table = self._segments[slot]
            text = _sample_freqdist(table, rng)
            probability *= table.probability(text)
            pieces.append(text)
        return "".join(pieces), probability

    def iter_guesses(self, limit: Optional[int] = None
                     ) -> Iterator[Tuple[str, float]]:
        """Guesses in decreasing probability (Weir's next function)."""
        total = self._structures.total
        if total == 0:
            return
        sorted_segments: Dict[Slot, List[Tuple[str, float]]] = {}

        def slot_options(slot: Slot) -> List[Tuple[str, float]]:
            if slot not in sorted_segments:
                table = self._segments[slot]
                sorted_segments[slot] = [
                    (text, count / table.total)
                    for text, count in table.most_common()
                ]
            return sorted_segments[slot]

        def structure_stream(slots: Tuple[Slot, ...]
                             ) -> Iterator[Tuple[str, float]]:
            factors = [slot_options(slot) for slot in slots]
            for values, probability in descending_products(factors):
                yield "".join(values), probability

        streams = [
            (count / total, structure_stream(slots))
            for slots, count in self._structures.most_common()
        ]
        stream = deduplicate_guesses(merge_weighted_descending(streams))
        for index, item in enumerate(stream):
            if limit is not None and index >= limit:
                return
            yield item


def _sample_freqdist(dist: FrequencyDistribution, rng: random.Random):
    target = rng.random() * dist.total
    cumulative = 0
    item = None
    for item, count in dist.items():
        cumulative += count
        if cumulative > target:
            return item
    return item
