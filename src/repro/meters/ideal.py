"""The practically ideal meter (paper Sec. II-B).

Built directly from a large sample of the target distribution: the
empirical probability ``f_pw / |DS|`` approximates the true probability
with relative standard error about ``1 / sqrt(f_pw)`` (Bonneau, S&P'12),
so for popular passwords (``f_pw >= 4``) the frequency-sorted list *is*
the benchmark meter — its order is the guess number.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.meters.base import ProbabilisticMeter
from repro.meters.registry import Capability, TrainContext, register_meter
from repro.util.freqdist import FrequencyDistribution

#: Below this frequency the empirical estimate is too noisy for the
#: ideal meter to be meaningful (paper Sec. V-D).
RELIABLE_FREQUENCY = 4


def _build_ideal(cls: type, context: TrainContext) -> "IdealMeter":
    """Registry builder: the empirical distribution of the training set."""
    counts: Dict[str, int] = {}
    for password, count in context.training:
        counts[password] = counts.get(password, 0) + count
    return cls(counts)


@register_meter(
    "ideal",
    capabilities=(Capability.BATCH_SCORABLE,),
    summary="Empirical-frequency benchmark meter (paper Sec. II-B)",
    builder=_build_ideal,
)
class IdealMeter(ProbabilisticMeter):
    """Empirical-frequency meter over a sampled password dataset.

    >>> ideal = IdealMeter(["123456", "123456", "password", "dragon"])
    >>> ideal.probability("123456")
    0.5
    >>> ideal.guess_number("123456")
    1
    >>> ideal.probability("unseen")
    0.0
    """

    name = "Ideal"

    def __init__(self, sample: Union[Iterable[str], Mapping[str, int]]) -> None:
        distribution: FrequencyDistribution[str] = FrequencyDistribution()
        if isinstance(sample, Mapping):
            for password, count in sample.items():
                distribution.add(password, count)
        else:
            distribution.update(sample)
        if distribution.total == 0:
            raise ValueError("the ideal meter needs a non-empty sample")
        self._distribution = distribution
        self._guess_numbers: Dict[str, int] = {
            password: rank
            for rank, (password, _) in enumerate(
                distribution.most_common(), start=1
            )
        }

    @property
    def distribution(self) -> FrequencyDistribution[str]:
        return self._distribution

    def probability(self, password: str) -> float:
        return self._distribution.probability(password)

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring with the count lookup and total hoisted.

        The constructor guarantees ``total > 0``, so the division is
        exactly :meth:`FrequencyDistribution.probability` with the
        per-call attribute chasing removed — results are bit-identical
        to the base loop.
        """
        count = self._distribution.count
        total = self._distribution.total
        return [count(password) / total for password in passwords]

    def frequency(self, password: str) -> int:
        return self._distribution.count(password)

    def is_reliable(self, password: str) -> bool:
        """True when the empirical estimate has acceptable error."""
        return self._distribution.count(password) >= RELIABLE_FREQUENCY

    def guess_number(self, password: str) -> Optional[int]:
        """1-based rank in the frequency-sorted list; None if unseen."""
        return self._guess_numbers.get(password)

    def top(self, k: int) -> List[Tuple[str, int]]:
        """The ``k`` most popular passwords with their counts."""
        return self._distribution.most_common(k)

    def iter_guesses(
        self, limit: Optional[int] = None
    ) -> Iterator[Tuple[str, float]]:
        total = self._distribution.total
        for index, (password, count) in enumerate(
            self._distribution.most_common()
        ):
            if limit is not None and index >= limit:
                return
            yield password, count / total
