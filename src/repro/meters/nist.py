"""The NIST SP-800-63 entropy meter (Burr et al., 2013; paper Sec. I).

The guideline's ad-hoc rules for user-chosen passwords:

* the first character contributes 4 bits;
* characters 2-8 contribute 2 bits each;
* characters 9-20 contribute 1.5 bits each;
* characters beyond 20 contribute 1 bit each;
* a 6-bit bonus for a composition rule requiring both upper-case and
  non-alphabetic characters (granted when the password contains both);
* a bonus of up to 6 bits for passing an extensive dictionary check
  (granted in full below 20 characters, zero at 20 and beyond — the
  guideline lets the bonus decline with length).

Most high-profile industry meters "perfectly capture the spirit" of
these rules (paper Sec. I), which is why NIST is the rule-based
baseline of the evaluation.
"""

from __future__ import annotations

from typing import Container, Dict, FrozenSet, Iterable, List, Optional

from repro.meters.base import Meter, entropy_to_probability
from repro.meters.registry import Capability, TrainContext, register_meter


def nist_entropy(password: str,
                 dictionary: Optional[Container[str]] = None,
                 composition_bonus: bool = True) -> float:
    """NIST SP-800-63 entropy estimate in bits.

    >>> nist_entropy("password") > nist_entropy("pass")
    True
    >>> nist_entropy("") == 0.0
    True
    """
    if not password:
        return 0.0
    bits = 4.0  # first character
    length = len(password)
    if length > 1:
        bits += 2.0 * (min(length, 8) - 1)
    if length > 8:
        bits += 1.5 * (min(length, 20) - 8)
    if length > 20:
        bits += 1.0 * (length - 20)
    if composition_bonus:
        has_upper = any(ch.isupper() for ch in password)
        has_non_alpha = any(not ch.isalpha() for ch in password)
        if has_upper and has_non_alpha:
            bits += 6.0
    if dictionary is not None and length < 20:
        if password.lower() not in dictionary:
            bits += 6.0
    return bits


def _build_nist(cls: type, context: TrainContext) -> "NISTMeter":
    """Registry builder: provision the dictionary-check word list."""
    return cls(dictionary=context.dictionary or None)


@register_meter(
    "nist",
    capabilities=(Capability.BATCH_SCORABLE,),
    summary="NIST SP-800-63 rule-based entropy meter",
    builder=_build_nist,
)
class NISTMeter(Meter):
    """SP-800-63 entropy wrapped in the common meter interface.

    Args:
        dictionary: passwords/words for the dictionary-check bonus
            (lower-cased membership test).  ``None`` disables the bonus.
        composition_bonus: model the upper+non-alphabetic bonus.

    >>> meter = NISTMeter(dictionary={"password"})
    >>> meter.entropy("password") < meter.entropy("zzzzzzzz")
    True
    """

    name = "NIST"

    def __init__(self, dictionary: Optional[Iterable[str]] = None,
                 composition_bonus: bool = True) -> None:
        self._dictionary: Optional[FrozenSet[str]] = (
            frozenset(word.lower() for word in dictionary)
            if dictionary is not None
            else None
        )
        self._composition_bonus = composition_bonus

    def probability(self, password: str) -> float:
        return entropy_to_probability(self.entropy(password))

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring with a distinct-password memo.

        NIST entropy is a pure function of the password, so each
        distinct password is computed once and repeats are dict
        lookups; attribute lookups are hoisted out of the loop.  Values
        are exactly the per-call ones (same call chain per distinct
        password), keeping the batch path never slower than the loop
        on the repetitive streams the evaluation scores.
        """
        entropy = nist_entropy
        convert = entropy_to_probability
        dictionary = self._dictionary
        composition_bonus = self._composition_bonus
        memo: Dict[str, float] = {}
        out: List[float] = []
        for password in passwords:
            probability = memo.get(password)
            if probability is None:
                probability = convert(entropy(
                    password,
                    dictionary=dictionary,
                    composition_bonus=composition_bonus,
                ))
                memo[password] = probability
            out.append(probability)
        return out

    def entropy(self, password: str) -> float:
        return nist_entropy(
            password,
            dictionary=self._dictionary,
            composition_bonus=self._composition_bonus,
        )
