"""The common meter interface (paper Sec. II-B).

A password strength meter is a function ``M: pw -> [0, 1]`` where a
*higher* value means a *weaker* password.  Probabilistic-model-based
meters (fuzzyPSM, PCFG, Markov, ideal) output genuine probabilities;
rule-based meters (zxcvbn, KeePSM, NIST) output entropies which we map
through ``2 ** -entropy`` so every meter is comparable on the same
scale.  Rank-correlation evaluation only depends on orderings, so this
monotone mapping is lossless for the paper's methodology.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Iterable, Iterator, List, Optional, Tuple


def entropy_to_probability(entropy_bits: float) -> float:
    """Map an entropy estimate (bits) to the meter scale ``[0, 1]``.

    >>> entropy_to_probability(0.0)
    1.0
    >>> entropy_to_probability(10.0)
    0.0009765625
    """
    if entropy_bits < 0:
        raise ValueError("entropy must be non-negative")
    return 2.0 ** -entropy_bits


def probability_to_entropy(probability: float) -> float:
    """Inverse of :func:`entropy_to_probability`; 0 maps to +inf."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if probability == 0.0:
        return math.inf
    return -math.log2(probability)


class Meter(abc.ABC):
    """Abstract strength meter: ``probability`` is the paper's ``M(pw)``."""

    #: Short name used in result tables and plots.
    name: str = "meter"

    @abc.abstractmethod
    def probability(self, password: str) -> float:
        """Strength value in ``[0, 1]``; higher means weaker."""

    def entropy(self, password: str) -> float:
        """Equivalent strength in bits (``-log2`` of the meter value)."""
        return probability_to_entropy(self.probability(password))

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch :meth:`probability` — the bulk-scoring entry point.

        The base implementation is a plain per-password loop, so every
        meter is batch-scorable by construction; meters with a cheaper
        vectorised path override this.  Overrides must stay
        bit-identical to the loop: the batch API is an
        execution-strategy change, never a semantics change.
        """
        return [self.probability(pw) for pw in passwords]

    def entropy_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch :meth:`entropy`, derived from :meth:`probability_many`."""
        return [
            probability_to_entropy(probability)
            for probability in self.probability_many(passwords)
        ]

    def probabilities(self, passwords: Iterable[str]) -> List[float]:
        """Vectorised convenience wrapper (alias of ``probability_many``)."""
        return self.probability_many(passwords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ProbabilisticMeter(Meter):
    """A meter whose values form a (sub-)probability distribution.

    Probabilistic meters are "essentially password cracking tools"
    (paper footnote 6): they can output guesses in decreasing order of
    probability and can be sampled, enabling exact small-horizon guess
    enumeration and Monte-Carlo guess-number estimation.
    """

    def sample(self, rng: random.Random) -> Tuple[str, float]:
        """Draw ``(password, probability)`` from the model distribution."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support sampling"
        )

    def iter_guesses(self, limit: Optional[int] = None) -> Iterator[Tuple[str, float]]:
        """Yield guesses in decreasing probability order.

        Implementations may break probability ties arbitrarily but must
        be deterministic.  ``limit`` bounds the number of guesses.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support guess enumeration"
        )
