"""The password strength meters evaluated in the paper.

Six meters, all sharing the :class:`~repro.meters.base.Meter` interface:

* :class:`~repro.core.meter.FuzzyPSM` — the paper's contribution
  (lives in :mod:`repro.core`, re-exported here for convenience);
* :class:`~repro.meters.pcfg.PCFGMeter` — PCFG-based PSM
  (Weir et al. S&P'09 / Houshmand & Aggarwal ACSAC'12, with letter
  segments learned from training per Ma et al. S&P'14);
* :class:`~repro.meters.markov.MarkovMeter` — Markov-based PSM
  (Castelluccia et al. NDSS'12) with backoff / Laplace / Good-Turing
  smoothing;
* :class:`~repro.meters.zxcvbn.ZxcvbnMeter` — reimplementation of
  Dropbox's zxcvbn;
* :class:`~repro.meters.keepsm.KeePSMMeter` — reimplementation of the
  KeePass quality estimator;
* :class:`~repro.meters.nist.NISTMeter` — NIST SP-800-63 entropy;
* :class:`~repro.meters.ideal.IdealMeter` — the practically ideal
  meter (paper Sec. II-B), the benchmark all others are scored against.
"""

from repro.meters.base import Meter, ProbabilisticMeter, entropy_to_probability
from repro.meters.registry import (
    BatchScorable,
    Capability,
    MeterSpec,
    Persistable,
    TrainContext,
    Trainable,
    Updatable,
    build_meter,
    register_meter,
)
from repro.meters.ideal import IdealMeter
from repro.meters.pcfg import PCFGMeter
from repro.meters.markov import MarkovMeter, Smoothing
from repro.meters.zxcvbn import ZxcvbnMeter
from repro.meters.keepsm import KeePSMMeter
from repro.meters.nist import NISTMeter

# FuzzyPSM itself lives in repro.core (it *is* the paper's contribution);
# import it from there or from the top-level ``repro`` package.

__all__ = [
    "Meter",
    "ProbabilisticMeter",
    "entropy_to_probability",
    "BatchScorable",
    "Capability",
    "MeterSpec",
    "Persistable",
    "TrainContext",
    "Trainable",
    "Updatable",
    "build_meter",
    "register_meter",
    "IdealMeter",
    "PCFGMeter",
    "MarkovMeter",
    "Smoothing",
    "ZxcvbnMeter",
    "KeePSMMeter",
    "NISTMeter",
]
