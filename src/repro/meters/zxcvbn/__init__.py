"""Reimplementation of zxcvbn, Dropbox's password strength estimator.

Built from the published design (Wheeler, 2012 tech-blog post and the
algorithm description): a set of *matchers* finds pattern matches —
dictionary words (straight, reversed, l33t-substituted), keyboard-
spatial walks, repeats, sequences and dates — and a dynamic program
selects the non-overlapping cover of the password with **minimum total
entropy**, filling gaps with brute-force regions.  The password's
entropy is that minimum: the most charitable view an attacker who
knows all the patterns could take.

No upstream code or data files are vendored; adjacency graphs are
derived from layout definitions and the frequency lists are compact
built-ins (extendable per instance).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.meters.base import (
    Meter,
    entropy_to_probability,
    probability_to_entropy,
)
from repro.meters.registry import Capability, register_meter
from repro.meters.zxcvbn.matching import MatchCollector, Match
from repro.meters.zxcvbn.scoring import (
    MatchSequence,
    minimum_entropy_match_sequence,
)
from repro.meters.zxcvbn.frequency_lists import DEFAULT_RANKED_DICTIONARIES
from repro.meters.zxcvbn.crack_time import StrengthReport, strength_report


@register_meter(
    "zxcvbn",
    capabilities=(Capability.BATCH_SCORABLE,),
    summary="zxcvbn minimum-entropy pattern-cover estimator",
)
class ZxcvbnMeter(Meter):
    """zxcvbn wrapped in the common meter interface.

    Args:
        extra_dictionaries: ``name -> ordered password/word list`` merged
            with the built-in lists (order defines rank).  The paper's
            experiments feed leaked training passwords through this.

    >>> meter = ZxcvbnMeter()
    >>> meter.entropy("password") < meter.entropy("gbwkfq7c")
    True
    >>> meter.entropy("correcthorse") < meter.entropy("c0rRecth0rs!e7")
    True
    """

    name = "Zxcvbn"

    def __init__(self, extra_dictionaries: Optional[
            Dict[str, Sequence[str]]] = None) -> None:
        ranked: Dict[str, Dict[str, int]] = {
            name: dict(table)
            for name, table in DEFAULT_RANKED_DICTIONARIES.items()
        }
        if extra_dictionaries:
            for name, words in extra_dictionaries.items():
                table = ranked.setdefault(name, {})
                for rank, word in enumerate(words, start=len(table) + 1):
                    table.setdefault(word.lower(), rank)
        self._collector = MatchCollector(ranked)

    def matches(self, password: str) -> List[Match]:
        """All pattern matches found in the password (for inspection)."""
        return self._collector.all_matches(password)

    def entropy(self, password: str) -> float:
        if not password:
            return 0.0
        result = minimum_entropy_match_sequence(
            password, self._collector.all_matches(password)
        )
        return result.entropy

    def match_sequence(self, password: str) -> MatchSequence:
        """The minimum-entropy cover (list of matches incl. bruteforce)."""
        return minimum_entropy_match_sequence(
            password, self._collector.all_matches(password)
        )

    def probability(self, password: str) -> float:
        return entropy_to_probability(self.entropy(password))

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring, computing each distinct password once.

        Scoring streams repeat passwords heavily (a leaked corpus is a
        frequency distribution) and ``probability`` is a pure function
        of the password, so a per-batch memo is bit-identical to the
        base-class loop while skipping the repeated matcher work.  The
        remainder of the batch path is vectorised too: the matcher and
        dynamic program run through bound locals instead of repeated
        attribute/method dispatch per entry.
        """
        memo: Dict[str, float] = {}
        lookup = memo.get
        collect = self._collector.all_matches
        out: List[float] = []
        append = out.append
        for password in passwords:
            value = lookup(password)
            if value is None:
                if password:
                    entropy = minimum_entropy_match_sequence(
                        password, collect(password)
                    ).entropy
                else:
                    entropy = 0.0
                value = entropy_to_probability(entropy)
                memo[password] = value
            append(value)
        return out

    def entropy_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch :meth:`entropy` with the same distinct-password memo.

        Bit-identical to the base-class derivation (which round-trips
        every score through ``probability_many``): the memoised value
        is the probability, converted back exactly like the base loop.
        """
        memo: Dict[str, float] = {}
        lookup = memo.get
        out: List[float] = []
        append = out.append
        for password in passwords:
            value = lookup(password)
            if value is None:
                value = probability_to_entropy(self.probability(password))
                memo[password] = value
            append(value)
        return out

    def report(self, password: str) -> StrengthReport:
        """The user-facing bundle: entropy, crack time, 0-4 score."""
        return strength_report(password, self.entropy(password))

    def score(self, password: str) -> int:
        """zxcvbn's 0-4 score (what Dropbox's signup bar shows)."""
        return self.report(password).score


__all__ = [
    "ZxcvbnMeter",
    "Match",
    "MatchCollector",
    "StrengthReport",
    "strength_report",
]
