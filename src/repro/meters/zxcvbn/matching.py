"""zxcvbn pattern matchers.

Each matcher scans the password and emits :class:`Match` objects with
inclusive start/end offsets ``i..j``.  The scorer later picks the
minimum-entropy non-overlapping cover.  Matchers implemented (the 2012
algorithm): dictionary, reverse-dictionary, l33t-dictionary, keyboard-
spatial, repeat, sequence and date.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.meters.zxcvbn.adjacency import AdjacencyGraph, default_graphs

#: zxcvbn's l33t substitution table: letter -> possible substitutes.
L33T_TABLE: Dict[str, Sequence[str]] = {
    "a": ("4", "@"),
    "b": ("8",),
    "c": ("(", "{", "[", "<"),
    "e": ("3",),
    "g": ("6", "9"),
    "i": ("1", "!", "|"),
    "l": ("1", "|", "7"),
    "o": ("0",),
    "s": ("$", "5"),
    "t": ("+", "7"),
    "x": ("%",),
    "z": ("2",),
}

#: The inverse table, substitute -> letters it can stand for, with the
#: letters in ``L33T_TABLE`` order.  Precomputed once at import: the
#: l33t matcher consults it per password, and rebuilding the inversion
#: per call was measurable across a large scoring batch.
L33T_BY_SUBSTITUTE: Dict[str, Tuple[str, ...]] = {}
for _letter, _substitutes in L33T_TABLE.items():
    for _substitute in _substitutes:
        L33T_BY_SUBSTITUTE.setdefault(_substitute, ())
        L33T_BY_SUBSTITUTE[_substitute] += (_letter,)
del _letter, _substitutes, _substitute

#: Every character that can be a l33t substitute — the fast "no leet
#: here" test for the common all-letters password.
_ALL_SUBSTITUTES = frozenset(L33T_BY_SUBSTITUTE)

#: Sequence spaces for the sequence matcher.
SEQUENCES = {
    "lower": "abcdefghijklmnopqrstuvwxyz",
    "upper": "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    "digits": "0123456789",
}


@dataclass
class Match:
    """A pattern match over ``password[i..j]`` (inclusive)."""

    pattern: str
    i: int
    j: int
    token: str
    # dictionary / l33t fields
    matched_word: Optional[str] = None
    rank: Optional[int] = None
    dictionary_name: Optional[str] = None
    reversed: bool = False
    l33t: bool = False
    substitutions: Dict[str, str] = field(default_factory=dict)
    # spatial fields
    graph: Optional[str] = None
    turns: int = 0
    shifted_count: int = 0
    # sequence fields
    sequence_name: Optional[str] = None
    ascending: bool = True
    # date fields
    year: Optional[int] = None
    separator: str = ""
    # filled by the scorer
    entropy: Optional[float] = None

    @property
    def length(self) -> int:
        return self.j - self.i + 1


class MatchCollector:
    """Runs every matcher and aggregates the matches.

    Args:
        ranked_dictionaries: ``name -> (word -> 1-based rank)``.
        graphs: keyboard adjacency graphs (defaults to qwerty+keypad).
    """

    def __init__(self, ranked_dictionaries: Dict[str, Dict[str, int]],
                 graphs: Optional[Dict[str, AdjacencyGraph]] = None,
                 max_l33t_variants: int = 64) -> None:
        self._dictionaries = ranked_dictionaries
        self._graphs = graphs if graphs is not None else default_graphs()
        self._max_l33t_variants = max_l33t_variants
        # Word-length bounds, compiled once and shared by every lookup
        # in the batch: a substring longer than a dictionary's longest
        # word (or shorter than its shortest) cannot match, so the
        # O(n^2) substring scan both caps its inner loop at the global
        # maximum and skips whole dictionaries per piece length.
        # Dictionaries are treated as fixed from here on.
        self._tables: List[Tuple[str, Dict[str, int], int, int]] = []
        for name, table in ranked_dictionaries.items():
            if not table:
                continue
            lengths = [len(word) for word in table]
            self._tables.append(
                (name, table, min(lengths), max(lengths))
            )
        self._max_word_length = max(
            (longest for _, _, _, longest in self._tables), default=0
        )

    def all_matches(self, password: str) -> List[Match]:
        matches: List[Match] = []
        matches.extend(self.dictionary_match(password))
        matches.extend(self.reverse_dictionary_match(password))
        matches.extend(self.l33t_match(password))
        matches.extend(self.spatial_match(password))
        matches.extend(self.repeat_match(password))
        matches.extend(self.sequence_match(password))
        matches.extend(self.date_match(password))
        matches.sort(key=lambda m: (m.i, m.j, m.pattern))
        return matches

    # --- dictionary ---------------------------------------------------

    def dictionary_match(self, password: str,
                         lowered: Optional[str] = None) -> List[Match]:
        lowered = lowered if lowered is not None else password.lower()
        matches = []
        n = len(password)
        tables = self._tables
        longest = self._max_word_length
        for i in range(n):
            for j in range(i, min(n, i + longest)):
                piece = lowered[i:j + 1]
                piece_length = j - i + 1
                for name, table, shortest, length_cap in tables:
                    if piece_length < shortest or piece_length > length_cap:
                        continue
                    rank = table.get(piece)
                    if rank is not None:
                        matches.append(
                            Match(
                                pattern="dictionary",
                                i=i, j=j,
                                token=password[i:j + 1],
                                matched_word=piece,
                                rank=rank,
                                dictionary_name=name,
                            )
                        )
        return matches

    def reverse_dictionary_match(self, password: str) -> List[Match]:
        reversed_password = password[::-1]
        matches = []
        n = len(password)
        for match in self.dictionary_match(reversed_password):
            if match.token.lower() == match.token.lower()[::-1]:
                continue  # palindromes already found forwards
            i = n - 1 - match.j
            j = n - 1 - match.i
            matches.append(
                Match(
                    pattern="dictionary",
                    i=i, j=j,
                    token=password[i:j + 1],
                    matched_word=match.matched_word,
                    rank=match.rank,
                    dictionary_name=match.dictionary_name,
                    reversed=True,
                )
            )
        return matches

    # --- l33t -----------------------------------------------------------

    def _relevant_substitutions(self, password: str) -> Dict[str, List[str]]:
        """letter -> substitutes of it that appear in the password."""
        present = set(password) & _ALL_SUBSTITUTES
        if not present:
            # The common case — no substitute characters at all —
            # short-circuits before touching the per-letter table.
            return {}
        table: Dict[str, List[str]] = {}
        for letter, substitutes in L33T_TABLE.items():
            found = [sub for sub in substitutes if sub in present]
            if found:
                table[letter] = found
        return table

    def _substitution_assignments(self, relevant: Dict[str, List[str]]
                                  ) -> Iterable[Dict[str, str]]:
        """Enumerate sub->letter assignments (each sub maps to one letter)."""
        # Invert: substitute -> candidate letters.
        by_sub: Dict[str, List[str]] = {}
        for letter, subs in relevant.items():
            for sub in subs:
                by_sub.setdefault(sub, []).append(letter)
        subs = sorted(by_sub)
        pools = [by_sub[sub] for sub in subs]
        count = 0
        for assignment in itertools.product(*pools):
            if count >= self._max_l33t_variants:
                return
            count += 1
            yield dict(zip(subs, assignment))

    def l33t_match(self, password: str) -> List[Match]:
        matches = []
        relevant = self._relevant_substitutions(password.lower())
        if not relevant:
            return matches
        for assignment in self._substitution_assignments(relevant):
            unleeted = "".join(
                assignment.get(ch, ch) for ch in password.lower()
            )
            if unleeted == password.lower():
                continue
            for match in self.dictionary_match(password, lowered=unleeted):
                token = password[match.i:match.j + 1]
                used = {
                    sub: letter
                    for sub, letter in assignment.items()
                    if sub in token.lower()
                }
                if not used:
                    continue  # no substitution inside this token
                matches.append(
                    Match(
                        pattern="dictionary",
                        i=match.i, j=match.j,
                        token=token,
                        matched_word=match.matched_word,
                        rank=match.rank,
                        dictionary_name=match.dictionary_name,
                        l33t=True,
                        substitutions=used,
                    )
                )
        # Deduplicate identical (i, j, word, subs) combinations.
        unique = {}
        for match in matches:
            key = (match.i, match.j, match.matched_word,
                   tuple(sorted(match.substitutions.items())))
            if key not in unique or (match.rank or 0) < (unique[key].rank or 0):
                unique[key] = match
        return list(unique.values())

    # --- spatial -----------------------------------------------------------

    def spatial_match(self, password: str) -> List[Match]:
        matches = []
        for graph in self._graphs.values():
            matches.extend(self._spatial_match_graph(password, graph))
        return matches

    def _spatial_match_graph(self, password: str,
                             graph: AdjacencyGraph) -> List[Match]:
        matches = []
        i = 0
        n = len(password)
        while i < n - 1:
            j = i + 1
            last_direction: Optional[int] = None
            turns = 0
            shifted = 1 if graph.is_shifted(password[i]) else 0
            while j < n:
                direction = graph.adjacent(password[j - 1], password[j])
                if direction is None:
                    break
                if direction != last_direction:
                    turns += 1
                    last_direction = direction
                if graph.is_shifted(password[j]):
                    shifted += 1
                j += 1
            if j - i >= 3:
                matches.append(
                    Match(
                        pattern="spatial",
                        i=i, j=j - 1,
                        token=password[i:j],
                        graph=graph.name,
                        turns=turns,
                        shifted_count=shifted,
                    )
                )
                i = j
            else:
                i += 1
        return matches

    # --- repeat --------------------------------------------------------------

    def repeat_match(self, password: str) -> List[Match]:
        matches = []
        for match in re.finditer(r"(.)\1{2,}", password):
            matches.append(
                Match(
                    pattern="repeat",
                    i=match.start(), j=match.end() - 1,
                    token=match.group(0),
                )
            )
        return matches

    # --- sequence ---------------------------------------------------------------

    def sequence_match(self, password: str) -> List[Match]:
        matches = []
        n = len(password)
        i = 0
        while i < n - 2:
            matched = False
            for name, space in SEQUENCES.items():
                start = space.find(password[i])
                if start == -1:
                    continue
                for direction in (1, -1):
                    j = i
                    position = start
                    while (
                        j + 1 < n
                        and 0 <= position + direction < len(space)
                        and password[j + 1] == space[position + direction]
                    ):
                        j += 1
                        position += direction
                    if j - i >= 2:
                        matches.append(
                            Match(
                                pattern="sequence",
                                i=i, j=j,
                                token=password[i:j + 1],
                                sequence_name=name,
                                ascending=direction == 1,
                            )
                        )
                        i = j
                        matched = True
                        break
                if matched:
                    break
            i += 1
        return matches

    # --- date -------------------------------------------------------------------

    _DATE_NO_SEPARATOR = re.compile(r"\d{4,8}")
    _DATE_WITH_SEPARATOR = re.compile(
        r"(\d{1,4})([\s/\\_.-])(\d{1,2})\2(\d{1,4})"
    )

    def date_match(self, password: str) -> List[Match]:
        matches = []
        for match in self._DATE_NO_SEPARATOR.finditer(password):
            token = match.group(0)
            date = _parse_date_digits(token)
            if date is not None:
                matches.append(
                    Match(
                        pattern="date",
                        i=match.start(), j=match.end() - 1,
                        token=token,
                        year=date,
                    )
                )
        for match in self._DATE_WITH_SEPARATOR.finditer(password):
            first, separator, middle, last = match.groups()
            date = _parse_date_parts(first, middle, last)
            if date is not None:
                matches.append(
                    Match(
                        pattern="date",
                        i=match.start(), j=match.end() - 1,
                        token=match.group(0),
                        year=date,
                        separator=separator,
                    )
                )
        return matches


def _valid_day_month(day: int, month: int) -> bool:
    if 1 <= month <= 12 and 1 <= day <= 31:
        return True
    return False


def _valid_year(year: int) -> bool:
    return 1900 <= year <= 2029 or 0 <= year <= 99


def _normalise_year(year: int) -> int:
    if year < 100:
        return 1900 + year if year > 29 else 2000 + year
    return year


def _parse_date_digits(token: str) -> Optional[int]:
    """Try to read a separator-free digit run as day-month-year."""
    length = len(token)
    candidates = []
    if length == 4:  # mdyy / ddyy are too ambiguous; treat as yyyy
        year = int(token)
        if 1900 <= year <= 2029:
            candidates.append(year)
    elif length == 6:  # ddmmyy / mmddyy / yymmdd
        splits = (
            (token[:2], token[2:4], token[4:]),
            (token[2:4], token[:2], token[4:]),
            (token[4:], token[2:4], token[:2]),
        )
        for day, month, year in splits:
            if _valid_day_month(int(day), int(month)) and _valid_year(int(year)):
                candidates.append(_normalise_year(int(year)))
    elif length == 8:  # ddmmyyyy / mmddyyyy / yyyymmdd
        splits = (
            (token[:2], token[2:4], token[4:]),
            (token[2:4], token[:2], token[4:]),
            (token[6:], token[4:6], token[:4]),
        )
        for day, month, year in splits:
            if (
                _valid_day_month(int(day), int(month))
                and 1900 <= int(year) <= 2029
            ):
                candidates.append(int(year))
    return min(candidates) if candidates else None


def _parse_date_parts(first: str, middle: str, last: str) -> Optional[int]:
    """Read a separated date like 13/1/1984 or 1984-1-13."""
    candidates = []
    for day, month, year in (
        (first, middle, last),
        (middle, first, last),
        (last, middle, first),
    ):
        try:
            day_i, month_i, year_i = int(day), int(month), int(year)
        except ValueError:  # pragma: no cover - regex guarantees digits
            continue
        if _valid_day_month(day_i, month_i) and _valid_year(year_i):
            candidates.append(_normalise_year(year_i))
    return min(candidates) if candidates else None
