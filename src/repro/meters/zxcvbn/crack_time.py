"""zxcvbn's crack-time estimation and 0-4 score (Wheeler, 2012).

The entropy computed by the matcher/scorer is translated into
attack-seconds and then into the 0-4 score real deployments (Dropbox's
signup form) display.  Constants follow the published 2012 design:

* an attacker guesses ``2^(entropy - 1)`` times on average (half the
  search space);
* the reference offline attack rate is 10^4 guesses/second — ten
  machines at a thousand guesses each, the blog post's "reasonable
  worst case" for a slow hash;
* score thresholds are the crack-time decades the UI colours map to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Reference single-account guessing rate (guesses/second).
OFFLINE_GUESSES_PER_SECOND = 10_000.0

_MINUTE = 60.0
_HOUR = 60 * _MINUTE
_DAY = 24 * _HOUR
_MONTH = 31 * _DAY
_YEAR = 365.2425 * _DAY
_CENTURY = 100 * _YEAR

#: (upper bound in seconds, display template); scanned in order.
_DISPLAY_BANDS: List[Tuple[float, str]] = [
    (_MINUTE, "instant"),
    (_HOUR, "{} minutes"),
    (_DAY, "{} hours"),
    (_MONTH, "{} days"),
    (_YEAR, "{} months"),
    (_CENTURY, "{} years"),
]

#: Score thresholds in crack-seconds (zxcvbn's UI bands).
_SCORE_THRESHOLDS = (
    10 ** 2,    # score 0 -> 1: cracked within ~two minutes
    10 ** 4,    # 1 -> 2: within ~three hours
    10 ** 6,    # 2 -> 3: within ~twelve days
    10 ** 8,    # 3 -> 4: within ~three years
)


def entropy_to_crack_seconds(
    entropy_bits: float,
    guesses_per_second: float = OFFLINE_GUESSES_PER_SECOND,
) -> float:
    """Average seconds to crack at the given guessing rate.

    >>> entropy_to_crack_seconds(1.0, guesses_per_second=1.0)
    1.0
    """
    if entropy_bits < 0:
        raise ValueError("entropy must be non-negative")
    if guesses_per_second <= 0:
        raise ValueError("guesses_per_second must be positive")
    return 0.5 * (2.0 ** entropy_bits) / guesses_per_second


def crack_time_score(seconds: float) -> int:
    """zxcvbn's 0-4 score from the crack time.

    >>> crack_time_score(1.0)
    0
    >>> crack_time_score(10 ** 9)
    4
    """
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    score = 0
    for threshold in _SCORE_THRESHOLDS:
        if seconds >= threshold:
            score += 1
    return score


def display_crack_time(seconds: float) -> str:
    """Human-readable crack time, zxcvbn-style.

    >>> display_crack_time(30.0)
    'instant'
    >>> display_crack_time(3 * 3600.0)
    '3 hours'
    >>> display_crack_time(10.0 ** 12)
    'centuries'
    """
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    divisors = [1.0, _MINUTE, _HOUR, _DAY, _MONTH, _YEAR]
    for (upper, template), divisor in zip(_DISPLAY_BANDS, divisors):
        if seconds < upper:
            if template == "instant":
                return template
            return template.format(max(1, round(seconds / divisor)))
    return "centuries"


@dataclass(frozen=True)
class StrengthReport:
    """The full user-facing output of a zxcvbn measurement."""

    password: str
    entropy_bits: float
    crack_seconds: float
    crack_time_display: str
    score: int


def strength_report(password: str, entropy_bits: float,
                    guesses_per_second: float = OFFLINE_GUESSES_PER_SECOND
                    ) -> StrengthReport:
    """Bundle entropy into the report zxcvbn's UI consumes."""
    seconds = entropy_to_crack_seconds(entropy_bits, guesses_per_second)
    return StrengthReport(
        password=password,
        entropy_bits=entropy_bits,
        crack_seconds=seconds,
        crack_time_display=display_crack_time(seconds),
        score=crack_time_score(seconds),
    )
