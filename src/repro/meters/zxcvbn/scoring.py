"""zxcvbn entropy scoring and minimum-entropy match-sequence search.

Per-match entropies follow the 2012 algorithm; the password entropy is
the minimum, over non-overlapping match covers, of the sum of match
entropies, with gaps charged at brute-force cost (``log2(charspace)``
per character, charspace derived from the character classes present in
the password).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.meters.zxcvbn.matching import Match, SEQUENCES

#: Character-class cardinalities for brute-force charspace.
_CLASS_CARDINALITIES = {"lower": 26, "upper": 26, "digits": 10, "symbols": 33}


def binom(n: int, k: int) -> int:
    """Binomial coefficient (math.comb shim kept explicit for clarity)."""
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def bruteforce_charspace(password: str) -> int:
    """Sum of cardinalities of character classes present.

    >>> bruteforce_charspace("abc")
    26
    >>> bruteforce_charspace("aB1!")
    95
    """
    space = 0
    if any(ch.islower() for ch in password):
        space += _CLASS_CARDINALITIES["lower"]
    if any(ch.isupper() for ch in password):
        space += _CLASS_CARDINALITIES["upper"]
    if any(ch.isdigit() for ch in password):
        space += _CLASS_CARDINALITIES["digits"]
    if any(not ch.isalnum() for ch in password):
        space += _CLASS_CARDINALITIES["symbols"]
    return max(space, 1)


# --- per-match entropy -----------------------------------------------------


def uppercase_entropy(token: str) -> float:
    """Extra bits for capitalization variants of a dictionary word."""
    if token.islower() or not any(ch.isalpha() for ch in token):
        return 0.0
    # Common patterns cost one bit: Firstcap, lastcap, ALLCAPS.
    if (
        token[:1].isupper() and token[1:].islower()
        or token[:-1].islower() and token[-1:].isupper()
        or token.isupper()
    ):
        return 1.0
    uppers = sum(1 for ch in token if ch.isupper())
    lowers = sum(1 for ch in token if ch.islower())
    possibilities = sum(
        binom(uppers + lowers, i) for i in range(0, min(uppers, lowers) + 1)
    )
    return math.log2(max(possibilities, 2))


def l33t_entropy(match: Match) -> float:
    """Extra bits for the l33t substitutions used by a match."""
    if not match.l33t:
        return 0.0
    possibilities = 0
    token = match.token.lower()
    for substitute, letter in match.substitutions.items():
        subbed = token.count(substitute)
        unsubbed = token.count(letter)
        possibilities += sum(
            binom(subbed + unsubbed, i)
            for i in range(1, min(subbed, unsubbed) + 1)
        ) or subbed  # all occurrences substituted: still >= 1 variant
    return max(math.log2(possibilities) if possibilities else 0.0, 1.0)


def dictionary_entropy(match: Match) -> float:
    assert match.rank is not None
    entropy = math.log2(match.rank)
    entropy += uppercase_entropy(match.token)
    entropy += l33t_entropy(match)
    if match.reversed:
        entropy += 1.0
    return entropy


def spatial_entropy(match: Match, starting_positions: float = 47.0,
                    average_degree: float = 4.6) -> float:
    """Keyboard-walk entropy from length, turns and shifts."""
    if match.graph == "keypad":
        starting_positions, average_degree = 15.0, 5.1
    length = match.length
    turns = max(match.turns, 1)
    possibilities = 0.0
    for i in range(2, length + 1):
        for j in range(1, min(turns, i - 1) + 1):
            possibilities += (
                binom(i - 1, j - 1) * starting_positions * average_degree ** j
            )
    entropy = math.log2(max(possibilities, 2))
    if match.shifted_count:
        shifted = match.shifted_count
        unshifted = length - shifted
        if unshifted == 0:
            entropy += 1.0
        else:
            variants = sum(
                binom(shifted + unshifted, i)
                for i in range(1, min(shifted, unshifted) + 1)
            )
            entropy += math.log2(max(variants, 2))
    return entropy


def repeat_entropy(match: Match) -> float:
    return math.log2(bruteforce_charspace(match.token[0]) * match.length)


def sequence_entropy(match: Match) -> float:
    first = match.token[0]
    if first in ("a", "1"):
        base = 1.0
    elif first.isdigit():
        base = math.log2(10)
    elif first.islower():
        base = math.log2(26)
    else:
        base = math.log2(26) + 1.0
    if not match.ascending:
        base += 1.0
    return base + math.log2(match.length)


def date_entropy(match: Match) -> float:
    assert match.year is not None
    if 1900 <= match.year <= 2029:
        year_space = 130
    else:
        year_space = 10000
    entropy = math.log2(31 * 12 * year_space)
    if match.separator:
        entropy += 2.0
    return entropy


def match_entropy(match: Match) -> float:
    """Dispatch to the pattern-specific entropy formula (cached)."""
    if match.entropy is not None:
        return match.entropy
    if match.pattern == "dictionary":
        entropy = dictionary_entropy(match)
    elif match.pattern == "spatial":
        entropy = spatial_entropy(match)
    elif match.pattern == "repeat":
        entropy = repeat_entropy(match)
    elif match.pattern == "sequence":
        entropy = sequence_entropy(match)
    elif match.pattern == "date":
        entropy = date_entropy(match)
    else:  # pragma: no cover - unknown patterns never reach scoring
        raise ValueError(f"unknown pattern {match.pattern!r}")
    match.entropy = entropy
    return entropy


# --- minimum entropy cover ----------------------------------------------------


@dataclass
class MatchSequence:
    """Result of the DP: total entropy and the chosen cover."""

    password: str
    entropy: float
    sequence: List[Match]


def minimum_entropy_match_sequence(password: str,
                                   matches: Sequence[Match]) -> MatchSequence:
    """The 2012 zxcvbn DP over match end positions.

    ``up_to[k]`` is the minimal entropy covering ``password[:k+1]``;
    each position can be covered by one brute-force character or by any
    match ending at ``k``.  Backtracking recovers the cover, inserting
    brute-force filler matches for the gaps.
    """
    n = len(password)
    if n == 0:
        return MatchSequence(password, 0.0, [])
    bruteforce_bits = math.log2(bruteforce_charspace(password))
    up_to = [0.0] * n
    backpointers: List[Optional[Match]] = [None] * n
    for k in range(n):
        up_to[k] = (up_to[k - 1] if k > 0 else 0.0) + bruteforce_bits
        backpointers[k] = None
        for match in matches:
            if match.j != k:
                continue
            candidate = (
                (up_to[match.i - 1] if match.i > 0 else 0.0)
                + match_entropy(match)
            )
            if candidate < up_to[k]:
                up_to[k] = candidate
                backpointers[k] = match

    # Backtrack.
    sequence: List[Match] = []
    k = n - 1
    while k >= 0:
        match = backpointers[k]
        if match is not None:
            sequence.append(match)
            k = match.i - 1
        else:
            k -= 1
    sequence.reverse()

    # Insert brute-force fillers for uncovered gaps.
    full: List[Match] = []
    cursor = 0
    for match in sequence:
        if match.i > cursor:
            full.append(_bruteforce_match(password, cursor, match.i - 1,
                                          bruteforce_bits))
        full.append(match)
        cursor = match.j + 1
    if cursor < n:
        full.append(_bruteforce_match(password, cursor, n - 1,
                                      bruteforce_bits))
    return MatchSequence(password, up_to[n - 1], full)


def _bruteforce_match(password: str, i: int, j: int,
                      bits_per_char: float) -> Match:
    match = Match(pattern="bruteforce", i=i, j=j, token=password[i:j + 1])
    match.entropy = bits_per_char * (j - i + 1)
    return match
