"""Keyboard adjacency graphs for the spatial matcher.

Graphs are derived from layout definitions rather than vendored data
files.  Each key token is ``"<unshifted><shifted>"`` (e.g. ``"2@"``).
Key centres get geometric coordinates — slanted keyboards shift every
row half a key to the right, like a physical keyboard — and two keys
are adjacent when their centres are one key apart.  A slanted key thus
has up to six neighbours, an aligned keypad key up to eight.

The spatial scorer needs, per graph, the number of starting positions
(keys) and the average out-degree; both are precomputed here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: QWERTY rows; each row is shifted +0.5 key relative to the row above.
QWERTY_ROWS: Sequence[Sequence[str]] = (
    ("`~", "1!", "2@", "3#", "4$", "5%", "6^", "7&", "8*", "9(", "0)", "-_", "=+"),
    ("qQ", "wW", "eE", "rR", "tT", "yY", "uU", "iI", "oO", "pP", "[{", "]}", "\\|"),
    ("aA", "sS", "dD", "fF", "gG", "hH", "jJ", "kK", "lL", ";:", "'\""),
    ("zZ", "xX", "cC", "vV", "bB", "nN", "mM", ",<", ".>", "/?"),
)

#: Numeric keypad; aligned grid with explicit column offsets.
KEYPAD_ROWS: Sequence[Tuple[float, Sequence[str]]] = (
    (1.0, ("/", "*", "-")),
    (0.0, ("7", "8", "9", "+")),
    (0.0, ("4", "5", "6")),
    (0.0, ("1", "2", "3")),
    (1.0, ("0", ".")),
)


class AdjacencyGraph:
    """Maps each character to the neighbouring key tokens.

    Neighbour lists use fixed direction slots (sorted by relative
    position), so the spatial matcher can detect *turns* by comparing
    direction indices between successive steps.
    """

    def __init__(self, name: str,
                 keys_with_coordinates: Sequence[Tuple[str, float, float]],
                 slanted: bool) -> None:
        self.name = name
        self.slanted = slanted
        positions = {
            (x, y): token for token, x, y in keys_with_coordinates
        }
        if slanted:
            offsets: Tuple[Tuple[float, float], ...] = (
                (-1.0, 0.0), (1.0, 0.0),
                (-0.5, -1.0), (0.5, -1.0),
                (-0.5, 1.0), (0.5, 1.0),
            )
        else:
            offsets = (
                (-1.0, 0.0), (1.0, 0.0), (0.0, -1.0), (0.0, 1.0),
                (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0),
            )
        self._adjacency: Dict[str, List[Optional[str]]] = {}
        self._shifted: Dict[str, bool] = {}
        for (x, y), token in positions.items():
            neighbours = [
                positions.get((x + dx, y + dy)) for dx, dy in offsets
            ]
            for index, ch in enumerate(token):
                self._adjacency[ch] = neighbours
                self._shifted[ch] = index == 1
        degrees = [
            sum(1 for n in neighbours if n is not None)
            for neighbours in (
                self._adjacency[token[0]] for token in positions.values()
            )
        ]
        #: average out-degree over keys (zxcvbn's ``d``).
        self.average_degree = sum(degrees) / len(degrees) if degrees else 0.0
        #: number of keys (zxcvbn's ``s``, starting positions).
        self.starting_positions = len(positions)

    # --- queries ---------------------------------------------------------

    def __contains__(self, ch: object) -> bool:
        return ch in self._adjacency

    def neighbors(self, ch: str) -> List[Optional[str]]:
        return self._adjacency.get(ch, [])

    def adjacent(self, a: str, b: str) -> Optional[int]:
        """Direction slot if the key of ``b`` neighbours the key of ``a``."""
        for direction, token in enumerate(self.neighbors(a)):
            if token is not None and b in token:
                return direction
        return None

    def is_shifted(self, ch: str) -> bool:
        """True when ``ch`` is the shifted engraving of its key."""
        return self._shifted.get(ch, False)


def _slanted_coordinates(rows: Sequence[Sequence[str]]
                         ) -> List[Tuple[str, float, float]]:
    keys = []
    for y, row in enumerate(rows):
        for column, token in enumerate(row):
            keys.append((token, column + 0.5 * y, float(y)))
    return keys


def _aligned_coordinates(rows: Sequence[Tuple[float, Sequence[str]]]
                         ) -> List[Tuple[str, float, float]]:
    keys = []
    for y, (offset, row) in enumerate(rows):
        for column, token in enumerate(row):
            keys.append((token, offset + column, float(y)))
    return keys


def default_graphs() -> Dict[str, AdjacencyGraph]:
    """The standard graph set: QWERTY and the numeric keypad."""
    return {
        "qwerty": AdjacencyGraph(
            "qwerty", _slanted_coordinates(QWERTY_ROWS), slanted=True
        ),
        "keypad": AdjacencyGraph(
            "keypad", _aligned_coordinates(KEYPAD_ROWS), slanted=False
        ),
    }
