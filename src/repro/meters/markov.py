"""The Markov-based PSM (Castelluccia et al. NDSS'12; Ma et al. S&P'14).

A character-level Markov chain of configurable order assigns

``P(pw) = prod_i P(c_i | c_{i-n} .. c_{i-1}) * P(END | last context)``

with start-padding and an explicit END symbol, which makes the model a
proper distribution over variable-length strings (Ma et al.'s
end-symbol normalisation).  Three smoothing schemes are provided:

* ``NONE`` — maximum likelihood (unseen transitions give 0);
* ``LAPLACE`` — additive smoothing over the 95-character alphabet;
* ``BACKOFF`` — absolute discounting with recursive back-off to
  shorter contexts (the variant the paper uses, after Ma et al.);
* ``GOOD_TURING`` — Good-Turing adjusted counts with order-pooled
  counts-of-counts (a documented simplification of SGT; its outputs
  are not exactly normalised and it is not sampleable).

The meter is also a cracking model: :meth:`iter_guesses` enumerates
guesses in probability bands (OMEN-style), sorted within each band, so
large guess horizons need only O(depth) memory.
"""

from __future__ import annotations

import enum
import math
import random
import string
import warnings
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.meters.base import ProbabilisticMeter
from repro.meters.registry import Capability, TrainContext, register_meter
from repro.util.charclasses import PRINTABLE_ASCII
from repro.util.freqdist import FrequencyDistribution

START = "\x02"
END = "\x03"

PasswordEntry = Union[str, Tuple[str, int]]


class Smoothing(enum.Enum):
    NONE = "none"
    LAPLACE = "laplace"
    BACKOFF = "backoff"
    GOOD_TURING = "good-turing"


def _build_markov(cls: type, context: TrainContext) -> "MarkovMeter":
    """Registry builder: ``markov_order``/``markov_smoothing`` options."""
    options = context.options
    smoothing = options.get("markov_smoothing", Smoothing.BACKOFF)
    if isinstance(smoothing, str):
        smoothing = Smoothing(smoothing)
    return cls.train(
        list(context.training),
        order=options.get("markov_order", 3),
        smoothing=smoothing,
    )


@register_meter(
    "markov",
    capabilities=(
        Capability.TRAINABLE,
        Capability.UPDATABLE,
        Capability.BATCH_SCORABLE,
        Capability.PERSISTABLE,
    ),
    summary="Character-level Markov model meter with smoothing",
    builder=_build_markov,
)
class MarkovMeter(ProbabilisticMeter):
    """Character-level Markov model meter.

    Args:
        order: context length (number of preceding characters);
            order 3-5 are typical (default 3).
        smoothing: see :class:`Smoothing` (default BACKOFF, as in the
            paper's implementation notes).
        laplace_alpha: additive constant for LAPLACE smoothing.
        discount: absolute discount ``D`` for BACKOFF smoothing.
        max_length: passwords longer than this measure 0 and guesses
            are never extended past it.

    >>> meter = MarkovMeter.train(["password", "password", "passage"],
    ...                           order=2, smoothing=Smoothing.NONE)
    >>> meter.probability("password") > meter.probability("passage")
    True
    """

    name = "Markov"

    def __init__(self, order: int = 3,
                 smoothing: Smoothing = Smoothing.BACKOFF,
                 laplace_alpha: float = 0.01,
                 discount: float = 0.5,
                 max_length: int = 32) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if not 0.0 < discount < 1.0:
            raise ValueError("discount must be in (0, 1)")
        if laplace_alpha <= 0.0:
            raise ValueError("laplace_alpha must be positive")
        self.order = order
        self.smoothing = smoothing
        self.laplace_alpha = laplace_alpha
        self.discount = discount
        self.max_length = max_length
        # _transitions[k] maps a length-k context to successor counts;
        # every order 0..order is tracked so back-off is O(1) per level.
        self._transitions: List[Dict[str, FrequencyDistribution[str]]] = [
            {} for _ in range(order + 1)
        ]
        self._alphabet = sorted(PRINTABLE_ASCII)
        self._vocabulary_size = len(self._alphabet) + 1  # + END
        self._counts_of_counts: Optional[List[Dict[int, int]]] = None
        self._order_totals: Optional[List[int]] = None
        # context -> [(successor, probability)] sorted descending; used
        # by the guess enumerator, invalidated by observe().
        self._successor_cache: Dict[str, List[Tuple[str, float]]] = {}

    # --- training --------------------------------------------------------

    @classmethod
    def train(
        cls, training: Iterable[PasswordEntry], **kwargs: Any
    ) -> "MarkovMeter":
        meter = cls(**kwargs)
        for entry in training:
            if isinstance(entry, str):
                password, count = entry, 1
            else:
                password, count = entry
            if password:
                meter.update(password, count)
        return meter

    def update(self, password: str, count: int = 1) -> None:
        """Count every transition of ``password`` (all context orders).

        This is the online update phase of the unified lifecycle
        (:class:`repro.meters.registry.Updatable`).
        """
        if not password:
            raise ValueError("cannot observe an empty password")
        padded = START * self.order + password + END
        for position in range(self.order, len(padded)):
            successor = padded[position]
            for k in range(self.order + 1):
                context = padded[position - k:position]
                table = self._transitions[k].setdefault(
                    context, FrequencyDistribution()
                )
                table.add(successor, count)
        self._counts_of_counts = None  # invalidate Good-Turing cache
        self._successor_cache.clear()

    def observe(self, password: str, count: int = 1) -> None:
        """Deprecated spelling of :meth:`update`."""
        warnings.warn(
            "MarkovMeter.observe() is deprecated; use update()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update(password, count)

    # --- probabilities -----------------------------------------------------

    def probability(self, password: str) -> float:
        if not password or len(password) > self.max_length:
            return 0.0
        padded = START * self.order + password + END
        probability = 1.0
        for position in range(self.order, len(padded)):
            context = padded[position - self.order:position]
            probability *= self.transition_probability(
                context, padded[position]
            )
            if probability == 0.0:
                return 0.0
        return probability

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        """Batch scoring with distinct-password and transition memos.

        Real measuring streams repeat both whole passwords (Zipf head)
        and ``(context, successor)`` transitions (shared prefixes), so
        one batch shares both lookups.  Both memos are sound because
        :meth:`probability` and :meth:`transition_probability` are pure
        between updates, and the factor order matches
        :meth:`probability` exactly — results are bit-identical.
        """
        memo: Dict[str, float] = {}
        transitions: Dict[Tuple[str, str], float] = {}
        transition_probability = self.transition_probability
        order = self.order
        max_length = self.max_length
        out: List[float] = []
        for password in passwords:
            value = memo.get(password)
            if value is None:
                if not password or len(password) > max_length:
                    value = 0.0
                else:
                    padded = START * order + password + END
                    value = 1.0
                    for position in range(order, len(padded)):
                        key = (
                            padded[position - order:position],
                            padded[position],
                        )
                        factor = transitions.get(key)
                        if factor is None:
                            factor = transitions[key] = (
                                transition_probability(*key)
                            )
                        value *= factor
                        if value == 0.0:
                            break
                memo[password] = value
            out.append(value)
        return out

    def transition_probability(self, context: str, successor: str) -> float:
        """``P(successor | context)`` under the configured smoothing."""
        if len(context) > self.order:
            context = context[-self.order:]
        if self.smoothing is Smoothing.NONE:
            return self._mle(context, successor)
        if self.smoothing is Smoothing.LAPLACE:
            return self._laplace(context, successor)
        if self.smoothing is Smoothing.BACKOFF:
            return self._backoff(context, successor)
        return self._good_turing(context, successor)

    def _table(self, context: str) -> Optional[FrequencyDistribution[str]]:
        return self._transitions[len(context)].get(context)

    def _mle(self, context: str, successor: str) -> float:
        table = self._table(context)
        if table is None or table.total == 0:
            return 0.0
        return table.probability(successor)

    def _laplace(self, context: str, successor: str) -> float:
        table = self._table(context)
        count = table.count(successor) if table is not None else 0
        total = table.total if table is not None else 0
        alpha = self.laplace_alpha
        return (count + alpha) / (total + alpha * self._vocabulary_size)

    def _backoff(self, context: str, successor: str) -> float:
        """Absolute discounting with back-off to shorter contexts."""
        if not context:
            # Base case: order-0 counts with a Laplace floor so every
            # alphabet character (and END) has positive probability.
            table = self._transitions[0].get("")
            count = table.count(successor) if table is not None else 0
            total = table.total if table is not None else 0
            alpha = self.laplace_alpha
            return (count + alpha) / (total + alpha * self._vocabulary_size)
        table = self._table(context)
        if table is None or table.total == 0:
            return self._backoff(context[1:], successor)
        discount = self.discount
        count = table.count(successor)
        discounted = max(count - discount, 0.0) / table.total
        backoff_weight = discount * table.support_size / table.total
        return discounted + backoff_weight * self._backoff(
            context[1:], successor
        )

    def _ensure_good_turing_cache(self) -> None:
        if self._counts_of_counts is not None:
            return
        self._counts_of_counts = []
        self._order_totals = []
        for k in range(self.order + 1):
            pooled: Dict[int, int] = {}
            total = 0
            for table in self._transitions[k].values():
                total += table.total
                for count, items in table.counts_of_counts().items():
                    pooled[count] = pooled.get(count, 0) + items
            self._counts_of_counts.append(pooled)
            self._order_totals.append(total)

    def _good_turing(self, context: str, successor: str) -> float:
        """Good-Turing adjusted counts, pooled per context order.

        Seen: ``r* = (r+1) * N_{r+1} / N_r`` (falling back to ``r`` when
        ``N_{r+1} = 0``); unseen: the order's ``N_1 / N`` mass split
        uniformly over unseen vocabulary.  Backs off to shorter
        contexts for entirely unseen contexts.
        """
        self._ensure_good_turing_cache()
        assert self._counts_of_counts is not None
        table = self._table(context)
        if table is None or table.total == 0:
            if context:
                return self._good_turing(context[1:], successor)
            return self.laplace_alpha / (
                self.laplace_alpha * self._vocabulary_size
            )
        pooled = self._counts_of_counts[len(context)]
        count = table.count(successor)
        if count > 0:
            n_r = pooled.get(count, 0)
            n_r1 = pooled.get(count + 1, 0)
            if n_r > 0 and n_r1 > 0:
                adjusted = (count + 1) * n_r1 / n_r
                # Guard against wildly non-monotone adjustments from
                # sparse counts-of-counts: keep the adjusted count
                # positive and never above the context total (a single
                # transition cannot carry more than all of its mass).
                if adjusted <= 0:
                    adjusted = float(count)
                adjusted = min(adjusted, float(table.total))
            else:
                adjusted = float(count)
            return adjusted / table.total
        unseen = self._vocabulary_size - table.support_size
        if unseen <= 0:
            return 0.0
        n_1 = pooled.get(1, 0)
        missing_mass = n_1 / table.total if table.total else 0.0
        missing_mass = min(missing_mass, 1.0)
        return missing_mass / unseen

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (config + every transition table)."""
        return {
            "order": self.order,
            "smoothing": self.smoothing.value,
            "laplace_alpha": self.laplace_alpha,
            "discount": self.discount,
            "max_length": self.max_length,
            "transitions": [
                {
                    context: dict(table.items())
                    for context, table in level.items()
                }
                for level in self._transitions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MarkovMeter":
        meter = cls(
            order=data["order"],
            smoothing=Smoothing(data["smoothing"]),
            laplace_alpha=data["laplace_alpha"],
            discount=data["discount"],
            max_length=data["max_length"],
        )
        for k, level in enumerate(data["transitions"]):
            for context, table in level.items():
                dist = meter._transitions[k].setdefault(
                    context, FrequencyDistribution()
                )
                for successor, count in table.items():
                    dist.add(successor, count)
        return meter

    # --- sampling ------------------------------------------------------------

    def sample(self, rng: random.Random) -> Tuple[str, float]:
        """Draw a password from the model (NONE/LAPLACE/BACKOFF only).

        The sampler follows the exact conditional distributions used by
        :meth:`probability`, as required for unbiased Monte-Carlo guess
        numbers.  Good-Turing outputs are not a proper distribution, so
        sampling it raises.
        """
        if self.smoothing is Smoothing.GOOD_TURING:
            raise NotImplementedError(
                "Good-Turing smoothing does not define a sampleable "
                "distribution"
            )
        if self._transitions[0].get("") is None:
            raise ValueError("cannot sample from an untrained meter")
        for _ in range(1000):  # rejection loop for the length cap
            result = self._sample_once(rng)
            if result is not None:
                return result
        raise RuntimeError("sampling failed to terminate within the cap")

    def _sample_once(self, rng: random.Random
                     ) -> Optional[Tuple[str, float]]:
        context = START * self.order
        chars: List[str] = []
        probability = 1.0
        while True:
            successor = self._sample_successor(context, rng)
            probability *= self.transition_probability(context, successor)
            if successor == END:
                password = "".join(chars)
                if not password:
                    return None  # zero-length; reject and retry
                return password, probability
            chars.append(successor)
            if len(chars) > self.max_length:
                return None
            context = (context + successor)[-self.order:]

    def _sample_successor(self, context: str, rng: random.Random) -> str:
        if self.smoothing is Smoothing.NONE:
            table = self._table(context)
            assert table is not None and table.total > 0
            return _sample_freqdist(table, rng)
        if self.smoothing is Smoothing.LAPLACE:
            table = self._table(context)
            total = table.total if table is not None else 0
            alpha_mass = self.laplace_alpha * self._vocabulary_size
            if table is None or rng.random() * (total + alpha_mass) < alpha_mass:
                choices = self._alphabet + [END]
                return choices[rng.randrange(len(choices))]
            return _sample_freqdist(table, rng)
        # BACKOFF: with probability sum(max(c - D, 0))/total take the
        # discounted MLE; otherwise recurse on the shorter context.
        if not context:
            table = self._transitions[0].get("")
            total = table.total if table is not None else 0
            alpha_mass = self.laplace_alpha * self._vocabulary_size
            if table is None or rng.random() * (total + alpha_mass) < alpha_mass:
                choices = self._alphabet + [END]
                return choices[rng.randrange(len(choices))]
            return _sample_freqdist(table, rng)
        table = self._table(context)
        if table is None or table.total == 0:
            return self._sample_successor(context[1:], rng)
        discount = self.discount
        stay_mass = sum(
            max(count - discount, 0.0) for _, count in table.items()
        )
        if rng.random() * table.total < stay_mass:
            return _sample_discounted(table, discount, rng)
        return self._sample_successor(context[1:], rng)

    # --- guess enumeration ------------------------------------------------------

    def iter_guesses(self, limit: Optional[int] = None,
                     band_ratio: float = 0.5,
                     max_bands: int = 120) -> Iterator[Tuple[str, float]]:
        """Guesses in probability bands, sorted within each band.

        Band ``k`` covers probabilities in ``[r^(k+1), r^k)`` with
        ``r = band_ratio``; a depth-first walk prunes prefixes whose
        probability already fell below the band floor.  Ordering is
        exact within a band and near-exact globally, the standard
        trade-off of Markov enumerators (OMEN).
        """
        if not 0.0 < band_ratio < 1.0:
            raise ValueError("band_ratio must be in (0, 1)")
        if self._transitions[0].get("") is None:
            return
        emitted = 0
        for band in range(max_bands):
            upper = band_ratio ** band
            lower = band_ratio ** (band + 1)
            results: List[Tuple[str, float]] = []
            self._collect_band("", START * self.order, 1.0, lower, upper,
                               results)
            results.sort(key=lambda item: (-item[1], item[0]))
            for item in results:
                yield item
                emitted += 1
                if limit is not None and emitted >= limit:
                    return

    def _sorted_successors(self, context: str) -> List[Tuple[str, float]]:
        """``(successor, probability)`` pairs, descending, cached.

        The descending order lets the band collector stop expanding a
        node as soon as one child falls below the band floor — the
        difference between minutes and seconds per enumeration.
        """
        cached = self._successor_cache.get(context)
        if cached is not None:
            return cached
        if self.smoothing is Smoothing.NONE:
            table = self._table(context)
            successors: List[str] = sorted(table) if table else []
        else:
            successors = self._alphabet + [END]
        pairs = [
            (successor, self.transition_probability(context, successor))
            for successor in successors
        ]
        pairs.sort(key=lambda item: (-item[1], item[0]))
        self._successor_cache[context] = pairs
        return pairs

    def _collect_band(self, prefix: str, context: str, probability: float,
                      lower: float, upper: float,
                      results: List[Tuple[str, float]]) -> None:
        if probability < lower or len(prefix) > self.max_length:
            return
        for successor, transition in self._sorted_successors(context):
            p = probability * transition
            if p < lower:
                break  # descending order: the rest are smaller still
            if successor == END:
                if prefix and p < upper:
                    results.append((prefix, p))
            else:
                self._collect_band(
                    prefix + successor,
                    (context + successor)[-self.order:],
                    p, lower, upper, results,
                )


def _sample_freqdist(dist: FrequencyDistribution, rng: random.Random):
    target = rng.random() * dist.total
    cumulative = 0
    item = None
    for item, count in dist.items():
        cumulative += count
        if cumulative > target:
            return item
    return item


def _sample_discounted(dist: FrequencyDistribution, discount: float,
                       rng: random.Random):
    total = sum(max(count - discount, 0.0) for _, count in dist.items())
    target = rng.random() * total
    cumulative = 0.0
    item = None
    for item, count in dist.items():
        cumulative += max(count - discount, 0.0)
        if cumulative > target:
            return item
    return item
