"""The capability-based meter registry: one lifecycle for every meter.

Every password strength meter the package ships — and any meter a
deployment plugs in — registers here under a stable *kind* string and
a set of declared :class:`Capability` flags::

    from repro.meters.base import Meter
    from repro.meters.registry import Capability, register_meter

    @register_meter(
        "toy",
        capabilities=(
            Capability.TRAINABLE,
            Capability.UPDATABLE,
            Capability.PERSISTABLE,
        ),
    )
    class ToyMeter(Meter):
        ...

Registration is the single integration point: a registered meter
automatically appears in ``repro meters``, in the CLI ``--kind``
choices (when trainable and persistable), in
:func:`repro.persistence.save_meter`/``load_meter`` dispatch (when
persistable), and in the experiment runner's
:func:`~repro.experiments.runner.build_meters` (by kind or display
name).  Capabilities are *declared and verified*: registering a class
that lacks a declared capability's methods is an error, so the flags
in the registry never drift from what the class can actually do.

The capability protocols name the unified lifecycle verbs
(paper Sec. IV-C: train → ship → load → **update online** → score):

* :class:`Trainable` — ``train(...)`` builds a meter from a corpus;
* :class:`Updatable` — ``update(password, count)`` folds an accepted
  password into the model (previously spelled ``FuzzyPSM.accept`` /
  ``PCFGMeter.observe`` / ``MarkovMeter.observe``; those remain as
  deprecation shims);
* :class:`BatchScorable` — ``probability_many``/``entropy_many``
  (every :class:`~repro.meters.base.Meter` satisfies this through the
  base-class loop; trained meters override it with vectorised paths);
* :class:`ParallelScorable` — the bulk path additionally accepts
  ``jobs=N`` and may fan chunks to a process pool (the registration
  check verifies the methods really take a ``jobs`` parameter);
* :class:`Persistable` — ``to_dict``/``from_dict`` snapshots.

Dispatching on concrete meter classes or kind string literals outside
this module is forbidden by lint rule FPM010; capability checks
(``isinstance(meter, Updatable)`` or :meth:`MeterSpec.has`) are the
blessed mechanism.
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

try:  # Protocol is typing-native from 3.8; keep the import explicit.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py3.7 fallback, never hit
    from typing_extensions import Protocol, runtime_checkable  # type: ignore

from repro.meters.base import Meter

M = TypeVar("M", bound=Type[Meter])


class Capability(enum.Enum):
    """The lifecycle verbs a meter can opt into."""

    #: ``cls.train(...)`` builds the meter from training material.
    TRAINABLE = "trainable"
    #: ``update(password, count)`` — the online update phase.
    UPDATABLE = "updatable"
    #: ``probability_many``/``entropy_many`` bulk scoring.
    BATCH_SCORABLE = "batch-scorable"
    #: Bulk scoring accepts ``jobs=N`` and can fan work across a
    #: process pool (DESIGN.md §11).
    PARALLEL_SCORABLE = "parallel-scorable"
    #: ``to_dict``/``from_dict`` snapshot round-trips.
    PERSISTABLE = "persistable"
    #: ``to_buffers``/``from_buffers`` flat-column snapshots — the
    #: array-backed binary model format (``save_meter(..., fmt=
    #: "binary")``), loadable via mmap without JSON parsing.
    BINARY_PERSISTABLE = "binary-persistable"
    #: ``cls.train_streaming(...)`` builds the meter from an
    #: out-of-core chunk stream (``repro train --stream-chunk``).
    STREAM_TRAINABLE = "stream-trainable"


@runtime_checkable
class Trainable(Protocol):
    """A meter buildable from training material via ``cls.train``."""

    def train(self, *args: Any, **kwargs: Any) -> Any:
        ...


@runtime_checkable
class Updatable(Protocol):
    """A meter with the online update phase (paper Sec. IV-C)."""

    def update(self, password: str, count: int = 1) -> None:
        ...


@runtime_checkable
class BatchScorable(Protocol):
    """A meter scoring whole password streams in one call."""

    def probability_many(self, passwords: Iterable[str]) -> List[float]:
        ...

    def entropy_many(self, passwords: Iterable[str]) -> List[float]:
        ...


@runtime_checkable
class ParallelScorable(Protocol):
    """A batch-scorable meter whose bulk path can use worker processes.

    The ``jobs`` keyword is the whole contract: ``jobs=N`` may fan the
    batch out to ``N`` processes, and results must stay bit-identical
    to the serial path (parallelism is an execution strategy, never a
    semantics change).  Implementations are free to fall back to
    serial scoring when the batch is too small to amortise pool
    start-up.
    """

    def probability_many(
        self, passwords: Iterable[str], jobs: Optional[int] = None
    ) -> List[float]:
        ...

    def entropy_many(
        self, passwords: Iterable[str], jobs: Optional[int] = None
    ) -> List[float]:
        ...


@runtime_checkable
class Persistable(Protocol):
    """A meter with JSON-ready snapshot/restore methods."""

    def to_dict(self) -> Dict[str, Any]:
        ...

    def from_dict(self, data: Dict[str, Any]) -> Any:
        ...


@runtime_checkable
class BinaryPersistable(Protocol):
    """A meter with flat-column snapshot/restore for the binary format.

    ``to_buffers`` returns ``(meta, sections)``: a JSON-safe metadata
    dict plus an ordered mapping of named flat columns (``array('q')``
    integer columns and ``str`` blobs).  ``from_buffers`` rebuilds the
    meter from exactly those two values.  The contract mirrors
    :class:`Persistable` — a binary round trip must reproduce the same
    model ``to_dict`` as a JSON round trip.
    """

    def to_buffers(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        ...

    def from_buffers(
        self, meta: Dict[str, Any], sections: Dict[str, Any]
    ) -> Any:
        ...


@runtime_checkable
class StreamTrainable(Protocol):
    """A meter buildable from an out-of-core stream of entry chunks."""

    def train_streaming(self, *args: Any, **kwargs: Any) -> Any:
        ...


#: Methods each declared capability promises on the class.
_CAPABILITY_METHODS: Dict[Capability, Tuple[str, ...]] = {
    Capability.TRAINABLE: ("train",),
    Capability.UPDATABLE: ("update",),
    Capability.BATCH_SCORABLE: ("probability_many", "entropy_many"),
    Capability.PARALLEL_SCORABLE: ("probability_many", "entropy_many"),
    Capability.PERSISTABLE: ("to_dict", "from_dict"),
    Capability.BINARY_PERSISTABLE: ("to_buffers", "from_buffers"),
    Capability.STREAM_TRAINABLE: ("train_streaming",),
}

#: Capabilities whose promised methods must also accept these keyword
#: parameters (checked via ``inspect.signature`` at registration, so a
#: meter cannot declare parallel scoring while its batch methods would
#: reject ``jobs=...`` at call time).
_CAPABILITY_PARAMETERS: Dict[Capability, Tuple[str, ...]] = {
    Capability.PARALLEL_SCORABLE: ("jobs",),
}


def _accepts_parameter(method: Any, parameter: str) -> bool:
    """True when ``method`` can be called with ``parameter=...``."""
    try:
        signature = inspect.signature(method)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    for param in signature.parameters.values():
        if param.name == parameter:
            return True
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
    return False


@dataclass(frozen=True)
class TrainContext:
    """Everything a registry builder may need to construct a meter.

    One neutral bag of inputs, so the same context can build all
    registered meters side by side (the experiment runner does exactly
    that).  Builders take what they need and ignore the rest:

    Attributes:
        training: weighted ``(password, count)`` training material.
        base_dictionary: the less-sensitive-service dictionary
            (fuzzyPSM's trie source; empty for meters without one).
        dictionary: the stock provisioning word list handed to
            rule-based meters (ranked most-common-first).
        options: meter-family tunables (``markov_order``,
            ``markov_smoothing``, ``jobs``, ``fuzzy_config``).
    """

    training: Sequence[Tuple[str, int]] = ()
    base_dictionary: Sequence[str] = ()
    dictionary: Sequence[str] = ()
    options: Mapping[str, Any] = field(default_factory=dict)


#: A builder constructs one meter from a :class:`TrainContext`.
Builder = Callable[[Type[Meter], TrainContext], Meter]


def default_builder(cls: Type[Meter], context: TrainContext) -> Meter:
    """Build via ``cls.train(training)`` when trainable, else ``cls()``."""
    train = getattr(cls, "train", None)
    if callable(train):
        return train(list(context.training))
    return cls()  # type: ignore[call-arg]


@dataclass(frozen=True)
class MeterSpec:
    """One registry entry: the class plus its declared lifecycle."""

    kind: str
    cls: Type[Meter]
    display_name: str
    capabilities: FrozenSet[Capability]
    summary: str
    builder: Builder
    #: The builder needs a non-empty ``TrainContext.base_dictionary``
    #: (fuzzyPSM's trie source); drives the CLI ``--base`` check.
    requires_base_dictionary: bool = False

    def has(self, capability: Capability) -> bool:
        return capability in self.capabilities

    def capability_names(self) -> List[str]:
        """Sorted capability value strings (the JSON/CLI spelling)."""
        return sorted(capability.value for capability in self.capabilities)


_SPECS: Dict[str, MeterSpec] = {}
_BY_CLASS: Dict[Type[Meter], MeterSpec] = {}


def register_meter(
    kind: str,
    *,
    capabilities: Iterable[Capability] = (),
    display_name: Optional[str] = None,
    summary: str = "",
    builder: Optional[Builder] = None,
    requires_base_dictionary: bool = False,
) -> Callable[[M], M]:
    """Class decorator: add a meter class to the registry.

    Args:
        kind: stable lowercase identifier (the persistence ``kind``
            tag and CLI ``--kind`` value).
        capabilities: declared :class:`Capability` flags; each one is
            verified against the class at registration time.
        display_name: human-facing name (defaults to ``cls.name``).
        summary: one-line description for ``repro meters``.
        builder: how to construct the meter from a
            :class:`TrainContext` (defaults to :func:`default_builder`).
        requires_base_dictionary: the builder refuses an empty
            ``base_dictionary``.

    Raises:
        ValueError: empty/duplicate kind, or a declared capability
            whose methods the class does not define.
    """
    if not kind or kind != kind.lower():
        raise ValueError(
            f"meter kind must be a non-empty lowercase string, got {kind!r}"
        )
    capability_set = frozenset(capabilities)

    def decorate(cls: M) -> M:
        existing = _SPECS.get(kind)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"duplicate meter kind {kind!r} "
                f"(already registered to {existing.cls.__name__})"
            )
        for capability in sorted(capability_set, key=lambda c: c.value):
            for method in _CAPABILITY_METHODS[capability]:
                attribute = getattr(cls, method, None)
                if not callable(attribute):
                    raise ValueError(
                        f"{cls.__name__} declares capability "
                        f"{capability.value!r} but does not define "
                        f"{method}()"
                    )
                for parameter in _CAPABILITY_PARAMETERS.get(
                    capability, ()
                ):
                    if not _accepts_parameter(attribute, parameter):
                        raise ValueError(
                            f"{cls.__name__} declares capability "
                            f"{capability.value!r} but {method}() "
                            f"does not accept {parameter}=..."
                        )
        doc = (cls.__doc__ or "").strip().splitlines()
        spec = MeterSpec(
            kind=kind,
            cls=cls,
            display_name=display_name or getattr(cls, "name", cls.__name__),
            capabilities=capability_set,
            summary=summary or (doc[0] if doc else ""),
            builder=builder or default_builder,
            requires_base_dictionary=requires_base_dictionary,
        )
        _SPECS[kind] = spec
        _BY_CLASS[cls] = spec
        return cls

    return decorate


def unregister(kind: str) -> None:
    """Remove a registry entry (for tests and plugin teardown)."""
    spec = _SPECS.pop(kind, None)
    if spec is not None:
        _BY_CLASS.pop(spec.cls, None)


def all_specs() -> Dict[str, MeterSpec]:
    """Every registered spec, keyed and ordered by kind."""
    _ensure_loaded()
    return dict(sorted(_SPECS.items()))


def meter_kinds() -> List[str]:
    """The registered kind strings, sorted."""
    return list(all_specs())


def kinds_with(*capabilities: Capability) -> List[str]:
    """Kinds whose spec declares every given capability, sorted."""
    return [
        kind
        for kind, spec in all_specs().items()
        if all(spec.has(capability) for capability in capabilities)
    ]


def resolve_kind(name: str) -> str:
    """Map a kind or display name (case-insensitive) to its kind.

    >>> resolve_kind("fuzzyPSM")
    'fuzzypsm'

    Raises:
        ValueError: when nothing registered matches.
    """
    specs = all_specs()
    lowered = name.lower()
    if lowered in specs:
        return lowered
    for kind, spec in specs.items():
        if spec.display_name.lower() == lowered:
            return kind
    raise ValueError(
        f"unknown meter {name!r}; registered: {', '.join(specs)}"
    )


def get_spec(name: str) -> MeterSpec:
    """The spec for a kind or display name.

    Raises:
        ValueError: when nothing registered matches.
    """
    return all_specs()[resolve_kind(name)]


def spec_for(meter_or_class: Any) -> Optional[MeterSpec]:
    """The spec a meter instance or class registered under, if any.

    Subclasses resolve to their nearest registered ancestor, so a
    locally-extended meter still persists under its family kind.
    """
    cls = (
        meter_or_class
        if isinstance(meter_or_class, type)
        else type(meter_or_class)
    )
    _ensure_loaded()
    for ancestor in cls.__mro__:
        spec = _BY_CLASS.get(ancestor)
        if spec is not None:
            return spec
    return None


def build_meter(name: str, context: Optional[TrainContext] = None) -> Meter:
    """Construct a registered meter from a :class:`TrainContext`.

    Raises:
        ValueError: unknown meter, or a missing required base
            dictionary.
    """
    spec = get_spec(name)
    context = context or TrainContext()
    if spec.requires_base_dictionary and not context.base_dictionary:
        raise ValueError(
            f"meter {spec.kind!r} requires a base dictionary "
            "(TrainContext.base_dictionary / --base on the CLI)"
        )
    return spec.builder(spec.cls, context)


def _ensure_loaded() -> None:
    """Import the built-in meter modules (idempotent) so they register."""
    from repro.core import meter  # noqa: F401  (import-for-effect)
    from repro.meters import (  # noqa: F401  (import-for-effect)
        ideal,
        keepsm,
        markov,
        nist,
        pcfg,
        zxcvbn,
    )
